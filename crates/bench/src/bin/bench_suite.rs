//! `bench_suite` — the repo's measured performance trajectory.
//!
//! Times the transmission planner (cached link-state matrix vs the
//! pre-refactor naive computation, on a dense and a sparse grid), the
//! mobility link-state refresh (incremental row/column update vs a full
//! matrix rebuild — the incremental path must win, and the suite asserts
//! it), a full live route-refresh pass (`LinkGraph` snapshot + per-flow
//! min-ETX Dijkstra — the budget behind the `route_refresh` knob), event
//! queue churn under the simulator's interleaved access
//! pattern, a fig-6(b)-class end-to-end run in both its static and
//! moving-relay variants, and the 1024-station campus preset on the
//! sharded conservative engine at 1 vs 4 shards (result bit-equality
//! asserted, ratio tracked), then writes the numbers as
//! `BENCH_<name>.json` in the current directory — the same hand-rolled
//! JSON style as the `target/repro` reports, so trajectories can be
//! tracked across commits with `jq`.
//!
//! ```text
//! bench_suite [--quick] [--name suite] [--out PATH]      # measure and write
//! bench_suite --validate PATH [--expect-keys REF] [--alloc-budget REF]
//! ```
//!
//! The binary installs [`wmn_alloc::CountingAlloc`], so the zero-copy
//! frame benches also report allocator pressure: `clean_decode_16sub`
//! asserts zero allocations per clean decode outright, and the fig-6-class
//! runs report `allocs_per_frame`/`peak_bytes`, gated in CI against the
//! committed `ci/alloc_budget.json` via `--alloc-budget` (the allocation
//! analogue of `--expect-keys`).
//!
//! `--quick` is the CI smoke profile: same workloads, fewer repetitions.
//! Absolute numbers vary with the host; the cached-vs-naive *ratio* is the
//! tracked signal. CI runs `--quick` and then `--validate` so a malformed
//! report fails the job; `--expect-keys` additionally pins the *key set*
//! (bench names + speedup keys) to the committed `BENCH_suite.json`, so
//! silently dropping or renaming a bench fails the smoke job while timing
//! thresholds stay deliberately ungated — container speed varies.

use std::hint::black_box;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use wmn_bench::{
    campus_scale_scenario, fig6_class_mobile_scenario, fig6_class_scenario, grid_positions,
    naive_plan_reference,
};
use wmn_exec::json::{parse, Value};
use wmn_mac::frame::{DataFrame, Frame, LinkDst, NetHeader, Packet, Proto, RouteInfo, Subframe};
use wmn_mac::{FramePool, IfQueue};
use wmn_netsim::run;
use wmn_netsim::stack::decode::decode_frame;
use wmn_phy::{BerModel, Medium, PhyParams, Position};
use wmn_routing::LinkGraph;
use wmn_sim::{EventQueue, FlowId, NodeId, SimDuration, SimTime, StreamRng};

/// The whole suite runs under the counting allocator, so any bench can
/// report allocator activity alongside its timing. Counting is a few
/// relaxed atomics per call — noise next to the syscalls and cache misses
/// the timings absorb anyway, and identical for every bench.
#[global_allocator]
static ALLOC: wmn_alloc::CountingAlloc = wmn_alloc::CountingAlloc;

struct Profile {
    label: &'static str,
    /// Planner calls on the dense 6×6 grid.
    dense_reps: u64,
    /// Planner calls on the sparse 16×16 grid.
    sparse_reps: u64,
    /// Node moves for the link-state refresh pair (incremental vs full
    /// rebuild) on the 16×16 grid.
    refresh_reps: u64,
    /// Full route-refresh passes (live `LinkGraph` snapshot + per-flow
    /// min-ETX Dijkstra) on the 16×16 grid.
    route_refresh_reps: u64,
    /// Event-queue schedule/pop operations.
    queue_ops: u64,
    /// Saturated interface-queue batch/refill cycles.
    ifq_ops: u64,
    /// Clean-channel decode calls on one pooled 16-subframe frame.
    decode_reps: u64,
    /// Simulated duration of the end-to-end runs (static and mobile).
    e2e_duration: SimDuration,
    /// Simulated duration of the 1024-station sharded-engine probe.
    campus_duration: SimDuration,
}

const QUICK: Profile = Profile {
    label: "quick",
    dense_reps: 20_000,
    sparse_reps: 2_000,
    refresh_reps: 200,
    route_refresh_reps: 50,
    queue_ops: 200_000,
    ifq_ops: 20_000,
    decode_reps: 100_000,
    e2e_duration: SimDuration::from_millis(300),
    campus_duration: SimDuration::from_millis(5),
};

const FULL: Profile = Profile {
    label: "full",
    dense_reps: 200_000,
    sparse_reps: 20_000,
    refresh_reps: 2_000,
    route_refresh_reps: 500,
    queue_ops: 2_000_000,
    ifq_ops: 200_000,
    decode_reps: 1_000_000,
    e2e_duration: SimDuration::from_millis(2_000),
    campus_duration: SimDuration::from_millis(40),
};

/// One measured benchmark, as it appears in the report's `benches` array.
struct Bench {
    name: String,
    reps: u64,
    ns_per_op: f64,
    /// Extra observed quantities (plan counts, delivered bytes, …) that make
    /// the number auditable.
    extras: Vec<(&'static str, Value)>,
}

impl Bench {
    fn to_value(&self) -> Value {
        let mut v = Value::obj()
            .with("name", self.name.as_str())
            .with("reps", self.reps)
            .with("ns_per_op", self.ns_per_op);
        for (k, extra) in &self.extras {
            v = v.with(k, extra.clone());
        }
        v
    }
}

/// Times `reps` planner calls, rotating the transmitter across the grid.
/// Returns (ns/op, total planned receptions) — the latter doubles as the
/// cross-check that both planner implementations did identical work.
fn time_planner(medium: &Medium, reps: u64, cached: bool) -> (f64, u64) {
    let n = medium.node_count() as u64;
    let mut rng = StreamRng::derive(99, "bench/planner");
    let mut scratch = Vec::new();
    let mut plans_total = 0u64;
    let start = Instant::now();
    for i in 0..reps {
        let from = NodeId::new((i % n) as u32);
        if cached {
            medium.plan_transmission_into(from, &mut rng, &mut scratch);
            plans_total += scratch.len() as u64;
            black_box(&scratch);
        } else {
            let plans = naive_plan_reference(medium, from, &mut rng);
            plans_total += plans.len() as u64;
            black_box(&plans);
        }
    }
    (start.elapsed().as_nanos() as f64 / reps as f64, plans_total)
}

/// Planner pair (cached + naive) on one grid, with the work cross-check.
fn planner_pair(side: usize, spacing: f64, reps: u64, benches: &mut Vec<Bench>) -> f64 {
    let medium = Medium::new(PhyParams::paper_216(), grid_positions(side, spacing));
    let nodes = side * side;
    let (cached_ns, cached_plans) = time_planner(&medium, reps, true);
    let (naive_ns, naive_plans) = time_planner(&medium, reps, false);
    assert_eq!(
        cached_plans, naive_plans,
        "cached and naive planners disagree on grid {side}x{side} — benchmark invalid"
    );
    for (kind, ns, plans) in [("cached", cached_ns, cached_plans), ("naive", naive_ns, naive_plans)]
    {
        benches.push(Bench {
            name: format!("plan_transmission_{kind}_grid{nodes}"),
            reps,
            ns_per_op: ns,
            extras: vec![("plans_total", Value::Uint(plans))],
        });
    }
    naive_ns / cached_ns
}

/// One node pacing across the campus-scale grid, applied either through
/// `Medium::update_node_position` (the mobile runner's O(n) row/column
/// refresh) or by rebuilding the whole n² matrix — the cost a mobility tick
/// would pay without the incremental path. Both sides visit the identical
/// position sequence; the refreshed matrix is pinned bit-identical to the
/// rebuilt one by `wmn_phy`'s test suite.
fn time_link_refresh(side: usize, spacing: f64, reps: u64, incremental: bool) -> f64 {
    let params = PhyParams::paper_216();
    let positions = grid_positions(side, spacing);
    let mover = NodeId::new(0);
    let mut medium = Medium::new(params.clone(), positions.clone());
    let start = Instant::now();
    for i in 0..reps {
        // A deterministic diagonal walk, wrapping inside the deployment.
        let step = (i % 128) as f64;
        let pos = Position::new(step * 3.0, step * 1.5);
        if incremental {
            medium.update_node_position(mover, pos);
            black_box(&medium);
        } else {
            let mut moved = positions.clone();
            moved[mover.index()] = pos;
            let rebuilt = Medium::new(params.clone(), moved);
            black_box(&rebuilt);
        }
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

/// One full live route-refresh pass, as the runner's `RouteRefresh` event
/// pays it: snapshot the medium's current link state into a [`LinkGraph`]
/// and rerun min-ETX Dijkstra for every flow endpoint pair. The mover keeps
/// the link state changing between passes so the snapshot is never a cached
/// no-op. Returns (ns/pass, paths found) — the latter pins the workload as
/// "every flow actually routed".
fn time_route_refresh(side: usize, spacing: f64, reps: u64, flows: usize) -> (f64, u64) {
    let mut medium = Medium::new(PhyParams::paper_216(), grid_positions(side, spacing));
    let n = side * side;
    // Corner-to-corner and edge-to-edge endpoint pairs, one per flow.
    let endpoints: Vec<(NodeId, NodeId)> = (0..flows)
        .map(|f| (NodeId::new((f * side) as u32), NodeId::new((n - 1 - f) as u32)))
        .collect();
    let mover = NodeId::new((n / 2) as u32);
    let mut paths_found = 0u64;
    let start = Instant::now();
    for i in 0..reps {
        // A diagonal walk that stays inside the deployment footprint.
        let step = (i % 128) as f64;
        medium.update_node_position(mover, Position::new(step * 0.5, step * 0.25));
        let graph = LinkGraph::try_from_medium(&medium).expect("grid link state is finite");
        for &(src, dst) in &endpoints {
            if let Some(path) = graph.shortest_path(src, dst) {
                paths_found += 1;
                black_box(&path);
            }
        }
    }
    (start.elapsed().as_nanos() as f64 / reps as f64, paths_found)
}

/// The zero-copy decode fast path under the counting allocator: one pooled
/// 16-subframe broadcast frame, decoded `reps` times over a clean channel
/// (BER 0 ⇒ every survival draw passes, so every decode takes the shared
/// fast path). Returns (ns/op, allocator stats of the measured region);
/// the caller asserts the headline claim — **zero** allocations per clean
/// decode — so a regression fails the suite rather than drifting a number.
fn time_clean_decode(reps: u64) -> (f64, wmn_alloc::AllocStats) {
    let pool = FramePool::default();
    let header = NetHeader {
        flow: FlowId::new(0),
        src: NodeId::new(0),
        dst: NodeId::new(3),
        proto: Proto::Tcp,
        wire_bytes: 1000,
    };
    let mut subframes = pool.mint_subframes();
    for seq in 0..16 {
        subframes.push(Subframe {
            seq,
            packet: Packet::new(header, pool.mint_body(&[0u8; 18])),
            corrupted: false,
        });
    }
    let frame = Arc::new(Frame::Data(DataFrame {
        transmitter: NodeId::new(0),
        link_dst: LinkDst::Unicast(NodeId::new(1)),
        flow: FlowId::new(0),
        src: NodeId::new(0),
        dst: NodeId::new(3),
        frame_seq: 0,
        subframes,
        retry: 0,
    }));
    let ber = BerModel::new(0.0);
    let mut rng = StreamRng::derive(7, "bench/decode");
    let start = Instant::now();
    let (decoded, stats) = wmn_alloc::measure(|| {
        let mut decoded = 0u64;
        for _ in 0..reps {
            if let Some(rx) = decode_frame(&ber, &mut rng, &frame) {
                decoded += 1;
                black_box(&rx);
            }
        }
        decoded
    });
    let ns = start.elapsed().as_nanos() as f64 / reps as f64;
    assert_eq!(decoded, reps, "BER 0 must decode every frame");
    (ns, stats)
}

/// The saturated interface-queue cycle the aggregation path drives: a full
/// `Sq` where every "transmission" pulls a route-matched batch into a
/// pooled slot and the packets are re-enqueued (the refill a saturated
/// sender performs). After one warm-up cycle the deque, the batch slot and
/// the packet bodies are all at steady-state capacity, so the measured
/// region must be allocation-free — the pooled-slot claim, asserted.
fn time_saturated_queue(ops: u64) -> (f64, wmn_alloc::AllocStats) {
    let header = NetHeader {
        flow: FlowId::new(0),
        src: NodeId::new(0),
        dst: NodeId::new(9),
        proto: Proto::Udp,
        wire_bytes: 1000,
    };
    let route = RouteInfo::NextHop(NodeId::new(1));
    let mut q = IfQueue::new(50);
    for _ in 0..50 {
        assert!(q.push(Packet::new(header, vec![]), route.clone()).is_none());
    }
    let cycle = |q: &mut IfQueue| {
        let mut batch = q.pop_batch_matching_head(16, u32::MAX);
        for qp in batch.drain(..) {
            assert!(q.push(qp.packet, qp.route).is_none(), "refill must fit");
        }
    };
    // Warm-up: let the batch slot grow to its 16-packet capacity.
    for _ in 0..4 {
        cycle(&mut q);
    }
    let start = Instant::now();
    let ((), stats) = wmn_alloc::measure(|| {
        for _ in 0..ops {
            cycle(&mut q);
        }
    });
    let ns = start.elapsed().as_nanos() as f64 / ops as f64;
    assert_eq!(q.len(), 50, "every batch is fully re-enqueued");
    (ns, stats)
}

/// Event-queue churn under the simulator's steady-state pattern: a bounded
/// frontier where every pop schedules a successor at or near "now".
fn time_event_queue(ops: u64) -> f64 {
    let mut q = EventQueue::with_capacity(64);
    for i in 0..64u64 {
        q.schedule(SimTime::from_nanos(i / 4), i);
    }
    let mut sum = 0u64;
    let start = Instant::now();
    for i in 64..ops {
        let (_, e) = q.pop().expect("frontier never empties");
        sum = sum.wrapping_add(e);
        q.schedule_in(SimDuration::from_nanos(i % 3), i);
    }
    while let Some((_, e)) = q.pop() {
        sum = sum.wrapping_add(e);
    }
    black_box(sum);
    start.elapsed().as_nanos() as f64 / ops as f64
}

/// The recycled-node claim on the future-event list: the same interleaved
/// frontier as [`time_event_queue`], but measured under the counting
/// allocator with the heap pre-sized to the frontier. Pops hand their
/// storage straight back to the pushes, so the steady state must be
/// allocation-free.
fn time_event_churn_recycled(ops: u64) -> (f64, wmn_alloc::AllocStats) {
    let mut q = EventQueue::with_capacity(64);
    for i in 0..64u64 {
        q.schedule(SimTime::from_nanos(i / 4), i);
    }
    let mut sum = 0u64;
    let start = Instant::now();
    let ((), stats) = wmn_alloc::measure(|| {
        for i in 64..ops {
            let (_, e) = q.pop().expect("frontier never empties");
            sum = sum.wrapping_add(e);
            q.schedule_in(SimDuration::from_nanos(i % 3), i);
        }
    });
    let ns = start.elapsed().as_nanos() as f64 / ops as f64;
    black_box(sum);
    (ns, stats)
}

fn run_suite(profile: &Profile) -> Value {
    let mut benches = Vec::new();

    // 1. Planner, dense grid: every pair is draw-dependent, so the win is
    //    the precomputed geometry/path loss and the scratch buffer.
    let dense_speedup = planner_pair(6, 5.0, profile.dense_reps, &mut benches);
    // 2. Planner, campus-scale grid: pairs beyond ~417 m are never-sensed,
    //    so the cached planner additionally skips the Box–Muller
    //    transcendentals for them.
    let sparse_speedup = planner_pair(16, 40.0, profile.sparse_reps, &mut benches);

    // 3. Link-state refresh for one moved node: the mobile runner's
    //    incremental row/column path vs a full matrix rebuild. This is the
    //    perf claim behind per-tick mobility on large placements, so the
    //    suite *asserts* the incremental path wins (O(n) vs O(n²) — a
    //    regression here means the fast path broke, not a noisy host).
    let incremental_ns = time_link_refresh(16, 40.0, profile.refresh_reps, true);
    let full_ns = time_link_refresh(16, 40.0, profile.refresh_reps, false);
    let refresh_speedup = full_ns / incremental_ns;
    assert!(
        refresh_speedup > 1.0,
        "incremental link refresh ({incremental_ns:.0} ns) must beat a full rebuild \
         ({full_ns:.0} ns)"
    );
    for (kind, ns) in [("incremental", incremental_ns), ("full", full_ns)] {
        benches.push(Bench {
            name: format!("link_refresh_{kind}_grid256"),
            reps: profile.refresh_reps,
            ns_per_op: ns,
            extras: vec![],
        });
    }

    // 4. Live route refresh: the cost a `RouteRefresh` event pays on a
    //    256-node grid — one LinkGraph snapshot of the live medium plus a
    //    min-ETX Dijkstra per flow. 5 m spacing keeps every neighbour link
    //    above the ETX usability floor so all flows really route (the 40 m
    //    campus grid is link-dead at this PHY: p(40 m) ≈ 6e-5 < 0.05). This
    //    is the budget behind choosing `route_refresh_ms`: the interval
    //    should dwarf this number.
    let (route_refresh_ns, paths_found) =
        time_route_refresh(16, 5.0, profile.route_refresh_reps, 4);
    assert_eq!(
        paths_found,
        profile.route_refresh_reps * 4,
        "route-refresh bench: every flow must route on every pass"
    );
    benches.push(Bench {
        name: "route_refresh_pass_grid256_flows4".into(),
        reps: profile.route_refresh_reps,
        ns_per_op: route_refresh_ns,
        extras: vec![("paths_found", Value::Uint(paths_found))],
    });

    // 5. Event-queue churn.
    benches.push(Bench {
        name: "event_queue_interleaved".into(),
        reps: profile.queue_ops,
        ns_per_op: time_event_queue(profile.queue_ops),
        extras: vec![],
    });

    // 5a. The two steady-state zero-allocation claims, asserted outright:
    //     a saturated interface queue cycling pooled batch slots, and the
    //     recycled future-event list. Like `clean_decode_16sub`, a single
    //     allocation per op here is a regression, not noise.
    let (ifq_ns, ifq_alloc) = time_saturated_queue(profile.ifq_ops);
    assert_eq!(
        ifq_alloc.allocs, 0,
        "saturated queue cycle must be allocation-free ({} allocs over {} cycles)",
        ifq_alloc.allocs, profile.ifq_ops
    );
    benches.push(Bench {
        name: "saturated_queue_enqueue".into(),
        reps: profile.ifq_ops,
        ns_per_op: ifq_ns,
        extras: vec![(
            "allocs_per_op",
            Value::from(ifq_alloc.allocs as f64 / profile.ifq_ops as f64),
        )],
    });
    let (churn_ns, churn_alloc) = time_event_churn_recycled(profile.queue_ops);
    assert_eq!(
        churn_alloc.allocs, 0,
        "recycled event churn must be allocation-free ({} allocs over {} ops)",
        churn_alloc.allocs, profile.queue_ops
    );
    benches.push(Bench {
        name: "event_churn_recycled".into(),
        reps: profile.queue_ops,
        ns_per_op: churn_ns,
        extras: vec![(
            "allocs_per_op",
            Value::from(churn_alloc.allocs as f64 / profile.queue_ops as f64),
        )],
    });

    // 5b. The zero-copy decode fast path. Clean decodes are an `Arc`
    //     refcount bump, so the suite *asserts* zero allocations per op —
    //     the allocation-budget gate then pins the same number in CI.
    let (decode_ns, decode_alloc) = time_clean_decode(profile.decode_reps);
    assert_eq!(
        decode_alloc.allocs, 0,
        "clean decode must be allocation-free ({} allocs over {} decodes)",
        decode_alloc.allocs, profile.decode_reps
    );
    benches.push(Bench {
        name: "clean_decode_16sub".into(),
        reps: profile.decode_reps,
        ns_per_op: decode_ns,
        extras: vec![
            ("allocs_per_op", Value::from(decode_alloc.allocs as f64 / profile.decode_reps as f64)),
            ("bytes_allocated", Value::Uint(decode_alloc.bytes_allocated)),
        ],
    });

    // 6. End-to-end fig-6(b)-class runs (RIPPLE-16 + 5 hidden CBR senders):
    //    the static original and the mobile variant whose relays pace
    //    laterally on a 10 ms tick, exercising the incremental refresh
    //    inside the heaviest fan-out workload.
    for (name, scenario) in [
        ("fig6_class_end_to_end", fig6_class_scenario(5, profile.e2e_duration)),
        ("fig6_class_mobile_end_to_end", fig6_class_mobile_scenario(5, profile.e2e_duration)),
    ] {
        let phases_before = wmn_alloc::phase_totals();
        let start = Instant::now();
        let (result, alloc) = wmn_alloc::measure(|| run(&scenario));
        let wall = start.elapsed();
        let phases_after = wmn_alloc::phase_totals();
        assert!(result.flows[0].delivered_bytes > 0, "{name}: run made no progress");
        // Allocation pressure per frame on the air (data + ACK): the
        // pooled-buffer path's tracked signal, gated by the committed
        // `ci/alloc_budget.json` in the smoke job.
        let frames: u64 =
            result.mac_stats.iter().map(|s| s.data_frames_sent + s.ack_frames_sent).sum();
        assert!(frames > 0, "{name}: no frames transmitted");
        // Phase attribution of the run's allocations: the runner's scoped
        // guards charge hot-loop traffic to tx-path / queue / event-loop,
        // leaving scenario build and result collection unattributed. The
        // itemisation names the next ratchet target instead of reporting
        // one opaque total.
        let mut extras = vec![
            ("sim_millis", Value::Uint(profile.e2e_duration.as_nanos() / 1_000_000)),
            ("delivered_bytes", Value::Uint(result.flows[0].delivered_bytes)),
            ("frames_sent", Value::Uint(frames)),
            ("allocs_per_frame", Value::from(alloc.allocs as f64 / frames as f64)),
            ("peak_bytes", Value::Uint(alloc.peak_bytes_in_use)),
        ];
        let mut attributed = 0u64;
        for (phase, key) in [
            (wmn_alloc::Phase::TxPath, "allocs_tx_path"),
            (wmn_alloc::Phase::Queue, "allocs_queue"),
            (wmn_alloc::Phase::EventLoop, "allocs_event_loop"),
        ] {
            let delta = phases_after[phase as usize].allocs - phases_before[phase as usize].allocs;
            attributed += delta;
            extras.push((key, Value::Uint(delta)));
        }
        extras.push((
            "alloc_attribution",
            Value::from(if alloc.allocs > 0 {
                attributed as f64 / alloc.allocs as f64
            } else {
                1.0
            }),
        ));
        benches.push(Bench {
            name: name.into(),
            reps: 1,
            ns_per_op: wall.as_nanos() as f64,
            extras,
        });
    }

    // 7. The sharded conservative engine on the campus-1k preset: the same
    //    1024-station run at 1 and 4 shards. Bit-equality of the two results
    //    is *asserted* (the engine's k-invariance contract), so the ratio
    //    really compares two computations of the same answer. The ratio is
    //    tracked, not gated: conservative lookahead on this PHY is the radio
    //    propagation delay (tens of ns), so on few-core or oversubscribed
    //    hosts a ratio *below 1* (4 shards slower than 1 — window/merge
    //    overhead with no cores to hide it) is the expected reading, not a
    //    regression — the number exists to show the trajectory as windows
    //    widen, not to claim a speed-up.
    let mut campus_results = Vec::new();
    let mut campus_ns = Vec::new();
    for shards in [1u32, 4] {
        let scenario = campus_scale_scenario(profile.campus_duration, shards);
        let start = Instant::now();
        let result = run(&scenario);
        let wall = start.elapsed();
        let delivered: u64 = result.flows.iter().map(|f| f.delivered_bytes).sum();
        benches.push(Bench {
            name: format!("campus1024_shard{shards}_end_to_end"),
            reps: 1,
            ns_per_op: wall.as_nanos() as f64,
            extras: vec![
                ("sim_millis", Value::Uint(profile.campus_duration.as_nanos() / 1_000_000)),
                ("delivered_bytes", Value::Uint(delivered)),
            ],
        });
        campus_results.push(result);
        campus_ns.push(wall.as_nanos() as f64);
    }
    assert_eq!(
        campus_results[0], campus_results[1],
        "campus-1k: 4 shards must be bit-identical to 1 shard — benchmark invalid"
    );
    let campus_speedup = campus_ns[0] / campus_ns[1];

    Value::obj()
        .with("artefact", "bench_suite")
        .with("profile", profile.label)
        .with("benches", Value::Arr(benches.iter().map(Bench::to_value).collect()))
        .with(
            "speedup",
            Value::obj()
                .with("plan_transmission_grid36", dense_speedup)
                .with("plan_transmission_grid256", sparse_speedup)
                .with("link_refresh_grid256", refresh_speedup)
                .with("campus1024_shard4_vs_shard1", campus_speedup),
        )
}

/// The stable identity of a report: sorted bench names plus (prefixed)
/// speedup keys. This is what `--expect-keys` compares — a bench renamed,
/// dropped, or added without refreshing the committed reference is drift
/// the smoke job should catch, while timings stay ungated.
fn key_set(doc: &Value) -> Vec<String> {
    let mut keys: Vec<String> = doc
        .get("benches")
        .and_then(Value::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(|b| b.get("name").and_then(Value::as_str))
        .map(str::to_string)
        .collect();
    if let Some(Value::Obj(pairs)) = doc.get("speedup") {
        keys.extend(pairs.iter().map(|(k, _)| format!("speedup/{k}")));
    }
    keys.sort();
    keys
}

/// Compares the key sets of a measured report and the committed reference,
/// returning a human-readable diff on mismatch.
fn check_expected_keys(measured: &Value, reference: &Value) -> Result<(), String> {
    let got = key_set(measured);
    let want = key_set(reference);
    if got == want {
        return Ok(());
    }
    let missing: Vec<&String> = want.iter().filter(|k| !got.contains(k)).collect();
    let extra: Vec<&String> = got.iter().filter(|k| !want.contains(k)).collect();
    Err(format!(
        "bench key set drifted from the committed reference \
         (missing: {missing:?}, unexpected: {extra:?}) — if the suite \
         changed on purpose, regenerate the committed report"
    ))
}

/// Enforces the committed allocation budget against a measured report: for
/// every budget entry the named bench must exist, expose the metric, and
/// measure at or below `max`. The analogue of `--expect-keys` for
/// allocation pressure — a frame path that starts allocating again fails
/// the smoke job, while improvements pass silently (ratcheting the budget
/// down means regenerating `ci/alloc_budget.json`).
fn check_alloc_budget(measured: &Value, budget: &Value) -> Result<(), String> {
    if budget.get("artefact").and_then(Value::as_str) != Some("alloc_budget") {
        return Err("budget artefact must be \"alloc_budget\"".into());
    }
    let entries = budget
        .get("budgets")
        .and_then(Value::as_arr)
        .ok_or_else(|| "budgets must be an array".to_string())?;
    if entries.is_empty() {
        return Err("budgets must be non-empty".into());
    }
    let benches = measured.get("benches").and_then(Value::as_arr).unwrap_or(&[]);
    for entry in entries {
        let name = entry
            .get("bench")
            .and_then(Value::as_str)
            .ok_or_else(|| "every budget entry needs a bench name".to_string())?;
        let metric = entry
            .get("metric")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("budget for {name:?}: metric must be a string"))?;
        let max = entry
            .get("max")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("budget for {name:?}: max must be numeric"))?;
        let bench = benches
            .iter()
            .find(|b| b.get("name").and_then(Value::as_str) == Some(name))
            .ok_or_else(|| format!("alloc budget names bench {name:?}, absent from the report"))?;
        let got = bench
            .get(metric)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("bench {name:?} does not report {metric:?}"))?;
        if !got.is_finite() || got > max {
            return Err(format!(
                "bench {name:?}: {metric} = {got} exceeds the committed budget {max} — \
                 a frame-path allocation regression (or regenerate ci/alloc_budget.json \
                 if the change is intentional)"
            ));
        }
    }
    Ok(())
}

/// Schema check for a written report. This is the CI gate against malformed
/// output; it deliberately does not gate on timing values beyond "positive
/// and finite" (container speed varies).
fn validate(doc: &Value) -> Result<(), String> {
    if doc.get("artefact").and_then(Value::as_str) != Some("bench_suite") {
        return Err("artefact must be \"bench_suite\"".into());
    }
    match doc.get("profile").and_then(Value::as_str) {
        Some("quick" | "full") => {}
        other => return Err(format!("profile must be \"quick\" or \"full\", got {other:?}")),
    }
    let benches = doc
        .get("benches")
        .and_then(Value::as_arr)
        .ok_or_else(|| "benches must be an array".to_string())?;
    if benches.is_empty() {
        return Err("benches must be non-empty".into());
    }
    for bench in benches {
        let name = bench
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| "every bench needs a string name".to_string())?;
        if bench.get("reps").and_then(Value::as_u64).unwrap_or(0) == 0 {
            return Err(format!("bench {name:?}: reps must be a positive integer"));
        }
        let ns = bench
            .get("ns_per_op")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("bench {name:?}: ns_per_op must be numeric"))?;
        if !ns.is_finite() || ns <= 0.0 {
            return Err(format!("bench {name:?}: ns_per_op must be finite and positive"));
        }
    }
    let speedup = doc.get("speedup").ok_or_else(|| "speedup object missing".to_string())?;
    let Value::Obj(pairs) = speedup else { return Err("speedup must be an object".into()) };
    if pairs.is_empty() {
        return Err("speedup must be non-empty".into());
    }
    for (key, v) in pairs {
        let x = v.as_f64().ok_or_else(|| format!("speedup {key:?} must be numeric"))?;
        if !x.is_finite() || x <= 0.0 {
            return Err(format!("speedup {key:?} must be finite and positive, got {x}"));
        }
    }
    Ok(())
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_suite [--quick] [--name NAME] [--out PATH]\n\
         \x20      bench_suite --validate PATH [--expect-keys REF] [--alloc-budget REF]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut name = String::from("suite");
    let mut out: Option<String> = None;
    let mut validate_path: Option<String> = None;
    let mut expect_keys: Option<String> = None;
    let mut alloc_budget: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--name" => name = args.next().unwrap_or_else(|| usage()),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--validate" => validate_path = Some(args.next().unwrap_or_else(|| usage())),
            "--expect-keys" => expect_keys = Some(args.next().unwrap_or_else(|| usage())),
            "--alloc-budget" => alloc_budget = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    if (expect_keys.is_some() || alloc_budget.is_some()) && validate_path.is_none() {
        usage();
    }

    if let Some(path) = validate_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("bench_suite: cannot read {path}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let verdict = parse(&text).and_then(|doc| {
            validate(&doc)?;
            if let Some(ref_path) = &expect_keys {
                let ref_text = std::fs::read_to_string(ref_path)
                    .map_err(|err| format!("cannot read key reference {ref_path}: {err}"))?;
                check_expected_keys(&doc, &parse(&ref_text)?)?;
            }
            if let Some(budget_path) = &alloc_budget {
                let budget_text = std::fs::read_to_string(budget_path)
                    .map_err(|err| format!("cannot read alloc budget {budget_path}: {err}"))?;
                check_alloc_budget(&doc, &parse(&budget_text)?)?;
            }
            Ok(())
        });
        return match verdict {
            Ok(()) => {
                println!("bench_suite: {path} is well-formed");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("bench_suite: {path} is malformed: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    let profile = if quick { &QUICK } else { &FULL };
    let doc = run_suite(profile);
    validate(&doc).expect("freshly measured report must be well-formed");

    let path = out.unwrap_or_else(|| format!("BENCH_{name}.json"));
    // Checked emission: a non-finite timing (host clock misbehaving badly
    // enough to produce NaN/inf) must fail the run, not serialise as `null`.
    let text = match doc.to_json_string() {
        Ok(text) => text,
        Err(err) => {
            eprintln!("bench_suite: report is not serialisable: {err}");
            return ExitCode::FAILURE;
        }
    };
    std::fs::write(&path, format!("{text}\n")).expect("report path must be writable");

    // Human summary: the tracked ratios plus each raw number.
    if let Some(Value::Obj(pairs)) = doc.get("speedup") {
        for (key, v) in pairs {
            println!("{key}: {:.2}x speedup", v.as_f64().unwrap_or(f64::NAN));
        }
    }
    for bench in doc.get("benches").and_then(Value::as_arr).unwrap_or(&[]) {
        let name = bench.get("name").and_then(Value::as_str).unwrap_or("?");
        let ns = bench.get("ns_per_op").and_then(Value::as_f64).unwrap_or(f64::NAN);
        println!("{name}: {ns:.0} ns/op");
    }
    println!("wrote {path} ({} profile)", profile.label);
    ExitCode::SUCCESS
}
