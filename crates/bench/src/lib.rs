//! Benchmark harness support: scaled-down experiment configurations for
//! Criterion runs, plus the scenario builders the micro-benches share.
//!
//! Each Criterion bench in `benches/figures.rs` regenerates (a reduced
//! version of) one table or figure of the paper — the point is not the
//! wall-clock number but a harness that exercises the exact workload,
//! parameter sweep, baseline set and reporting path behind each artefact.
//! Set `RIPPLE_REPRO=paper` and run the `wmn-experiments` binaries for the
//! full-scale numbers.

use wmn_experiments::ExpConfig;
use wmn_netsim::{run, FlowSpec, RunResult, Scenario, Scheme, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration};

/// The configuration benches run experiments with (150 ms, one seed).
pub fn bench_config() -> ExpConfig {
    ExpConfig::bench()
}

/// A canonical 3-hop FTP scenario used by the micro benches.
pub fn three_hop_scenario(scheme: Scheme) -> Scenario {
    Scenario {
        name: "bench-3hop".into(),
        params: PhyParams::paper_216(),
        positions: (0..4).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect(),
        scheme,
        flows: vec![FlowSpec { path: (0..4).map(NodeId::new).collect(), workload: Workload::Ftp }],
        duration: SimDuration::from_millis(100),
        seed: 7,
        max_forwarders: 5,
    }
}

/// Runs the canonical scenario (used to keep bench bodies one-liners).
pub fn run_three_hop(scheme: Scheme) -> RunResult {
    run(&three_hop_scenario(scheme))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenario_is_runnable() {
        let result = run_three_hop(Scheme::Ripple { aggregation: 16 });
        assert!(result.flows[0].delivered_bytes > 0);
    }
}
