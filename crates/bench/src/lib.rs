//! Benchmark harness support: scaled-down experiment configurations for
//! Criterion runs, the scenario builders the micro-benches share, and the
//! measured workloads behind the `bench_suite` binary (the repo's tracked
//! perf trajectory, written as `BENCH_*.json`).
//!
//! Each Criterion bench in `benches/figures.rs` regenerates (a reduced
//! version of) one table or figure of the paper — the point is not the
//! wall-clock number but a harness that exercises the exact workload,
//! parameter sweep, baseline set and reporting path behind each artefact.
//! Set `RIPPLE_REPRO=paper` and run the `wmn-experiments` binaries for the
//! full-scale numbers.

use wmn_experiments::ExpConfig;
use wmn_netsim::{
    run, FlowSpec, MotionPlan, NodePath, RunResult, Scenario, Scheme, Waypoint, Workload,
};
use wmn_phy::{Medium, PhyParams, Position, RxPlan};
use wmn_sim::{NodeId, SimDuration, SimTime, StreamRng};
use wmn_topology::collision;
use wmn_traffic::CbrModel;

/// The configuration benches run experiments with (150 ms, one seed).
pub fn bench_config() -> ExpConfig {
    ExpConfig::bench()
}

/// A canonical 3-hop FTP scenario used by the micro benches.
pub fn three_hop_scenario(scheme: Scheme) -> Scenario {
    Scenario {
        name: "bench-3hop".into(),
        params: PhyParams::paper_216(),
        positions: (0..4).map(|i| Position::new(f64::from(i) * 5.0, 0.0)).collect(),
        scheme,
        flows: vec![FlowSpec { path: (0..4).map(NodeId::new).collect(), workload: Workload::Ftp }],
        duration: SimDuration::from_millis(100),
        seed: 7,
        max_forwarders: 5,
        motion: wmn_netsim::MotionPlan::default(),
        route_refresh: None,
        shards: None,
    }
}

/// Runs the canonical scenario (used to keep bench bodies one-liners).
pub fn run_three_hop(scheme: Scheme) -> RunResult {
    run(&three_hop_scenario(scheme))
}

/// Station placement on a `side`×`side` grid with `spacing_m` metre pitch.
///
/// The planner benchmarks use two instances: a dense 6×6 @ 5 m grid where
/// every pair is within possible carrier sense (every draw is taken), and a
/// campus-scale 16×16 @ 40 m grid (600 m side) where pairs beyond ~417 m —
/// the distance at which even a maximal shadowing excursion stays below
/// carrier sense — are classified never-sensed at build time (the cached
/// planner's fast path).
pub fn grid_positions(side: usize, spacing_m: f64) -> Vec<Position> {
    let mut positions = Vec::with_capacity(side * side);
    for row in 0..side {
        for col in 0..side {
            positions.push(Position::new(col as f64 * spacing_m, row as f64 * spacing_m));
        }
    }
    positions
}

/// The pre-refactor `plan_transmission`: re-derives distance, mean path
/// loss, and thresholds for every pair on every call, through the public
/// propagation API. This is the baseline side of the cached-vs-naive
/// benchmark; it is pinned bit-identical to the cached planner both here
/// (unit test) and in `wmn_phy`'s property suite, so the two sides of the
/// timing comparison provably do the same work.
pub fn naive_plan_reference(medium: &Medium, from: NodeId, rng: &mut StreamRng) -> Vec<RxPlan> {
    let p = medium.params();
    let mut plans = Vec::new();
    for idx in 0..medium.node_count() {
        if idx == from.index() {
            continue;
        }
        let to = NodeId::new(idx as u32);
        let d = medium.position(from).distance_to(medium.position(to));
        let power = p.shadowing.sample_rx_dbm(p.tx_power_dbm, d, rng);
        if power < p.cs_thresh_dbm {
            continue;
        }
        plans.push(RxPlan {
            to,
            delay: p.propagation_delay(d),
            power_dbm: power,
            decodable: power >= p.rx_thresh_dbm,
        });
    }
    plans
}

/// A fig-6(b)-class end-to-end scenario: a 3-hop RIPPLE-16 FTP flow whose
/// relays are exposed to `n_hidden` saturated hidden CBR senders — the
/// heaviest per-transmission fan-out workload in the paper's experiment
/// set, used as the suite's end-to-end timing probe.
pub fn fig6_class_scenario(n_hidden: usize, duration: SimDuration) -> Scenario {
    let topo = collision::hidden_terminals(n_hidden);
    let mut flows = vec![FlowSpec { path: collision::hidden_main_path(), workload: Workload::Ftp }];
    for k in 0..n_hidden {
        let (s, d) = collision::hidden_flow_endpoints(k);
        flows.push(FlowSpec { path: vec![s, d], workload: Workload::Cbr(CbrModel::heavy()) });
    }
    Scenario {
        name: format!("bench-fig6b-{n_hidden}"),
        params: PhyParams::paper_216(),
        positions: topo.positions,
        scheme: Scheme::Ripple { aggregation: 16 },
        flows,
        duration,
        seed: 0,
        max_forwarders: 5,
        motion: wmn_netsim::MotionPlan::default(),
        route_refresh: None,
        shards: None,
    }
}

/// The mobile variant of [`fig6_class_scenario`]: the main flow's two
/// relays pace laterally (waypoint round trips, ±2.5 m every 250 ms for up
/// to 2 s) while the hidden CBR senders stay put — so every mobility tick
/// refreshes link rows *during* the heaviest fan-out workload in the suite.
/// This is the end-to-end probe for the incremental link-state refresh.
pub fn fig6_class_mobile_scenario(n_hidden: usize, duration: SimDuration) -> Scenario {
    let mut scenario = fig6_class_scenario(n_hidden, duration);
    scenario.name = format!("bench-fig6b-mobile-{n_hidden}");
    let mut paths = vec![NodePath::Static; scenario.positions.len()];
    for (node, side) in [(1usize, 1.0f64), (2, -1.0)] {
        let x = scenario.positions[node].x;
        let points = (1..=8u64)
            .map(|leg| Waypoint {
                at: SimTime::from_millis(250 * leg),
                pos: Position::new(x, if leg % 2 == 1 { 2.5 * side } else { 0.0 }),
            })
            .collect();
        paths[node] = NodePath::Waypoints(points);
    }
    scenario.motion = MotionPlan { paths, tick: SimDuration::from_millis(10) };
    scenario
}

/// The thousand-station probe for the sharded engine: the `campus-1k`
/// scengen preset (1024 stations in 32 dense clusters, mixed FTP/VoIP/CBR
/// traffic) at the given duration and shard count. The suite runs it at
/// `shards: Some(1)` and `Some(k)` and *asserts bit-equality* — the timing
/// comparison is only meaningful because both sides provably compute the
/// same result.
pub fn campus_scale_scenario(duration: SimDuration, shards: u32) -> Scenario {
    let mut scenario =
        wmn_scengen::ScenarioSpec::campus_scale().materialise().expect("campus-1k preset is valid");
    scenario.duration = duration;
    scenario.shards = Some(shards);
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scenario_is_runnable() {
        let result = run_three_hop(Scheme::Ripple { aggregation: 16 });
        assert!(result.flows[0].delivered_bytes > 0);
    }

    #[test]
    fn grid_positions_shape() {
        let g = grid_positions(4, 5.0);
        assert_eq!(g.len(), 16);
        assert!((g[0].distance_to(g[1]) - 5.0).abs() < 1e-12);
        assert!((g[0].distance_to(g[4]) - 5.0).abs() < 1e-12);
    }

    /// The benchmark's naive reference must stay bit-identical to the cached
    /// planner — otherwise the timed comparison would not be apples to
    /// apples. (The `wmn_phy` property suite pins the same equivalence
    /// against the in-crate naive oracle.)
    #[test]
    fn naive_reference_matches_cached_planner() {
        for (side, spacing) in [(6usize, 5.0f64), (16, 40.0)] {
            let medium = Medium::new(PhyParams::paper_216(), grid_positions(side, spacing));
            let mut rng_c = StreamRng::derive(11, "bench/pin");
            let mut rng_n = StreamRng::derive(11, "bench/pin");
            let n = (side * side) as u64;
            for i in 0..200u64 {
                let from = NodeId::new((i % n) as u32);
                let cached = medium.plan_transmission(from, &mut rng_c);
                let naive = naive_plan_reference(&medium, from, &mut rng_n);
                assert_eq!(cached, naive, "grid {side}x{side} call {i}");
            }
            assert_eq!(rng_c.next_u64(), rng_n.next_u64(), "stream positions diverged");
        }
    }

    #[test]
    fn sparse_grid_has_never_sensed_pairs_dense_has_none() {
        use wmn_phy::LinkClass;
        let dense = Medium::new(PhyParams::paper_216(), grid_positions(6, 5.0));
        let sparse = Medium::new(PhyParams::paper_216(), grid_positions(16, 40.0));
        let count_never = |m: &Medium| {
            let n = m.node_count() as u32;
            let mut never = 0usize;
            for a in 0..n {
                for b in 0..n {
                    if a != b
                        && m.link_class(NodeId::new(a), NodeId::new(b)) == LinkClass::NeverSensed
                    {
                        never += 1;
                    }
                }
            }
            never
        };
        assert_eq!(count_never(&dense), 0, "6x6 @ 5 m: every pair draw-dependent");
        assert!(count_never(&sparse) > 0, "16x16 @ 40 m: far corners never sense each other");
    }

    #[test]
    fn fig6_class_scenario_is_valid_and_runs() {
        let s = fig6_class_scenario(3, SimDuration::from_millis(50));
        assert_eq!(s.validate(), Ok(()));
        let r = run(&s);
        assert!(r.flows[0].delivered_bytes > 0, "main flow must make progress");
    }

    #[test]
    fn campus_scale_scenario_is_valid_and_shard_invariant_probe_shaped() {
        let s = campus_scale_scenario(SimDuration::from_millis(2), 4);
        assert_eq!(s.validate(), Ok(()));
        assert_eq!(s.positions.len(), 1024);
        assert_eq!(s.shards, Some(4));
        // Both suite sides must describe the same run, differing only in
        // shard count (the suite then asserts result bit-equality).
        let one = campus_scale_scenario(SimDuration::from_millis(2), 1);
        assert_eq!(one.shards, Some(1));
        assert_eq!(one.positions, s.positions);
        assert_eq!(one.seed, s.seed);
        assert_eq!(one.duration, s.duration);
        assert_eq!(one.flows.len(), s.flows.len());
    }

    #[test]
    fn fig6_class_mobile_scenario_moves_and_runs() {
        let s = fig6_class_mobile_scenario(3, SimDuration::from_millis(300));
        assert_eq!(s.validate(), Ok(()));
        assert!(!s.motion.is_static(), "the relays must actually move");
        let r = run(&s);
        assert!(r.flows[0].delivered_bytes > 0, "main flow survives the pacing relays");
        // Determinism holds under mobility (the bench compares across
        // commits, so a nondeterministic probe would be useless).
        assert_eq!(r, run(&s));
    }
}
