//! One Criterion bench per table/figure of the paper. Each bench runs a
//! time-reduced version of the corresponding experiment — same topology,
//! workload generator, baseline roster and reporting path as the
//! full-scale binaries in `wmn-experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wmn_bench::bench_config;
use wmn_experiments as exp;

fn fig2_overhead(c: &mut Criterion) {
    c.bench_function("fig2_overhead_table", |b| {
        b.iter(|| black_box(exp::fig2::generate()));
    });
}

fn motivation(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("motivation");
    group.sample_size(10);
    group.bench_function("spr_vs_exor", |b| {
        b.iter(|| black_box(exp::motivation::generate(&cfg)));
    });
    group.finish();
}

fn fig3(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("long_tcp_ber1e6", |b| {
        b.iter(|| black_box(exp::fig3::generate(1e-6, &cfg)));
    });
    group.finish();
}

fn fig4(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("long_tcp_ber1e5", |b| {
        b.iter(|| black_box(exp::fig3::generate(1e-5, &cfg)));
    });
    group.finish();
}

fn fig6(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("regular_collisions", |b| {
        b.iter(|| black_box(exp::fig6::generate_regular(&cfg)));
    });
    group.bench_function("hidden_collisions", |b| {
        b.iter(|| black_box(exp::fig6::generate_hidden(&cfg)));
    });
    group.finish();
}

fn fig7(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("hops_sweep", |b| {
        b.iter(|| black_box(exp::fig7::generate(&cfg)));
    });
    group.finish();
}

fn fig8(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("web_traffic", |b| {
        b.iter(|| black_box(exp::fig8::generate_with_users(&cfg, 2)));
    });
    group.finish();
}

fn table3(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("voip_mos", |b| {
        b.iter(|| black_box(exp::table3::generate(&cfg)));
    });
    group.finish();
}

fn fig10(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("wigle", |b| {
        b.iter(|| black_box(exp::fig10::generate(&cfg)));
    });
    group.finish();
}

fn fig12(c: &mut Criterion) {
    let cfg = bench_config();
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.bench_function("roofnet", |b| {
        b.iter(|| black_box(exp::fig12::generate(&cfg)));
    });
    group.finish();
}

criterion_group!(
    figures,
    fig2_overhead,
    motivation,
    fig3,
    fig4,
    fig6,
    fig7,
    fig8,
    table3,
    fig10,
    fig12
);
criterion_main!(figures);
