//! Micro-benchmarks of the simulator's hot paths: the event queue
//! (bulk and interleaved schedule/pop), the parallel grid executor, the
//! shadowing medium, frame wire-size arithmetic, and end-to-end scheme
//! comparisons on a canonical 3-hop flow (the ablation the DESIGN.md calls
//! out: mTXOP alone vs aggregation alone vs both).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wmn_bench::run_three_hop;
use wmn_netsim::Scheme;
use wmn_phy::{Medium, PhyParams, Position};
use wmn_sim::{EventQueue, NodeId, SimTime, StreamRng};

fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
    // The simulator's steady-state pattern: a bounded frontier where every
    // pop schedules successors, many at the same instant (tie-break path).
    c.bench_function("event_queue_interleaved_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..64u64 {
                q.schedule(SimTime::from_nanos(i / 4), i);
            }
            let mut sum = 0u64;
            for i in 64..10_000u64 {
                let (t, e) = q.pop().expect("frontier never empties");
                sum = sum.wrapping_add(e);
                q.schedule(t + wmn_sim::SimDuration::from_nanos(i % 3), i);
            }
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        });
    });
}

/// The parallel grid engine on the canonical 3-hop scenario: serial vs all
/// cores. On a multi-core host the second number tracks the wall-clock win
/// `repro_all` gets; on a single-core host they coincide (engine overhead).
fn executor_grid(c: &mut Criterion) {
    use wmn_exec::{Executor, RunPlan};
    let scenario = wmn_bench::three_hop_scenario(Scheme::Ripple { aggregation: 16 });
    let seeds: Vec<u64> = (1..=8).collect();
    let plan = RunPlan::grid(
        std::slice::from_ref(&scenario),
        &seeds,
        wmn_sim::SimDuration::from_millis(20),
    );
    let mut group = c.benchmark_group("executor_grid_8_seeds");
    group.sample_size(10);
    group.bench_function("jobs_1", |b| {
        b.iter(|| black_box(Executor::new(1).execute(&plan).results.len()));
    });
    group.bench_function("jobs_all_cores", |b| {
        let jobs = wmn_exec::available_jobs();
        b.iter(|| black_box(Executor::new(jobs).execute(&plan).results.len()));
    });
    group.finish();
}

fn medium_planning(c: &mut Criterion) {
    let positions: Vec<Position> =
        (0..36).map(|i| Position::new(f64::from(i % 6) * 5.5, f64::from(i / 6) * 5.5)).collect();
    let medium = Medium::new(PhyParams::paper_216(), positions);
    c.bench_function("medium_plan_transmission_36_nodes", |b| {
        let mut rng = StreamRng::derive(1, "bench-medium");
        b.iter(|| black_box(medium.plan_transmission(NodeId::new(14), &mut rng)));
    });
}

/// The ablation of the paper's two mechanisms (Section IV-A): pure mTXOP
/// (R1), pure aggregation (AFR), and both (R16), against the DCF baseline.
fn scheme_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_3hop_tcp");
    group.sample_size(10);
    for (name, scheme) in [
        ("dcf", Scheme::Dcf { aggregation: 1 }),
        ("mtxop_only_r1", Scheme::Ripple { aggregation: 1 }),
        ("aggregation_only_afr", Scheme::Dcf { aggregation: 16 }),
        ("both_r16", Scheme::Ripple { aggregation: 16 }),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_three_hop(scheme)));
        });
    }
    group.finish();
}

criterion_group!(micro, event_queue, executor_grid, medium_planning, scheme_ablation);
criterion_main!(micro);
