//! Golden regression tests for experiment outputs.
//!
//! Each test renders a figure/table at a small fixed configuration
//! (120 simulated ms, seeds {1, 2}) and compares it byte-for-byte with a
//! snapshot taken when the parallel grid engine landed. A mismatch means a
//! refactor changed the simulation's numbers — if the change is intended
//! (e.g. a physics or MAC fix), update the snapshot string in the failing
//! test *and say so in the commit*; if not, it just caught a regression
//! tier-1 would otherwise miss.
//!
//! The snapshot values are engine-independent: `run_grid` guarantees
//! bit-identical results for any `RIPPLE_JOBS`, so a worker-count change
//! can never move them. They are *not* guaranteed bit-identical across
//! platforms — the sim's math uses libm functions (`ln`, `powf`, `cos`)
//! whose last-ulp behaviour varies by OS/arch — so a mismatch on a new
//! platform with no code change means a rounding boundary, not a bug;
//! CI pins x86-64 Linux.

use wmn_experiments as exp;
use wmn_experiments::ExpConfig;
use wmn_sim::SimDuration;

/// The pinned snapshot configuration. Changing it invalidates every golden
/// string below, so don't.
fn golden_cfg() -> ExpConfig {
    ExpConfig::custom(SimDuration::from_millis(120), vec![1, 2])
}

/// Diff-friendly assertion: on mismatch, print the full actual rendering so
/// the snapshot can be updated by copy-paste.
fn assert_golden(actual: &str, expected: &str, what: &str) {
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "\n== {what} diverged from its golden snapshot ==\n\
         -- actual --\n{actual}\n-- end actual --\n"
    );
}

#[test]
fn fig3_route0_matches_snapshot() {
    let tables = exp::fig3::generate(1e-6, &golden_cfg());
    assert_golden(&tables[0].to_string(), GOLDEN_FIG3_ROUTE0, "fig3 ROUTE0");
}

#[test]
fn fig6_regular_matches_snapshot() {
    let table = exp::fig6::generate_regular(&golden_cfg());
    assert_golden(&table.to_string(), GOLDEN_FIG6_REGULAR, "fig6(a)");
}

#[test]
fn table3_matches_snapshot() {
    let tables = exp::table3::generate(&golden_cfg());
    assert_golden(&tables[0].to_string(), GOLDEN_TABLE3_BER1E5, "table3 BER 1e-5");
    assert_golden(&tables[1].to_string(), GOLDEN_TABLE3_BER1E6, "table3 BER 1e-6");
}

const GOLDEN_FIG3_ROUTE0: &str = "\
### Fig. 3 (ROUTE0) — total TCP throughput (Mbps), BER 1e-6
| scheme | flow 1 | flows 1+2 | flows 1+2+3 |
|--------|--------|-----------|-------------|
| S      | 0.07   | 0.73      | 1.77        |
| D      | 7.97   | 7.87      | 8.03        |
| R1     | 11.57  | 8.17      | 13.23       |
| A      | 38.07  | 32.03     | 33.77       |
| R16    | 56.80  | 56.37     | 57.57       |";

const GOLDEN_FIG6_REGULAR: &str = "\
### Fig. 6(a) — single cell, total TCP throughput (Mbps) vs #flows
| scheme | 2 flows | 4 flows | 6 flows | 8 flows | 10 flows |
|--------|---------|---------|---------|---------|----------|
| DCF    | 27.37   | 30.10   | 32.07   | 31.93   | 31.53    |
| AFR    | 126.07  | 120.70  | 120.83  | 114.57  | 113.30   |
| RIPPLE | 127.73  | 121.47  | 124.60  | 117.70  | 114.77   |";

const GOLDEN_TABLE3_BER1E5: &str = "\
### Table III — VoIP MoS, 6 Mbps, BER 1e-5
| scheme | flows 1..10 | flows 1..20 | flows 1..30 |
|--------|-------------|-------------|-------------|
| DCF    | 4.02        | 2.42        | 2.12        |
| AFR    | 4.02        | 2.89        | 2.14        |
| RIPPLE | 4.03        | 4.02        | 3.89        |";

const GOLDEN_TABLE3_BER1E6: &str = "\
### Table III — VoIP MoS, 6 Mbps, BER 1e-6
| scheme | flows 1..10 | flows 1..20 | flows 1..30 |
|--------|-------------|-------------|-------------|
| DCF    | 4.02        | 2.45        | 2.17        |
| AFR    | 4.02        | 3.15        | 2.14        |
| RIPPLE | 4.03        | 4.02        | 3.40        |";
