//! Determinism suite for the generated-scenario sweep (the acceptance
//! contract of the scengen pipeline): the CI sweep is a ≥32-run generated
//! grid whose deterministic report JSON is **byte-identical across worker
//! counts** — same spec + seeds in, same bytes out, whether the engine runs
//! serial or 8-wide.

use wmn_experiments::sweep::{artefact_name, run_sweep};
use wmn_scengen::SweepSpec;

#[test]
fn ci_sweep_json_is_byte_identical_across_1_and_8_workers() {
    let spec = SweepSpec::ci_quick();
    assert!(
        spec.run_count() >= 32,
        "the CI sweep must stay a >=32-run grid, got {}",
        spec.run_count()
    );
    assert_eq!(artefact_name(&spec), "sweep_ci-quick", "baseline gate keys on this stem");

    let serial = run_sweep(&spec, 1).expect("serial sweep");
    let parallel = run_sweep(&spec, 8).expect("parallel sweep");
    assert_eq!(
        serial.document.to_string(),
        parallel.document.to_string(),
        "sweep JSON must not depend on the worker count"
    );
    assert_eq!(serial.table.row_count(), spec.scenario_count());

    // The spec itself survives the round trip through its own report: the
    // document embeds the spec, so a sweep report alone can re-run the sweep.
    let embedded = serial.document.get("spec").expect("report embeds the spec");
    assert_eq!(SweepSpec::from_json(embedded).expect("spec decodes"), spec);
}

#[test]
fn refresh_sweep_json_is_byte_identical_across_1_and_8_workers() {
    // Live route refresh consumes no RNG and runs inside each worker's own
    // simulation, so the refresh-enabled mobility grid must keep the same
    // bytes-out contract at any worker count.
    let spec = SweepSpec::ci_mobility_refresh();
    assert_eq!(artefact_name(&spec), "sweep_ci-mobility-refresh");

    let serial = run_sweep(&spec, 1).expect("serial sweep");
    let parallel = run_sweep(&spec, 8).expect("parallel sweep");
    assert_eq!(
        serial.document.to_string(),
        parallel.document.to_string(),
        "refresh-enabled sweep JSON must not depend on the worker count"
    );
    assert_eq!(serial.table.row_count(), spec.scenario_count());
    let embedded = serial.document.get("spec").expect("report embeds the spec");
    assert_eq!(SweepSpec::from_json(embedded).expect("spec decodes"), spec);
}

#[test]
fn mobility_sweep_json_is_byte_identical_across_1_and_8_workers() {
    // Moving nodes must not weaken the determinism contract: the mobility
    // companion grid (static + drift + waypoint cells) produces the same
    // report bytes at any worker count.
    let spec = SweepSpec::ci_mobility();
    assert_eq!(artefact_name(&spec), "sweep_ci-mobility");

    let serial = run_sweep(&spec, 1).expect("serial sweep");
    let parallel = run_sweep(&spec, 8).expect("parallel sweep");
    assert_eq!(
        serial.document.to_string(),
        parallel.document.to_string(),
        "mobile sweep JSON must not depend on the worker count"
    );
    assert_eq!(serial.table.row_count(), spec.scenario_count());
    let embedded = serial.document.get("spec").expect("report embeds the spec");
    assert_eq!(SweepSpec::from_json(embedded).expect("spec decodes"), spec);
}
