//! Smoke coverage for the workspace's experiment surface: every table /
//! figure generator behind the `fig*`, `table3`, `motivation`, `ablation`
//! and `repro_all` binaries must at least construct its scenarios and
//! produce a non-empty report without panicking.
//!
//! Runs use a deliberately microscopic configuration (10 simulated
//! milliseconds, one seed) so tier-1 stays fast; the numbers are
//! meaningless at this scale — only the construction and reporting paths
//! are under test. `repro_all` itself is the sequential composition of
//! exactly these generators (plus `ExpConfig::from_env`, covered below).

use wmn_experiments as exp;
use wmn_experiments::ExpConfig;
use wmn_sim::SimDuration;

/// The smallest configuration that still drives every code path.
fn micro() -> ExpConfig {
    ExpConfig::custom(SimDuration::from_millis(10), vec![1])
}

#[test]
fn fig2_overhead_tables() {
    assert!(!exp::fig2::generate().to_string().is_empty());
    assert!(!exp::fig2::worked_example().to_string().is_empty());
}

#[test]
fn motivation_table() {
    assert!(!exp::motivation::generate(&micro()).to_string().is_empty());
}

#[test]
fn fig3_fig4_long_tcp_both_bers() {
    for ber in [1e-6, 1e-5] {
        let tables = exp::fig3::generate(ber, &micro());
        assert!(!tables.is_empty(), "fig3 at BER {ber} produced no tables");
    }
}

#[test]
fn fig6_collision_topologies() {
    assert!(!exp::fig6::generate_regular(&micro()).to_string().is_empty());
    assert!(!exp::fig6::generate_hidden(&micro()).to_string().is_empty());
}

#[test]
fn fig7_hop_sweep() {
    assert!(!exp::fig7::generate(&micro()).is_empty());
}

#[test]
fn fig8_web_traffic() {
    assert!(!exp::fig8::generate_with_users(&micro(), 1).to_string().is_empty());
}

#[test]
fn table3_voip_mos() {
    assert!(!exp::table3::generate(&micro()).is_empty());
}

#[test]
fn fig10_wigle_mesh() {
    assert!(!exp::fig10::generate(&micro()).is_empty());
}

#[test]
fn fig12_roofnet_mesh() {
    assert!(!exp::fig12::generate(&micro()).is_empty());
}

#[test]
fn ablation_tables() {
    let cfg = micro();
    assert!(!exp::ablation::max_forwarders(&cfg).to_string().is_empty());
    assert!(!exp::ablation::aggregation_limit(&cfg).to_string().is_empty());
    assert!(!exp::ablation::phy_rates(&cfg).to_string().is_empty());
}

#[test]
fn repro_all_config_resolution() {
    // `repro_all` starts from the environment-selected config; the default
    // (no RIPPLE_REPRO set in the test environment) must be the quick one.
    let cfg = ExpConfig::from_env();
    assert!(!cfg.seeds.is_empty());
    assert!(cfg.duration > SimDuration::from_millis(0));
}
