//! The generated-scenario sweep driver: expands a [`SweepSpec`] grid
//! through the same [`crate::common::run_grid`] path the paper figures use
//! and
//! renders one deterministic report.
//!
//! The report document deliberately contains **no timing** — only the spec
//! echo, the run count, and the seed-averaged result tables — so the same
//! spec produces byte-identical JSON at any worker count (the property the
//! determinism suite pins and the CI baseline gate diffs against).

use wmn_exec::json::Value;
use wmn_exec::report::table_value;
use wmn_exec::Executor;
use wmn_metrics::Table;
use wmn_scengen::SweepSpec;
use wmn_sim::SimDuration;

use crate::common::{run_grid, ExpConfig};

/// One executed sweep: the rendered table plus the deterministic report
/// document.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Seed-averaged per-scenario results.
    pub table: Table,
    /// The full report: `{sweep, spec, runs, tables}` — worker-count
    /// independent by construction.
    pub document: Value,
}

/// The artefact/file stem a sweep's reports are written under
/// (`sweep_<name>`).
pub fn artefact_name(spec: &SweepSpec) -> String {
    format!("sweep_{}", spec.name)
}

/// Expands `spec`, fans the `(scenario × run_seed)` grid across `jobs`
/// workers, and returns the seed-averaged table plus the deterministic
/// report document.
///
/// # Errors
///
/// Propagates expansion failures (empty axes, unroutable cells) verbatim.
pub fn run_sweep(spec: &SweepSpec, jobs: usize) -> Result<SweepOutcome, String> {
    let scenarios = spec.expand()?;
    let cfg = ExpConfig {
        duration: SimDuration::from_millis(spec.duration_ms),
        seeds: spec.run_seeds.clone(),
        jobs,
        // The RIPPLE_SHARDS override reaches sweeps through here: the CI
        // shard-determinism job byte-compares the same sweep at 1/2/8.
        shards: Executor::from_env().shards(),
    };
    let avgs = run_grid(&scenarios, &cfg);
    let mut table = Table::new(
        format!(
            "Sweep {} — seed-averaged throughput over {} runs ({} scenarios × {} seeds)",
            spec.name,
            spec.run_count(),
            scenarios.len(),
            spec.run_seeds.len()
        ),
        vec!["scenario", "nodes", "flows", "total Mbps", "worst flow Mbps", "mean MoS"],
    );
    for (scenario, avg) in scenarios.iter().zip(&avgs) {
        assert_eq!(scenario.name, avg.scenario, "grid order must match expansion order");
        let worst = avg.flows.iter().map(|f| f.throughput_mbps).fold(f64::INFINITY, f64::min);
        let moses: Vec<f64> = avg.flows.iter().filter_map(|f| f.mos).collect();
        let mos = if moses.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}", moses.iter().sum::<f64>() / moses.len() as f64)
        };
        table.add_row(vec![
            scenario.name.clone(),
            scenario.positions.len().to_string(),
            scenario.flows.len().to_string(),
            format!("{:.2}", avg.total_throughput_mbps),
            format!("{worst:.2}"),
            mos,
        ]);
    }
    let document = Value::obj()
        .with("sweep", spec.name.as_str())
        .with("spec", spec.to_json())
        .with("runs", spec.run_count())
        .with("tables", Value::Arr(vec![table_value(&table)]));
    Ok(SweepOutcome { table, document })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_scengen::{PairPolicy, TopologySpec, TrafficMix};

    /// A two-scenario, four-run sweep that keeps unit-test time low; the
    /// full ci-quick grid is exercised by `tests/sweep_determinism.rs`.
    fn tiny() -> SweepSpec {
        let mut spec = SweepSpec::ci_quick();
        spec.name = "tiny".into();
        spec.topologies = vec![TopologySpec::Grid { cols: 3, rows: 2, spacing_m: 5.0 }];
        spec.mixes =
            vec![TrafficMix { ftp: 1, web: 0, voip: 1, cbr: 0, pairing: PairPolicy::Random }];
        spec.topo_seeds = vec![1, 2];
        spec.run_seeds = vec![1, 2];
        spec.duration_ms = 60;
        spec
    }

    #[test]
    fn sweep_produces_one_row_per_scenario() {
        let spec = tiny();
        let outcome = run_sweep(&spec, 2).unwrap();
        assert_eq!(outcome.table.row_count(), spec.scenario_count());
        // VoIP flows give the MoS column real values on at least one row.
        assert!((0..outcome.table.row_count()).any(|r| outcome.table.cell(r, 5) != Some("-")));
        let text = outcome.document.to_string();
        assert!(text.contains("\"sweep\": \"tiny\""));
        assert!(text.contains("\"runs\": 8"));
        assert!(!text.contains("wall_ms"), "deterministic doc must carry no timing");
    }

    #[test]
    fn sweep_errors_surface_the_cell() {
        let mut spec = tiny();
        spec.mixes.clear();
        assert!(run_sweep(&spec, 1).unwrap_err().contains("empty"));
    }

    #[test]
    fn artefact_name_is_prefixed() {
        assert_eq!(artefact_name(&tiny()), "sweep_tiny");
    }
}
