//! Table III: VoIP MoS on the Fig. 1 topology at 6 Mbps PHY rates.
//!
//! VoIP flows 1–10 run between stations 0 and 3 (ROUTE0), 11–20 between 0
//! and 4, 21–30 between 5 and 7. For each activation pattern (first 10 /
//! 20 / 30 flows), each scheme's mean MoS is reported at BER 10⁻⁵ and
//! 10⁻⁶. Expected shape: all schemes are fine with 10 flows; at 20–30
//! flows DCF/AFR collapse toward MoS ≈ 1 while RIPPLE stays usable.

use wmn_metrics::{mean, Table};
use wmn_netsim::{FlowSpec, Scenario, Workload};
use wmn_phy::PhyParams;
use wmn_topology::fig1::RouteSet;
use wmn_traffic::VoipModel;

use crate::common::{dar_schemes, next_named, run_grid, ExpConfig};

/// Builds the first `count` VoIP flows of the Table III matrix (10 per
/// station pair, ROUTE0 paths).
pub fn voip_flows(count: usize) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for pair in 1..=3usize {
        let path = RouteSet::Route0.flow_path(pair);
        for _ in 0..10 {
            if flows.len() == count {
                return flows;
            }
            flows.push(FlowSpec {
                path: path.clone(),
                workload: Workload::Voip(VoipModel::paper()),
            });
        }
    }
    flows
}

/// Generates the Table III reproduction: one table per BER.
pub fn generate(cfg: &ExpConfig) -> Vec<Table> {
    const BERS: [f64; 2] = [1e-5, 1e-6];
    const COUNTS: [usize; 3] = [10, 20, 30];
    let topo = wmn_topology::fig1::topology();
    let mut scenarios = Vec::new();
    for ber in BERS {
        let params = PhyParams::paper_6().with_ber(ber);
        for (label, scheme) in dar_schemes() {
            for count in COUNTS {
                scenarios.push(Scenario {
                    name: format!("table3-{label}-{count}-{ber:e}"),
                    params: params.clone(),
                    positions: topo.positions.clone(),
                    scheme,
                    flows: voip_flows(count),
                    duration: cfg.duration,
                    seed: 0,
                    max_forwarders: 5,
                    motion: wmn_netsim::MotionPlan::default(),
                    route_refresh: None,
                    shards: None,
                });
            }
        }
    }
    let mut avgs = run_grid(&scenarios, cfg).into_iter();
    BERS.into_iter()
        .map(|ber| {
            let mut table = Table::new(
                format!("Table III — VoIP MoS, 6 Mbps, BER {ber:.0e}"),
                vec!["scheme", "flows 1..10", "flows 1..20", "flows 1..30"],
            );
            for (label, _) in dar_schemes() {
                let row: Vec<f64> = COUNTS
                    .iter()
                    .map(|count| {
                        let name = format!("table3-{label}-{count}-{ber:e}");
                        let avg = next_named(&mut avgs, &name);
                        let moses: Vec<f64> = avg.flows.iter().filter_map(|f| f.mos).collect();
                        mean(&moses)
                    })
                    .collect();
                table.add_numeric_row(label, &row);
            }
            table
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_sim::SimDuration;

    #[test]
    fn flow_matrix_counts() {
        assert_eq!(voip_flows(10).len(), 10);
        assert_eq!(voip_flows(30).len(), 30);
        // First ten flows all share the 0->3 pair.
        assert!(voip_flows(10).iter().all(|f| f.path == RouteSet::Route0.flow_path(1)));
    }

    #[test]
    fn light_load_gives_good_mos() {
        let cfg = ExpConfig::custom(SimDuration::from_millis(600), vec![1]);
        let tables = generate(&cfg);
        assert_eq!(tables.len(), 2);
        // Clear channel, 10 flows, RIPPLE row: MoS should be well above 2.
        let t = &tables[1];
        let ripple_10: f64 = t.cell(2, 1).unwrap().parse().unwrap();
        assert!(ripple_10 > 2.0, "light VoIP load must score decently: {ripple_10}");
    }
}
