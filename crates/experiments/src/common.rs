//! Shared experiment plumbing: the parallel `(scenario × seed)` grid runner,
//! seed averaging, and the figure scheme roster.

use wmn_exec::{Executor, RunPlan};
use wmn_metrics::mean;
use wmn_netsim::{RunResult, Scenario, Scheme};
use wmn_sim::SimDuration;

/// How long, how many times, and how wide to run each configuration.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Simulated duration per run (paper: 10 s).
    pub duration: SimDuration,
    /// Seeds to average over ("All results presented are averages over
    /// multiple runs").
    pub seeds: Vec<u64>,
    /// Worker threads for [`run_grid`]. Defaults to the `RIPPLE_JOBS`
    /// environment selection (host parallelism when unset); results are
    /// bit-identical for any value.
    pub jobs: usize,
    /// Shard override for [`run_grid`]: `Some(k)` forces every run onto
    /// the sharded engine at `k` shards (bit-identical for any `k ≥ 1`);
    /// `None` — the `RIPPLE_SHARDS`-unset default — respects each
    /// scenario's own `shards` knob.
    pub shards: Option<u32>,
}

impl ExpConfig {
    /// A configuration with explicit duration and seeds, and the
    /// environment-selected worker count and shard override.
    pub fn custom(duration: SimDuration, seeds: Vec<u64>) -> Self {
        let exec = Executor::from_env();
        ExpConfig { duration, seeds, jobs: exec.jobs(), shards: exec.shards() }
    }

    /// Fast settings for CI / benches: 1 s, two seeds.
    pub fn quick() -> Self {
        ExpConfig::custom(SimDuration::from_secs_f64(1.0), vec![1, 2])
    }

    /// Tiny settings used by Criterion benches.
    pub fn bench() -> Self {
        ExpConfig::custom(SimDuration::from_millis(150), vec![1])
    }

    /// The paper's settings: 10 s, five seeds.
    pub fn paper() -> Self {
        ExpConfig::custom(SimDuration::from_secs_f64(10.0), vec![1, 2, 3, 4, 5])
    }

    /// Middle ground used to generate EXPERIMENTS.md: 3 s, three seeds.
    pub fn mid() -> Self {
        ExpConfig::custom(SimDuration::from_secs_f64(3.0), vec![1, 2, 3])
    }

    /// Resolves a `RIPPLE_REPRO` setting: `paper`, `mid`, `quick`, or unset
    /// (meaning quick).
    ///
    /// # Errors
    ///
    /// Any other value is rejected with a message naming the valid settings
    /// — a typo like `RIPPLE_REPRO=papre` must not silently produce a quick
    /// run that looks like the real thing.
    pub fn parse_repro(value: Option<&str>) -> Result<Self, String> {
        // Trim like the RIPPLE_JOBS parser does, so the two env knobs agree
        // on what counts as a value.
        match value.map(str::trim) {
            None => Ok(ExpConfig::quick()),
            Some("quick") => Ok(ExpConfig::quick()),
            Some("mid") => Ok(ExpConfig::mid()),
            Some("paper") => Ok(ExpConfig::paper()),
            Some(other) => Err(format!(
                "RIPPLE_REPRO must be one of \"quick\", \"mid\", \"paper\" (or unset), \
                 got {other:?}"
            )),
        }
    }

    /// Reads `RIPPLE_REPRO` from the environment ([`Self::parse_repro`]).
    ///
    /// # Panics
    ///
    /// Panics with the [`Self::parse_repro`] message on an unknown value.
    pub fn from_env() -> Self {
        let value = std::env::var("RIPPLE_REPRO").ok();
        match Self::parse_repro(value.as_deref()) {
            Ok(cfg) => cfg,
            Err(msg) => panic!("{msg}"),
        }
    }
}

/// Seed-averaged per-flow results.
#[derive(Clone, Debug)]
pub struct AvgFlow {
    /// Mean throughput, Mbps.
    pub throughput_mbps: f64,
    /// Mean TCP re-order fraction (0 for non-TCP flows).
    pub reorder_fraction: f64,
    /// Mean MoS (VoIP flows only).
    pub mos: Option<f64>,
}

/// Seed-averaged results for one scenario configuration.
#[derive(Clone, Debug)]
pub struct AvgResult {
    /// The name of the scenario these averages came from (used by
    /// [`next_named`] to pin table cells to grid entries).
    pub scenario: String,
    /// Per-flow averages, in scenario flow order.
    pub flows: Vec<AvgFlow>,
    /// Mean total throughput, Mbps.
    pub total_throughput_mbps: f64,
}

/// Averages one scenario's per-seed results, in seed order.
fn average(name: &str, flow_count: usize, samples: &[RunResult]) -> AvgResult {
    let mut totals = Vec::with_capacity(samples.len());
    let mut per_flow: Vec<Vec<(f64, f64, Option<f64>)>> = vec![Vec::new(); flow_count];
    for result in samples {
        totals.push(result.total_throughput_mbps);
        for (i, f) in result.flows.iter().enumerate() {
            per_flow[i].push((
                f.throughput_mbps,
                f.tcp.map(|t| t.reorder_fraction()).unwrap_or(0.0),
                f.voip.map(|v| v.mos),
            ));
        }
    }
    let flows = per_flow
        .into_iter()
        .map(|samples| {
            let tputs: Vec<f64> = samples.iter().map(|s| s.0).collect();
            let reorders: Vec<f64> = samples.iter().map(|s| s.1).collect();
            let moses: Vec<f64> = samples.iter().filter_map(|s| s.2).collect();
            AvgFlow {
                throughput_mbps: mean(&tputs),
                reorder_fraction: mean(&reorders),
                mos: if moses.is_empty() { None } else { Some(mean(&moses)) },
            }
        })
        .collect();
    AvgResult { scenario: name.to_string(), flows, total_throughput_mbps: mean(&totals) }
}

/// Runs every `(scenario, seed)` combination of the grid — fanned across
/// `cfg.jobs` worker threads — and returns one seed-averaged result per
/// scenario, in scenario order.
///
/// This is the single entry point every figure/table module funnels
/// through: the per-run seed/duration overrides, the run ordering, and the
/// averaging all live here, so the numbers are identical to the historical
/// serial per-module seed loops for any worker count.
pub fn run_grid(scenarios: &[Scenario], cfg: &ExpConfig) -> Vec<AvgResult> {
    let plan = RunPlan::grid(scenarios, &cfg.seeds, cfg.duration);
    let outcome = Executor::new(cfg.jobs).with_shards(cfg.shards).execute(&plan);
    let per_seed = cfg.seeds.len();
    scenarios
        .iter()
        .enumerate()
        .map(|(i, scenario)| {
            average(
                &scenario.name,
                scenario.flows.len(),
                &outcome.results[i * per_seed..(i + 1) * per_seed],
            )
        })
        .collect()
}

/// Pops the next grid result and asserts it came from the scenario named
/// `expected`.
///
/// The grid modules build their scenarios in one loop and assemble tables
/// in a second, independently-written loop; this pins the two together so
/// any drift between them (a reordered axis, a filtered case) fails loudly
/// instead of silently writing one scheme's numbers into another's cells.
///
/// # Panics
///
/// Panics if the iterator is exhausted or the next result's scenario name
/// differs from `expected`.
pub fn next_named(avgs: &mut impl Iterator<Item = AvgResult>, expected: &str) -> AvgResult {
    let avg = avgs.next().unwrap_or_else(|| panic!("grid exhausted before scenario {expected:?}"));
    assert_eq!(
        avg.scenario, expected,
        "build/consume loop drift: expected scenario {expected:?}, grid has {:?}",
        avg.scenario
    );
    avg
}

/// Runs one scenario once per seed and averages the results (a one-scenario
/// [`run_grid`]).
pub fn run_averaged(scenario: &Scenario, cfg: &ExpConfig) -> AvgResult {
    run_grid(std::slice::from_ref(scenario), cfg).pop().expect("one scenario in, one average out")
}

/// The five schemes of Figs. 3/4 in paper order: S (direct DCF), D
/// (route DCF), R1 (RIPPLE no aggregation), A (AFR), R16 (RIPPLE).
/// `direct` tells the caller to collapse each flow's path to source →
/// destination.
pub fn figure_schemes() -> Vec<(&'static str, Scheme, bool)> {
    vec![
        ("S", Scheme::Dcf { aggregation: 1 }, true),
        ("D", Scheme::Dcf { aggregation: 1 }, false),
        ("R1", Scheme::Ripple { aggregation: 1 }, false),
        ("A", Scheme::Dcf { aggregation: 16 }, false),
        ("R16", Scheme::Ripple { aggregation: 16 }, false),
    ]
}

/// The three-scheme roster (DCF / AFR / RIPPLE) used by Figs. 6–8, 10, 12
/// and Table III.
pub fn dar_schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("DCF", Scheme::Dcf { aggregation: 1 }),
        ("AFR", Scheme::Dcf { aggregation: 16 }),
        ("RIPPLE", Scheme::Ripple { aggregation: 16 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_netsim::{run, FlowSpec, Workload};
    use wmn_phy::{PhyParams, Position};
    use wmn_sim::NodeId;

    fn two_node_scenario(name: &str) -> Scenario {
        Scenario {
            name: name.into(),
            params: PhyParams::paper_216(),
            positions: vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
            scheme: Scheme::Dcf { aggregation: 1 },
            flows: vec![FlowSpec {
                path: vec![NodeId::new(0), NodeId::new(1)],
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(100),
            seed: 0,
            max_forwarders: 5,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        }
    }

    #[test]
    fn averaging_covers_all_seeds() {
        let scenario = two_node_scenario("avg");
        let cfg = ExpConfig::custom(SimDuration::from_millis(100), vec![1, 2, 3]);
        let avg = run_averaged(&scenario, &cfg);
        assert_eq!(avg.flows.len(), 1);
        assert!(avg.flows[0].throughput_mbps > 1.0);
        assert!(avg.total_throughput_mbps > 1.0);
    }

    #[test]
    fn grid_matches_handrolled_serial_loop() {
        let scenarios = vec![two_node_scenario("g0"), two_node_scenario("g1")];
        let cfg = ExpConfig {
            duration: SimDuration::from_millis(40),
            seeds: vec![5, 6],
            jobs: 3,
            shards: None,
        };
        let grid = run_grid(&scenarios, &cfg);
        assert_eq!(grid.len(), 2);
        // The pre-engine serial path: run per seed, average by hand.
        for (scenario, avg) in scenarios.iter().zip(&grid) {
            let mut totals = Vec::new();
            for &seed in &cfg.seeds {
                let mut s = scenario.clone();
                s.seed = seed;
                s.duration = cfg.duration;
                totals.push(run(&s).total_throughput_mbps);
            }
            assert_eq!(avg.total_throughput_mbps, mean(&totals), "bit-identical averages");
        }
    }

    #[test]
    fn repro_parsing_accepts_known_and_rejects_unknown() {
        assert_eq!(ExpConfig::parse_repro(None).unwrap().seeds, vec![1, 2]);
        assert_eq!(ExpConfig::parse_repro(Some("quick")).unwrap().seeds, vec![1, 2]);
        assert_eq!(ExpConfig::parse_repro(Some("mid")).unwrap().seeds, vec![1, 2, 3]);
        assert_eq!(ExpConfig::parse_repro(Some("paper")).unwrap().seeds, vec![1, 2, 3, 4, 5]);
        let err = ExpConfig::parse_repro(Some("papre")).unwrap_err();
        assert!(err.contains("papre"), "error names the bad value: {err}");
        assert!(err.contains("\"paper\""), "error lists the valid settings: {err}");
        assert!(ExpConfig::parse_repro(Some("")).is_err(), "empty is not quick");
        // Whitespace is trimmed, matching the RIPPLE_JOBS parser.
        assert_eq!(ExpConfig::parse_repro(Some(" mid ")).unwrap().seeds, vec![1, 2, 3]);
    }

    #[test]
    fn next_named_pins_consumption_to_build_order() {
        let scenarios = vec![two_node_scenario("cell-a"), two_node_scenario("cell-b")];
        let cfg = ExpConfig::custom(SimDuration::from_millis(10), vec![1]);
        let mut avgs = run_grid(&scenarios, &cfg).into_iter();
        let a = next_named(&mut avgs, "cell-a");
        assert!(a.total_throughput_mbps >= 0.0);
        let misread = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            next_named(&mut avgs, "cell-zzz")
        }));
        assert!(misread.is_err(), "a drifted consume loop must panic, not mislabel");
    }

    #[test]
    fn configs_resolve_a_positive_worker_count() {
        for cfg in [ExpConfig::quick(), ExpConfig::bench(), ExpConfig::paper(), ExpConfig::mid()] {
            assert!(cfg.jobs >= 1);
        }
    }

    #[test]
    fn scheme_rosters() {
        let figs = figure_schemes();
        assert_eq!(figs.len(), 5);
        assert_eq!(figs[0].0, "S");
        assert!(figs[0].2, "S uses the direct path");
        assert_eq!(dar_schemes().len(), 3);
    }
}
