//! Shared experiment plumbing: seed-averaged runs and the figure scheme
//! roster.

use wmn_metrics::mean;
use wmn_netsim::{run, Scenario, Scheme};
use wmn_sim::SimDuration;

/// How long and how many times to run each configuration.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Simulated duration per run (paper: 10 s).
    pub duration: SimDuration,
    /// Seeds to average over ("All results presented are averages over
    /// multiple runs").
    pub seeds: Vec<u64>,
}

impl ExpConfig {
    /// Fast settings for CI / benches: 1 s, two seeds.
    pub fn quick() -> Self {
        ExpConfig { duration: SimDuration::from_secs_f64(1.0), seeds: vec![1, 2] }
    }

    /// Tiny settings used by Criterion benches.
    pub fn bench() -> Self {
        ExpConfig { duration: SimDuration::from_millis(150), seeds: vec![1] }
    }

    /// The paper's settings: 10 s, five seeds.
    pub fn paper() -> Self {
        ExpConfig { duration: SimDuration::from_secs_f64(10.0), seeds: vec![1, 2, 3, 4, 5] }
    }

    /// Middle ground used to generate EXPERIMENTS.md: 3 s, three seeds.
    pub fn mid() -> Self {
        ExpConfig { duration: SimDuration::from_secs_f64(3.0), seeds: vec![1, 2, 3] }
    }

    /// Reads `RIPPLE_REPRO` from the environment: `paper` selects the full
    /// 10 s × 5 seed runs, `mid` the 3 s × 3 seed runs, anything else the
    /// quick settings.
    pub fn from_env() -> Self {
        match std::env::var("RIPPLE_REPRO").as_deref() {
            Ok("paper") => ExpConfig::paper(),
            Ok("mid") => ExpConfig::mid(),
            _ => ExpConfig::quick(),
        }
    }
}

/// Seed-averaged per-flow results.
#[derive(Clone, Debug)]
pub struct AvgFlow {
    /// Mean throughput, Mbps.
    pub throughput_mbps: f64,
    /// Mean TCP re-order fraction (0 for non-TCP flows).
    pub reorder_fraction: f64,
    /// Mean MoS (VoIP flows only).
    pub mos: Option<f64>,
}

/// Seed-averaged results for one scenario configuration.
#[derive(Clone, Debug)]
pub struct AvgResult {
    /// Per-flow averages, in scenario flow order.
    pub flows: Vec<AvgFlow>,
    /// Mean total throughput, Mbps.
    pub total_throughput_mbps: f64,
}

/// Runs `scenario` once per seed (overriding its seed and duration from
/// `cfg`) and averages the results.
pub fn run_averaged(scenario: &Scenario, cfg: &ExpConfig) -> AvgResult {
    let mut totals = Vec::new();
    let mut per_flow: Vec<Vec<(f64, f64, Option<f64>)>> =
        vec![Vec::new(); scenario.flows.len()];
    for &seed in &cfg.seeds {
        let mut s = scenario.clone();
        s.seed = seed;
        s.duration = cfg.duration;
        let result = run(&s);
        totals.push(result.total_throughput_mbps);
        for (i, f) in result.flows.iter().enumerate() {
            per_flow[i].push((
                f.throughput_mbps,
                f.tcp.map(|t| t.reorder_fraction()).unwrap_or(0.0),
                f.voip.map(|v| v.mos),
            ));
        }
    }
    let flows = per_flow
        .into_iter()
        .map(|samples| {
            let tputs: Vec<f64> = samples.iter().map(|s| s.0).collect();
            let reorders: Vec<f64> = samples.iter().map(|s| s.1).collect();
            let moses: Vec<f64> = samples.iter().filter_map(|s| s.2).collect();
            AvgFlow {
                throughput_mbps: mean(&tputs),
                reorder_fraction: mean(&reorders),
                mos: if moses.is_empty() { None } else { Some(mean(&moses)) },
            }
        })
        .collect();
    AvgResult { flows, total_throughput_mbps: mean(&totals) }
}

/// The five schemes of Figs. 3/4 in paper order: S (direct DCF), D
/// (route DCF), R1 (RIPPLE no aggregation), A (AFR), R16 (RIPPLE).
/// `direct` tells the caller to collapse each flow's path to source →
/// destination.
pub fn figure_schemes() -> Vec<(&'static str, Scheme, bool)> {
    vec![
        ("S", Scheme::Dcf { aggregation: 1 }, true),
        ("D", Scheme::Dcf { aggregation: 1 }, false),
        ("R1", Scheme::Ripple { aggregation: 1 }, false),
        ("A", Scheme::Dcf { aggregation: 16 }, false),
        ("R16", Scheme::Ripple { aggregation: 16 }, false),
    ]
}

/// The three-scheme roster (DCF / AFR / RIPPLE) used by Figs. 6–8, 10, 12
/// and Table III.
pub fn dar_schemes() -> Vec<(&'static str, Scheme)> {
    vec![
        ("DCF", Scheme::Dcf { aggregation: 1 }),
        ("AFR", Scheme::Dcf { aggregation: 16 }),
        ("RIPPLE", Scheme::Ripple { aggregation: 16 }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_netsim::{FlowSpec, Workload};
    use wmn_phy::{PhyParams, Position};
    use wmn_sim::NodeId;

    #[test]
    fn averaging_covers_all_seeds() {
        let scenario = Scenario {
            name: "avg".into(),
            params: PhyParams::paper_216(),
            positions: vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
            scheme: Scheme::Dcf { aggregation: 1 },
            flows: vec![FlowSpec {
                path: vec![NodeId::new(0), NodeId::new(1)],
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(100),
            seed: 0,
            max_forwarders: 5,
        };
        let cfg = ExpConfig { duration: SimDuration::from_millis(100), seeds: vec![1, 2, 3] };
        let avg = run_averaged(&scenario, &cfg);
        assert_eq!(avg.flows.len(), 1);
        assert!(avg.flows[0].throughput_mbps > 1.0);
        assert!(avg.total_throughput_mbps > 1.0);
    }

    #[test]
    fn scheme_rosters() {
        let figs = figure_schemes();
        assert_eq!(figs.len(), 5);
        assert_eq!(figs[0].0, "S");
        assert!(figs[0].2, "S uses the direct path");
        assert_eq!(dar_schemes().len(), 3);
    }
}
