//! Fig. 6: the effect of regular and hidden collisions.
//!
//! * 6(a) — `n` single-hop TCP flows packed in one cell (Fig. 5a): total
//!   throughput drops with contention; RIPPLE (aggregation) stays on top.
//! * 6(b) — one 3-hop TCP flow whose forwarders/destination are exposed to
//!   0–9 saturated hidden senders (Fig. 5b): flow-1 throughput collapses
//!   with hidden load; RIPPLE wins at low hidden load but can dip below
//!   DCF/AFR at ≥ 7 hidden flows (long mTXOPs lose more per hidden
//!   collision).

use wmn_metrics::Table;
use wmn_netsim::{FlowSpec, Scenario, Workload};
use wmn_phy::PhyParams;
use wmn_topology::collision;
use wmn_traffic::CbrModel;

use crate::common::{dar_schemes, next_named, run_grid, ExpConfig};

/// Fig. 6(a): total throughput vs number of in-cell flows.
pub fn generate_regular(cfg: &ExpConfig) -> Table {
    const FLOW_COUNTS: [usize; 5] = [2, 4, 6, 8, 10];
    let mut scenarios = Vec::new();
    for (label, scheme) in dar_schemes() {
        for n_flows in FLOW_COUNTS {
            let topo = collision::single_cell(n_flows);
            let flows = (0..n_flows)
                .map(|i| {
                    let (s, d) = collision::cell_flow_endpoints(i);
                    FlowSpec { path: vec![s, d], workload: Workload::Ftp }
                })
                .collect();
            scenarios.push(Scenario {
                name: format!("fig6a-{label}-{n_flows}"),
                params: PhyParams::paper_216(),
                positions: topo.positions.clone(),
                scheme,
                flows,
                duration: cfg.duration,
                seed: 0,
                max_forwarders: 5,
                motion: wmn_netsim::MotionPlan::default(),
                route_refresh: None,
                shards: None,
            });
        }
    }
    let mut avgs = run_grid(&scenarios, cfg).into_iter();
    let mut table = Table::new(
        "Fig. 6(a) — single cell, total TCP throughput (Mbps) vs #flows",
        vec!["scheme", "2 flows", "4 flows", "6 flows", "8 flows", "10 flows"],
    );
    for (label, _) in dar_schemes() {
        let row: Vec<f64> = FLOW_COUNTS
            .iter()
            .map(|n_flows| {
                next_named(&mut avgs, &format!("fig6a-{label}-{n_flows}")).total_throughput_mbps
            })
            .collect();
        table.add_numeric_row(label, &row);
    }
    table
}

/// Fig. 6(b): flow-1 throughput vs number of hidden (saturated) flows.
pub fn generate_hidden(cfg: &ExpConfig) -> Table {
    let counts = [0usize, 1, 3, 5, 7, 9];
    let mut scenarios = Vec::new();
    for (label, scheme) in dar_schemes() {
        for &n_hidden in &counts {
            let topo = collision::hidden_terminals(n_hidden);
            let mut flows =
                vec![FlowSpec { path: collision::hidden_main_path(), workload: Workload::Ftp }];
            for k in 0..n_hidden {
                let (s, d) = collision::hidden_flow_endpoints(k);
                flows.push(FlowSpec {
                    path: vec![s, d],
                    workload: Workload::Cbr(CbrModel::heavy()),
                });
            }
            scenarios.push(Scenario {
                name: format!("fig6b-{label}-{n_hidden}"),
                params: PhyParams::paper_216(),
                positions: topo.positions.clone(),
                scheme,
                flows,
                duration: cfg.duration,
                seed: 0,
                max_forwarders: 5,
                motion: wmn_netsim::MotionPlan::default(),
                route_refresh: None,
                shards: None,
            });
        }
    }
    let mut avgs = run_grid(&scenarios, cfg).into_iter();
    let headers: Vec<String> = std::iter::once("scheme".to_string())
        .chain(counts.iter().map(|c| format!("{c} hidden")))
        .collect();
    let mut table = Table::new("Fig. 6(b) — flow-1 TCP throughput (Mbps) vs hidden flows", headers);
    for (label, _) in dar_schemes() {
        let row: Vec<f64> = counts
            .iter()
            .map(|n_hidden| {
                next_named(&mut avgs, &format!("fig6b-{label}-{n_hidden}")).flows[0].throughput_mbps
            })
            .collect();
        table.add_numeric_row(label, &row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_sim::SimDuration;

    fn quick() -> ExpConfig {
        ExpConfig::custom(SimDuration::from_millis(250), vec![1])
    }

    #[test]
    fn regular_collisions_ripple_on_top() {
        let t = generate_regular(&quick());
        let v = |r: usize, c: usize| t.cell(r, c).unwrap().parse::<f64>().unwrap();
        // RIPPLE (row 2) beats DCF (row 0) at 2 flows.
        assert!(v(2, 1) > v(0, 1), "RIPPLE {} vs DCF {}", v(2, 1), v(0, 1));
    }

    #[test]
    fn hidden_load_throttles_flow1() {
        let t = generate_hidden(&quick());
        let v = |r: usize, c: usize| t.cell(r, c).unwrap().parse::<f64>().unwrap();
        for row in 0..3 {
            assert!(
                v(row, 1) > v(row, 6) || v(row, 6) < 1.0,
                "heavy hidden load must throttle flow 1 (row {row}): {} -> {}",
                v(row, 1),
                v(row, 6)
            );
        }
    }
}
