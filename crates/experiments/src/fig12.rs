//! Fig. 12: per-flow TCP throughput on the (synthetic) Roofnet topology.
//!
//! Six test flows — two each at 3, 4 and 5 hops, labelled `3(1)`, `3(2)`,
//! `4(1)`, … like the paper's x-axis — each run on its own (plus, in the
//! hidden variants, a saturated hidden pair near the destination), at 6 and
//! 216 Mbps. Expected shape: RIPPLE consistently on top, with the largest
//! relative gains on the longest paths (the paper quotes up to 300 % on a
//! 5-hop flow).

use wmn_metrics::Table;
use wmn_netsim::{FlowSpec, Scenario, Workload};
use wmn_phy::PhyParams;
use wmn_sim::NodeId;
use wmn_topology::roofnet;
use wmn_traffic::CbrModel;

use crate::common::{dar_schemes, next_named, run_grid, ExpConfig};

/// The six test flows: (label, path).
pub fn test_flows() -> Vec<(String, Vec<NodeId>)> {
    let graph = roofnet::link_graph(&PhyParams::paper_216());
    let mut out = Vec::new();
    for hops in [3usize, 4, 5] {
        for (i, (s, d)) in roofnet::pairs_with_hops(&graph, hops, 2).into_iter().enumerate() {
            let path = graph.shortest_path(s, d).expect("selected pairs are connected");
            out.push((format!("{hops}({})", i + 1), path));
        }
    }
    out
}

/// One table per (rate, hidden) combination; rows are the six test flows.
pub fn generate(cfg: &ExpConfig) -> Vec<Table> {
    let topo = roofnet::topology();
    let flows = test_flows();
    let rates = [("6Mbps", PhyParams::paper_6()), ("216Mbps", PhyParams::paper_216())];
    let mut scenarios = Vec::new();
    for (rate_label, params) in &rates {
        for hidden in [false, true] {
            for (label, path) in &flows {
                for (_, scheme) in dar_schemes() {
                    let mut specs = vec![FlowSpec { path: path.clone(), workload: Workload::Ftp }];
                    if hidden {
                        if let Some((hs, hd)) =
                            roofnet::pick_hidden_pair(&topo, path[0], *path.last().unwrap(), path)
                        {
                            specs.push(FlowSpec {
                                path: vec![hs, hd],
                                workload: Workload::Cbr(CbrModel::heavy()),
                            });
                        }
                    }
                    scenarios.push(Scenario {
                        name: format!("fig12-{label}-{rate_label}-{hidden}"),
                        params: params.clone(),
                        positions: topo.positions.clone(),
                        scheme,
                        flows: specs,
                        duration: cfg.duration,
                        seed: 0,
                        max_forwarders: 5,
                        motion: wmn_netsim::MotionPlan::default(),
                        route_refresh: None,
                        shards: None,
                    });
                }
            }
        }
    }
    let mut avgs = run_grid(&scenarios, cfg).into_iter();
    let mut tables = Vec::new();
    for (rate_label, _) in &rates {
        for hidden in [false, true] {
            let mut table = Table::new(
                format!(
                    "Fig. 12 — Roofnet, {rate_label}{} — TCP throughput (Mbps)",
                    if hidden { ", with hidden terminals" } else { "" }
                ),
                vec!["flow", "DCF", "AFR", "RIPPLE"],
            );
            for (label, _) in &flows {
                // The scenario name keys on the flow, not the scheme, so
                // this checks row/rate/hidden placement (all three schemes
                // of a row share the name).
                let name = format!("fig12-{label}-{rate_label}-{hidden}");
                let row: Vec<f64> = dar_schemes()
                    .iter()
                    .map(|_| next_named(&mut avgs, &name).flows[0].throughput_mbps)
                    .collect();
                table.add_numeric_row(label.clone(), &row);
            }
            tables.push(table);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_sim::SimDuration;

    #[test]
    fn six_labelled_flows() {
        let flows = test_flows();
        assert_eq!(flows.len(), 6);
        assert_eq!(flows[0].0, "3(1)");
        assert_eq!(flows[5].0, "5(2)");
        assert_eq!(flows[4].1.len(), 6, "a 5-hop path has six nodes");
    }

    #[test]
    fn generates_four_tables() {
        let cfg = ExpConfig::custom(SimDuration::from_millis(100), vec![1]);
        let tables = generate(&cfg);
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].row_count(), 6);
    }
}
