//! The Section II motivation measurement: one long-lived TCP flow from
//! station 0 to station 3 on the Fig. 1 topology, comparing shortest-path
//! routing (SPR, multi-hop DCF over the ETX path) with preExOR and MCExOR.
//!
//! Paper numbers: SPR 6.7, preExOR 5.9, MCExOR 5.85 Mbps; 26.58 % of
//! packets re-ordered under preExOR, 27.9 % under MCExOR. The shape to
//! reproduce: both opportunistic baselines *lose* to plain predetermined
//! routing, and they re-order a large fraction of arrivals.

use wmn_metrics::Table;
use wmn_netsim::{FlowSpec, Scenario, Scheme, Workload};
use wmn_phy::PhyParams;
use wmn_topology::fig1;

use crate::common::{run_grid, ExpConfig};

/// Runs the motivation comparison and returns the table.
pub fn generate(cfg: &ExpConfig) -> Table {
    let topo = fig1::topology();
    let params = PhyParams::paper_216();
    // Section II frames the flow as 0 -> 1 -> 2 -> 3 (Fig. 2's timeline and
    // preExOR's forwarder set both come from that route), so SPR here is
    // the three-hop route of ROUTE0 — the robust path a quality-aware
    // routing layer settles on, matching the paper's 6.7 Mbps regime.
    let path = fig1::RouteSet::Route0.flow_path(1);

    let schemes = [
        ("SPR", Scheme::Dcf { aggregation: 1 }),
        ("preExOR", Scheme::PreExor),
        ("MCExOR", Scheme::McExor),
    ];
    let scenarios: Vec<Scenario> = schemes
        .iter()
        .map(|(label, scheme)| Scenario {
            name: format!("motivation-{label}"),
            params: params.clone(),
            positions: topo.positions.clone(),
            scheme: *scheme,
            flows: vec![FlowSpec { path: path.clone(), workload: Workload::Ftp }],
            duration: cfg.duration,
            seed: 0,
            max_forwarders: 5,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        })
        .collect();
    let avgs = run_grid(&scenarios, cfg);

    let mut table = Table::new(
        "Sec. II motivation — 1 TCP flow 0->3, BER 1e-6",
        vec!["scheme", "throughput (Mbps)", "reordered (%)"],
    );
    for ((label, _), avg) in schemes.into_iter().zip(avgs) {
        table.add_numeric_row(
            label,
            &[avg.flows[0].throughput_mbps, avg.flows[0].reorder_fraction * 100.0],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spr_wins_and_exor_reorders() {
        let cfg = ExpConfig::custom(wmn_sim::SimDuration::from_millis(400), vec![1]);
        let t = generate(&cfg);
        let v = |r: usize, c: usize| t.cell(r, c).unwrap().parse::<f64>().unwrap();
        let (spr, pre, mce) = (v(0, 1), v(1, 1), v(2, 1));
        assert!(spr > pre, "SPR ({spr}) must beat preExOR ({pre})");
        assert!(spr > mce, "SPR ({spr}) must beat MCExOR ({mce})");
        // The opportunistic baselines re-order a substantial fraction.
        assert!(v(1, 2) > 2.0, "preExOR should reorder packets: {}%", v(1, 2));
        assert!(v(0, 2) < 1.0, "SPR must not reorder: {}%", v(0, 2));
    }
}
