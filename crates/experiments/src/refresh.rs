//! The stale-route crossover: frozen build-time routes versus live min-ETX
//! refresh while a relay drifts out of a flow's path.
//!
//! The scenario is a 4-station line 0–1–2–3 at 5 m spacing with a spare
//! relay parked at (5, 3). A CBR flow runs 0 → 3 over the line; the flow's
//! first relay (station 1) drifts broadside at each swept speed. With
//! routes frozen at build time — the pre-refresh behaviour — the flow stays
//! pinned to the departed relay and starves. With a 50 ms live refresh the
//! min-ETX recomputation hands the flow to the spare relay as soon as the
//! live link state favours it, and throughput survives. At 0 m/s the two
//! columns are bit-identical: refresh over an unmoved placement is a no-op.

use wmn_metrics::Table;
use wmn_netsim::{run_traced, FlowSpec, MotionPlan, NodePath, Scenario, Scheme, Trace, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration};
use wmn_traffic::CbrModel;

use crate::common::{run_grid, ExpConfig};

/// Relay drift speeds swept, m/s (0 = the static control).
pub const DRIFT_SPEEDS: [f64; 4] = [0.0, 15.0, 30.0, 60.0];

/// The live-routing refresh period used by the refreshed column.
pub const REFRESH_INTERVAL: SimDuration = SimDuration::from_millis(50);

fn base_scenario(name: String, drift_mps: f64, duration: SimDuration) -> Scenario {
    let positions = vec![
        Position::new(0.0, 0.0),
        Position::new(5.0, 0.0),
        Position::new(10.0, 0.0),
        Position::new(15.0, 0.0),
        Position::new(5.0, 3.0), // the spare relay
    ];
    let motion = if drift_mps == 0.0 {
        MotionPlan::default()
    } else {
        MotionPlan {
            paths: vec![
                NodePath::Static,
                NodePath::Drift { vx_mps: 0.0, vy_mps: drift_mps },
                NodePath::Static,
                NodePath::Static,
                NodePath::Static,
            ],
            tick: SimDuration::from_millis(10),
        }
    };
    Scenario {
        name,
        params: PhyParams::paper_216(),
        positions,
        scheme: Scheme::Dcf { aggregation: 1 },
        flows: vec![FlowSpec {
            path: vec![0, 1, 2, 3].into_iter().map(NodeId::new).collect(),
            // CBR: every datagram takes the route as it stands at send
            // time, so the table measures routing, not TCP's loss recovery.
            workload: Workload::Cbr(CbrModel {
                packet_bytes: 1000,
                interval: SimDuration::from_millis(2),
            }),
        }],
        duration,
        seed: 0,
        max_forwarders: 5,
        motion,
        route_refresh: None,
        shards: None,
    }
}

/// Runs the crossover sweep and returns the frozen-vs-refreshed table.
pub fn generate(cfg: &ExpConfig) -> Table {
    let mut scenarios = Vec::with_capacity(DRIFT_SPEEDS.len() * 2);
    for &speed in &DRIFT_SPEEDS {
        let frozen =
            base_scenario(format!("refresh-crossover-v{speed}-frozen"), speed, cfg.duration);
        let mut live =
            base_scenario(format!("refresh-crossover-v{speed}-refreshed"), speed, cfg.duration);
        live.route_refresh = Some(REFRESH_INTERVAL);
        scenarios.push(frozen);
        scenarios.push(live);
    }
    let avgs = run_grid(&scenarios, cfg);

    let mut table = Table::new(
        "Stale-route crossover — CBR 0->3, relay 1 drifting, spare relay at (5, 3)",
        vec!["relay drift (m/s)", "frozen routes (Mbps)", "50 ms refresh (Mbps)"],
    );
    for (i, &speed) in DRIFT_SPEEDS.iter().enumerate() {
        let frozen = &avgs[2 * i];
        let live = &avgs[2 * i + 1];
        table.add_numeric_row(
            format!("{speed}"),
            &[frozen.flows[0].throughput_mbps, live.flows[0].throughput_mbps],
        );
    }
    table
}

/// One traced run of the fastest-drift refreshed cell — the packet trace
/// the artefact ships alongside the table (rendered by `trace_render`).
/// Returns the scenario name and the timeline.
pub fn demo_trace(cfg: &ExpConfig) -> (String, Trace) {
    let mut scenario = base_scenario(
        "refresh-crossover-demo".into(),
        *DRIFT_SPEEDS.last().expect("non-empty"),
        cfg.duration,
    );
    scenario.route_refresh = Some(REFRESH_INTERVAL);
    scenario.seed = cfg.seeds.first().copied().unwrap_or(1);
    let (_, trace) = run_traced(&scenario);
    (scenario.name, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_netsim::TraceKind;

    #[test]
    fn refresh_crosses_over_under_drift() {
        let cfg = ExpConfig::custom(SimDuration::from_millis(400), vec![1]);
        let t = generate(&cfg);
        let v = |r: usize, c: usize| t.cell(r, c).unwrap().parse::<f64>().unwrap();
        // Static control: refresh must change nothing at all.
        assert_eq!(t.cell(0, 1), t.cell(0, 2), "at 0 m/s the columns must be identical");
        // Fastest drift: live refresh must clearly beat the frozen route.
        let (frozen, live) = (v(3, 1), v(3, 2));
        assert!(
            live > 1.5 * frozen,
            "60 m/s: refreshed ({live}) must rescue what frozen ({frozen}) loses"
        );
    }

    #[test]
    fn demo_trace_contains_a_route_change() {
        let cfg = ExpConfig::custom(SimDuration::from_millis(400), vec![1]);
        let (name, trace) = demo_trace(&cfg);
        assert_eq!(name, "refresh-crossover-demo");
        assert!(
            trace.events.iter().any(|e| matches!(e.kind, TraceKind::RouteChange { .. })),
            "the demo trace must show the re-route"
        );
    }
}
