//! Figs. 3 and 4: long-lived TCP transfers on the Fig. 1 topology.
//!
//! For each route set of Table II (ROUTE0/1/2) and each activation pattern
//! ({flow 1}, {flows 1,2}, {flows 1,2,3}), the total throughput of the five
//! schemes S / D / R1 / A / R16. Fig. 3 uses BER 10⁻⁶, Fig. 4 BER 10⁻⁵.
//!
//! Expected shape: R16 ≥ A > R1 ≥ D ≫ S on ROUTE0/ROUTE1; ROUTE2 lower for
//! everyone; RIPPLE best everywhere.

use wmn_metrics::Table;
use wmn_netsim::{FlowSpec, Scenario, Workload};
use wmn_phy::PhyParams;
use wmn_topology::fig1::{self, RouteSet};

use crate::common::{figure_schemes, next_named, run_grid, ExpConfig};

/// Generates one table per route set at the given BER.
///
/// The whole `(route set × scheme × activation × seed)` grid is built up
/// front and fanned across the executor in one [`run_grid`] call.
pub fn generate(ber: f64, cfg: &ExpConfig) -> Vec<Table> {
    let topo = fig1::topology();
    let params = PhyParams::paper_216().with_ber(ber);
    let mut scenarios = Vec::new();
    for route_set in RouteSet::ALL {
        for (label, scheme, direct) in figure_schemes() {
            for active in 1..=3usize {
                let flows = (1..=active)
                    .map(|f| {
                        let path = if direct {
                            let (s, d) = fig1::flow_endpoints(f);
                            vec![s, d]
                        } else {
                            route_set.flow_path(f)
                        };
                        FlowSpec { path, workload: Workload::Ftp }
                    })
                    .collect();
                scenarios.push(Scenario {
                    name: format!("fig3-{}-{label}-{active}", route_set.label()),
                    params: params.clone(),
                    positions: topo.positions.clone(),
                    scheme,
                    flows,
                    duration: cfg.duration,
                    seed: 0,
                    max_forwarders: 5,
                    motion: wmn_netsim::MotionPlan::default(),
                    route_refresh: None,
                    shards: None,
                });
            }
        }
    }
    let mut avgs = run_grid(&scenarios, cfg).into_iter();
    let mut tables = Vec::new();
    for route_set in RouteSet::ALL {
        let mut table = Table::new(
            format!(
                "Fig. {} ({}) — total TCP throughput (Mbps), BER {ber:.0e}",
                if ber <= 1e-6 { 3 } else { 4 },
                route_set.label()
            ),
            vec!["scheme", "flow 1", "flows 1+2", "flows 1+2+3"],
        );
        for (label, _, _) in figure_schemes() {
            let row: Vec<f64> = (1..=3)
                .map(|active| {
                    let name = format!("fig3-{}-{label}-{active}", route_set.label());
                    next_named(&mut avgs, &name).total_throughput_mbps
                })
                .collect();
            table.add_numeric_row(label, &row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route0_single_flow_shape() {
        let cfg = ExpConfig::custom(wmn_sim::SimDuration::from_millis(300), vec![1]);
        let tables = generate(1e-6, &cfg);
        assert_eq!(tables.len(), 3, "one table per route set");
        let t = &tables[0]; // ROUTE0
        let v = |r: usize| t.cell(r, 1).unwrap().parse::<f64>().unwrap();
        let (s, d, _r1, a, r16) = (v(0), v(1), v(2), v(3), v(4));
        assert!(d > 2.0 * s, "multi-hop D ({d}) must dominate direct S ({s})");
        assert!(r16 > d, "R16 ({r16}) must beat DCF ({d})");
        assert!(a > d, "AFR ({a}) must beat DCF ({d})");
    }
}
