//! Fig. 8: short-lived web transfers on the Fig. 1 topology.
//!
//! Ten ON/OFF web users per source/destination pair (flows 1–10 between
//! 0↔3, 11–20 between 0↔4, 21–30 between 5↔7); transfer sizes are
//! Pareto(mean 80 KB, shape 1.5), think times exponential(1 s). The figure
//! reports the total throughput of all active flows for DCF / AFR / RIPPLE
//! over ROUTE0, with RIPPLE on top.

use wmn_metrics::Table;
use wmn_netsim::{FlowSpec, Scenario, Workload};
use wmn_phy::PhyParams;
use wmn_topology::fig1::RouteSet;
use wmn_traffic::WebModel;

use crate::common::{dar_schemes, run_grid, ExpConfig};

/// Number of web users per station pair (paper: 10).
pub const USERS_PER_PAIR: usize = 10;

/// Builds the 30-flow web traffic matrix over ROUTE0.
pub fn web_flows(users_per_pair: usize) -> Vec<FlowSpec> {
    let mut flows = Vec::new();
    for pair in 1..=3usize {
        let path = RouteSet::Route0.flow_path(pair);
        for _ in 0..users_per_pair {
            flows.push(FlowSpec { path: path.clone(), workload: Workload::Web(WebModel::paper()) });
        }
    }
    flows
}

/// Generates the Fig. 8 table.
pub fn generate(cfg: &ExpConfig) -> Table {
    generate_with_users(cfg, USERS_PER_PAIR)
}

/// Same with a configurable user count (benches use fewer).
pub fn generate_with_users(cfg: &ExpConfig, users_per_pair: usize) -> Table {
    let topo = wmn_topology::fig1::topology();
    let scenarios: Vec<Scenario> = dar_schemes()
        .into_iter()
        .map(|(label, scheme)| Scenario {
            name: format!("fig8-{label}"),
            params: PhyParams::paper_216(),
            positions: topo.positions.clone(),
            scheme,
            flows: web_flows(users_per_pair),
            duration: cfg.duration,
            seed: 0,
            max_forwarders: 5,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        })
        .collect();
    let avgs = run_grid(&scenarios, cfg);
    let mut table = Table::new(
        "Fig. 8 — web traffic, total throughput of all flows (Mbps)",
        vec!["scheme", "total Mbps"],
    );
    for ((label, _), avg) in dar_schemes().into_iter().zip(avgs) {
        table.add_numeric_row(label, &[avg.total_throughput_mbps]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_sim::SimDuration;

    #[test]
    fn web_matrix_is_30_flows() {
        assert_eq!(web_flows(USERS_PER_PAIR).len(), 30);
    }

    #[test]
    fn all_schemes_move_web_traffic() {
        let cfg = ExpConfig::custom(SimDuration::from_millis(400), vec![1]);
        let t = generate_with_users(&cfg, 2);
        for row in 0..3 {
            let v: f64 = t.cell(row, 1).unwrap().parse().unwrap();
            assert!(v > 0.0, "row {row} must carry web traffic");
        }
    }
}
