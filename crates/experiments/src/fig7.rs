//! Fig. 7: throughput vs path length (2–7 hops), with and without a 3-hop
//! saturated cross flow intersecting the chain's middle station.
//!
//! Expected shape: throughput decays with hop count; RIPPLE best at every
//! length; at 6–7 hops the endpoints are out of mutual range so RIPPLE
//! works purely through its forwarders. Following Sec. IV-C the forwarder
//! cap is raised to 7 here.

use wmn_metrics::Table;
use wmn_netsim::{FlowSpec, Scenario, Workload};
use wmn_phy::PhyParams;
use wmn_topology::line;
use wmn_traffic::CbrModel;

use crate::common::{dar_schemes, next_named, run_grid, ExpConfig};

/// Generates the (a) without-cross and (b) with-cross tables.
pub fn generate(cfg: &ExpConfig) -> Vec<Table> {
    let mut scenarios = Vec::new();
    for with_cross in [false, true] {
        for (label, scheme) in dar_schemes() {
            for hops in 2..=7usize {
                let topo = line::line(hops, with_cross);
                let mut flows =
                    vec![FlowSpec { path: line::main_path(hops), workload: Workload::Ftp }];
                if with_cross {
                    flows.push(FlowSpec {
                        path: line::cross_path(hops),
                        workload: Workload::Cbr(CbrModel::heavy()),
                    });
                }
                scenarios.push(Scenario {
                    name: format!("fig7-{label}-{hops}-{with_cross}"),
                    params: PhyParams::paper_216(),
                    positions: topo.positions.clone(),
                    scheme,
                    flows,
                    duration: cfg.duration,
                    seed: 0,
                    // Sec. IV-C: "we also consider up to 7 forwarders"
                    // — the 6/7-hop lines need more than the default 5.
                    max_forwarders: 7,
                    motion: wmn_netsim::MotionPlan::default(),
                    route_refresh: None,
                    shards: None,
                });
            }
        }
    }
    let mut avgs = run_grid(&scenarios, cfg).into_iter();
    [false, true]
        .into_iter()
        .map(|with_cross| {
            let suffix = if with_cross { "(b) with cross traffic" } else { "(a) no cross traffic" };
            let mut table = Table::new(
                format!("Fig. 7{suffix} — TCP throughput (Mbps) vs hops"),
                vec!["scheme", "2", "3", "4", "5", "6", "7"],
            );
            for (label, _) in dar_schemes() {
                let row: Vec<f64> = (2..=7)
                    .map(|hops| {
                        let name = format!("fig7-{label}-{hops}-{with_cross}");
                        next_named(&mut avgs, &name).flows[0].throughput_mbps
                    })
                    .collect();
                table.add_numeric_row(label, &row);
            }
            table
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_sim::SimDuration;

    #[test]
    fn throughput_decays_with_hops_and_ripple_survives_long_paths() {
        let cfg = ExpConfig::custom(SimDuration::from_millis(300), vec![1]);
        let tables = generate(&cfg);
        let t = &tables[0];
        let v = |r: usize, c: usize| t.cell(r, c).unwrap().parse::<f64>().unwrap();
        for row in 0..3 {
            assert!(
                v(row, 1) > v(row, 6),
                "2 hops must outperform 7 (row {row}): {} vs {}",
                v(row, 1),
                v(row, 6)
            );
        }
        // RIPPLE still delivers over 7 hops, where endpoints cannot hear
        // each other — pure forwarder relaying.
        assert!(v(2, 6) > 0.5, "RIPPLE must deliver over 7 hops: {}", v(2, 6));
    }
}
