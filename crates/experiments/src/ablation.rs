//! Ablation studies for the design choices the paper calls out:
//!
//! * **Maximum forwarders** (Sec. III-B remark 4 / Sec. IV-C): the paper
//!   defaults to 5 and considers up to 7; too many forwarders means more
//!   intra-path collisions. We sweep the cap on a 7-hop line.
//! * **Aggregation limit** (Sec. III-A: 16, following 802.11n/AFR): sweep
//!   1/2/4/8/16 on the 3-hop ROUTE0 flow, for both AFR and RIPPLE.
//! * **PHY rates** (the paper's future work is multi-rate operation): the
//!   same 3-hop flow at 6/54/216 Mbps data rates, showing how RIPPLE's
//!   relative gain grows with rate (per-frame overhead dominates at high
//!   rates, which is exactly what aggregation and mTXOPs amortise).

use wmn_metrics::Table;
use wmn_netsim::{FlowSpec, Scenario, Scheme, Workload};
use wmn_phy::{PhyParams, Rate};
use wmn_topology::{fig1, line};

use crate::common::{next_named, run_grid, ExpConfig};

/// Sweep of the forwarder-list cap on the 7-hop line (RIPPLE-16).
pub fn max_forwarders(cfg: &ExpConfig) -> Table {
    let topo = line::line(7, false);
    let caps: Vec<usize> = (1..=7).collect();
    let scenarios: Vec<Scenario> = caps
        .iter()
        .map(|&cap| Scenario {
            name: format!("ablation-fwd-{cap}"),
            params: PhyParams::paper_216(),
            positions: topo.positions.clone(),
            scheme: Scheme::Ripple { aggregation: 16 },
            flows: vec![FlowSpec { path: line::main_path(7), workload: Workload::Ftp }],
            duration: cfg.duration,
            seed: 0,
            max_forwarders: cap,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        })
        .collect();
    let mut table = Table::new(
        "Ablation — forwarder cap on a 7-hop line (RIPPLE-16)",
        vec!["max forwarders", "throughput (Mbps)"],
    );
    for (cap, avg) in caps.iter().zip(run_grid(&scenarios, cfg)) {
        table.add_numeric_row(cap.to_string(), &[avg.flows[0].throughput_mbps]);
    }
    table
}

/// Sweep of the aggregation limit on the ROUTE0 flow-1 path.
pub fn aggregation_limit(cfg: &ExpConfig) -> Table {
    const AGGS: [usize; 5] = [1, 2, 4, 8, 16];
    let topo = fig1::topology();
    let mut scenarios = Vec::new();
    for agg in AGGS {
        for scheme in [Scheme::Dcf { aggregation: agg }, Scheme::Ripple { aggregation: agg }] {
            scenarios.push(Scenario {
                name: format!("ablation-agg-{agg}"),
                params: PhyParams::paper_216(),
                positions: topo.positions.clone(),
                scheme,
                flows: vec![FlowSpec {
                    path: fig1::RouteSet::Route0.flow_path(1),
                    workload: Workload::Ftp,
                }],
                duration: cfg.duration,
                seed: 0,
                max_forwarders: 5,
                motion: wmn_netsim::MotionPlan::default(),
                route_refresh: None,
                shards: None,
            });
        }
    }
    let mut avgs = run_grid(&scenarios, cfg).into_iter();
    let mut table = Table::new(
        "Ablation — aggregation limit on ROUTE0 flow 1",
        vec!["packets/frame", "AFR (Mbps)", "RIPPLE (Mbps)"],
    );
    for agg in AGGS {
        // Both schemes of a row share the scenario name, so this checks the
        // row (aggregation limit) placement.
        let row: Vec<f64> = (0..2)
            .map(|_| next_named(&mut avgs, &format!("ablation-agg-{agg}")).flows[0].throughput_mbps)
            .collect();
        table.add_numeric_row(agg.to_string(), &row);
    }
    table
}

/// The multi-rate extension sweep (the paper's stated future work).
pub fn phy_rates(cfg: &ExpConfig) -> Table {
    const RATES: [(&str, f64, f64); 3] =
        [("6 Mbps", 6.0, 6.0), ("54 Mbps", 54.0, 24.0), ("216 Mbps", 216.0, 54.0)];
    let topo = fig1::topology();
    let mut scenarios = Vec::new();
    for (label, data_mbps, basic_mbps) in RATES {
        let mut params = PhyParams::paper_216();
        params.data_rate = Rate::mbps(data_mbps);
        params.basic_rate = Rate::mbps(basic_mbps);
        for scheme in [Scheme::Dcf { aggregation: 1 }, Scheme::Ripple { aggregation: 16 }] {
            scenarios.push(Scenario {
                name: format!("ablation-rate-{label}"),
                params: params.clone(),
                positions: topo.positions.clone(),
                scheme,
                flows: vec![FlowSpec {
                    path: fig1::RouteSet::Route0.flow_path(1),
                    workload: Workload::Ftp,
                }],
                duration: cfg.duration,
                seed: 0,
                max_forwarders: 5,
                motion: wmn_netsim::MotionPlan::default(),
                route_refresh: None,
                shards: None,
            });
        }
    }
    let mut avgs = run_grid(&scenarios, cfg).into_iter();
    let mut table = Table::new(
        "Extension — PHY data rates on ROUTE0 flow 1",
        vec!["data rate", "DCF (Mbps)", "RIPPLE (Mbps)", "gain"],
    );
    for (label, _, _) in RATES {
        let row: Vec<f64> = (0..2)
            .map(|_| {
                next_named(&mut avgs, &format!("ablation-rate-{label}")).flows[0].throughput_mbps
            })
            .collect();
        let gain = if row[0] > 0.0 { row[1] / row[0] } else { 0.0 };
        table.add_row(vec![
            label.to_string(),
            format!("{:.2}", row[0]),
            format!("{:.2}", row[1]),
            format!("{gain:.2}x"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_sim::SimDuration;

    fn quick() -> ExpConfig {
        ExpConfig::custom(SimDuration::from_millis(250), vec![1])
    }

    #[test]
    fn forwarder_cap_sweep_has_seven_rows() {
        let t = max_forwarders(&quick());
        assert_eq!(t.row_count(), 7);
        // With at least 5 forwarders the 7-hop flow must move real data.
        let v5: f64 = t.cell(4, 1).unwrap().parse().unwrap();
        assert!(v5 > 0.1, "cap 5 on 7 hops should work: {v5}");
    }

    #[test]
    fn aggregation_is_monotonically_useful() {
        let t = aggregation_limit(&quick());
        let v = |r: usize, c: usize| t.cell(r, c).unwrap().parse::<f64>().unwrap();
        // 16-packet aggregation clearly beats none, for both schemes.
        assert!(v(4, 1) > 1.5 * v(0, 1), "AFR-16 {} vs DCF {}", v(4, 1), v(0, 1));
        assert!(v(4, 2) > 1.5 * v(0, 2), "R16 {} vs R1 {}", v(4, 2), v(0, 2));
    }

    #[test]
    fn ripple_gain_grows_with_rate() {
        let t = phy_rates(&quick());
        let gain = |r: usize| t.cell(r, 3).unwrap().trim_end_matches('x').parse::<f64>().unwrap();
        assert!(
            gain(2) > gain(0),
            "the overhead-amortisation gain must grow with PHY rate: {} vs {}",
            gain(2),
            gain(0)
        );
    }
}
