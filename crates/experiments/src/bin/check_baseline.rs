//! The CI perf-regression gate: diffs fresh repro/sweep JSON against the
//! committed baseline `ci/baseline_repro.json`.
//!
//! For every artefact listed in the baseline it checks that
//!
//! * the fresh `tables` sub-document is **byte-identical** to the baseline
//!   (the simulation is deterministic per seed, so any drift is a real
//!   behaviour change — or an intended one that must refresh the baseline);
//! * the run count matches (a silently shrunk grid would otherwise look
//!   "fast");
//! * the timing accounting is sane: positive wall-clock, non-negative busy
//!   time, and — when `RIPPLE_BASELINE_MAX_SLOWDOWN` is set to a factor
//!   like `3.0` — busy-per-run no worse than baseline × factor. The factor
//!   gate is opt-in because absolute times depend on the host; table drift
//!   and run counts are enforced unconditionally.
//!
//! ## Refreshing the baseline
//!
//! After an *intended* behaviour change (physics fix, new sweep spec):
//!
//! ```text
//! cargo run --release -p wmn_experiments --bin repro_all        # RIPPLE_REPRO=quick default
//! cargo run --release -p wmn_experiments --bin scenario_sweep
//! cargo run --release -p wmn_experiments --bin check_baseline -- --update
//! git add ci/baseline_repro.json   # and say why in the commit message
//! ```
//!
//! `--update` rewrites the baseline from the fresh documents for the same
//! artefact set (or the default set when bootstrapping).

use std::path::{Path, PathBuf};
use std::process::exit;

use wmn_exec::json::{self, Value};

/// Artefacts a bootstrap `--update` captures: the three golden-suite
/// figures plus the CI sweep.
const DEFAULT_ARTEFACTS: [&str; 4] = ["fig3", "fig6", "table3", "sweep_ci-quick"];

/// Opt-in busy-per-run slowdown factor gate.
const SLOWDOWN_ENV: &str = "RIPPLE_BASELINE_MAX_SLOWDOWN";

fn usage() -> ! {
    eprintln!(
        "usage: check_baseline [--baseline <file>] [--fresh <dir>] [--only <artefact>]... \
         [--update]\n\
         \n\
         Defaults: --baseline ci/baseline_repro.json, --fresh target/repro\n\
         (RIPPLE_REPRO_DIR overrides the fresh directory).\n\
         --only restricts the gate (or an --update refresh) to the named\n\
         baseline artefact(s), for jobs that regenerate only part of the\n\
         repro set; other entries are left untouched.\n\
         --update rewrites the baseline from the fresh documents."
    );
    exit(2)
}

fn load(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    json::parse(&text).map_err(|err| format!("{}: {err}", path.display()))
}

/// The fresh document's run count: repro artefacts carry it under
/// `timing.runs`, sweep documents at top level as `runs`.
fn fresh_runs(doc: &Value) -> Option<u64> {
    doc.get("timing")
        .and_then(|t| t.get("runs"))
        .or_else(|| doc.get("runs"))
        .and_then(Value::as_u64)
}

/// Timing block of an artefact: the document's own `timing`, or the
/// side-car `<artefact>_timing.json` sweep binaries write.
fn timing_of(doc: &Value, dir: &Path, artefact: &str) -> Option<Value> {
    if let Some(t) = doc.get("timing") {
        return Some(t.clone());
    }
    let side_car = dir.join(format!("{artefact}_timing.json"));
    load(&side_car).ok().and_then(|d| d.get("timing").cloned())
}

fn check_artefact(entry: &Value, dir: &Path, failures: &mut Vec<String>) {
    let Some(name) = entry.get("artefact").and_then(Value::as_str).map(str::to_string) else {
        failures.push("baseline entry without an \"artefact\" name".into());
        return;
    };
    let doc = match load(&dir.join(format!("{name}.json"))) {
        Ok(doc) => doc,
        Err(err) => {
            failures.push(format!("{name}: missing fresh document ({err})"));
            return;
        }
    };
    // 1. Result tables must match byte for byte.
    let fresh_tables = doc.get("tables").map(Value::to_string).unwrap_or_default();
    let base_tables = entry.get("tables").map(Value::to_string).unwrap_or_default();
    if fresh_tables != base_tables {
        failures.push(format!(
            "{name}: result tables drifted from the baseline.\n\
             If this change is intended, refresh with `check_baseline --update` and say so\n\
             in the commit. Fresh tables:\n{fresh_tables}"
        ));
    }
    // 2. Same amount of work.
    let base_runs = entry.get("runs").and_then(Value::as_u64);
    let runs = fresh_runs(&doc);
    if base_runs.is_some() && runs != base_runs {
        failures.push(format!("{name}: ran {runs:?} runs, baseline expects {base_runs:?}"));
    }
    // 3. Sane accounting, plus the opt-in slowdown factor.
    let Some(timing) = timing_of(&doc, dir, &name) else {
        failures.push(format!("{name}: no timing accounting found"));
        return;
    };
    let wall = timing.get("wall_ms").and_then(Value::as_f64).unwrap_or(-1.0);
    let busy = timing.get("busy_ms").and_then(Value::as_f64).unwrap_or(-1.0);
    if !(wall > 0.0 && wall.is_finite() && busy >= 0.0 && busy.is_finite()) {
        failures.push(format!("{name}: implausible timing (wall_ms {wall}, busy_ms {busy})"));
    }
    if let Some(factor) = slowdown_factor() {
        let base_busy = entry.get("busy_ms").and_then(Value::as_f64);
        if let (Some(base_busy), Some(runs), Some(base_runs)) = (base_busy, runs, base_runs) {
            let per_run = busy / runs as f64;
            let base_per_run = base_busy / base_runs as f64;
            if base_per_run > 0.0 && per_run > base_per_run * factor {
                failures.push(format!(
                    "{name}: busy {per_run:.2} ms/run exceeds baseline \
                     {base_per_run:.2} ms/run × {factor} ({SLOWDOWN_ENV})"
                ));
            }
        }
    }
}

fn slowdown_factor() -> Option<f64> {
    // lint:allow(no-nondeterministic-std): opt-in CI wall-time gate — gates the perf check, not any repro result
    let raw = std::env::var(SLOWDOWN_ENV).ok()?;
    match raw.trim().parse::<f64>() {
        Ok(f) if f.is_finite() && f > 0.0 => Some(f),
        _ => {
            eprintln!("error: {SLOWDOWN_ENV} must be a positive factor, got {raw:?}");
            exit(2)
        }
    }
}

/// Builds one refreshed baseline entry from the fresh document on disk.
fn fresh_entry(name: &str, dir: &Path) -> Value {
    let doc = match load(&dir.join(format!("{name}.json"))) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("error: {name}: {err} (run repro_all and scenario_sweep first)");
            exit(1)
        }
    };
    let mut entry = Value::obj().with("artefact", name);
    if let Some(runs) = fresh_runs(&doc) {
        entry = entry.with("runs", runs);
    }
    if let Some(timing) = timing_of(&doc, dir, name) {
        if let Some(busy) = timing.get("busy_ms").and_then(Value::as_f64) {
            entry = entry.with("busy_ms", busy);
        }
    }
    entry.with("tables", doc.get("tables").cloned().unwrap_or(Value::Arr(vec![])))
}

fn write_baseline(baseline_path: &Path, entries: Vec<Value>) {
    let doc = Value::obj()
        .with(
            "comment",
            "Committed repro baseline for the CI gate. Refresh: see the doc comment in \
             crates/experiments/src/bin/check_baseline.rs",
        )
        .with("artefacts", Value::Arr(entries));
    // Checked emission: a NaN that slipped into timing or tables must abort
    // the refresh, not be committed as `null` and break every future diff.
    let text = match doc.to_json_string() {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: refusing to write baseline: {err}");
            exit(1)
        }
    };
    if let Some(parent) = baseline_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(baseline_path, format!("{text}\n")) {
        Ok(()) => println!("baseline refreshed: {}", baseline_path.display()),
        Err(err) => {
            eprintln!("error: could not write {}: {err}", baseline_path.display());
            exit(1)
        }
    }
}

fn main() {
    let mut baseline_path = PathBuf::from("ci/baseline_repro.json");
    let mut fresh_dir: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--fresh" => fresh_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--only" => only.push(args.next().unwrap_or_else(|| usage())),
            "--update" => update = true,
            _ => usage(),
        }
    }
    let dir = fresh_dir.unwrap_or_else(wmn_exec::report::repro_dir);

    if update {
        // Keep the existing artefact set when the baseline already exists
        // (the default set bootstraps a missing file). `--only` restricts
        // which entries are refreshed; the rest are carried over verbatim —
        // never silently re-sourced from possibly-stale fresh files.
        let existing: Vec<Value> = load(&baseline_path)
            .ok()
            .and_then(|doc| doc.get("artefacts").and_then(Value::as_arr).map(<[Value]>::to_vec))
            .unwrap_or_default();
        let entry_name = |e: &Value| e.get("artefact").and_then(Value::as_str).map(str::to_string);
        let names: Vec<String> = if existing.is_empty() {
            DEFAULT_ARTEFACTS.iter().map(|s| s.to_string()).collect()
        } else {
            existing.iter().filter_map(&entry_name).collect()
        };
        for name in &only {
            if !names.contains(name) {
                eprintln!("error: --only {name:?} matches no baseline artefact");
                exit(2);
            }
        }
        let entries: Vec<Value> = names
            .iter()
            .map(|name| {
                if only.is_empty() || only.contains(name) {
                    fresh_entry(name, &dir)
                } else {
                    existing
                        .iter()
                        .find(|e| entry_name(e).as_deref() == Some(name))
                        .expect("name came from this list")
                        .clone()
                }
            })
            .collect();
        write_baseline(&baseline_path, entries);
        return;
    }

    let baseline = match load(&baseline_path) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("error: {err}\n(bootstrap with `check_baseline -- --update`)");
            exit(1)
        }
    };
    let Some(entries) = baseline.get("artefacts").and_then(Value::as_arr) else {
        eprintln!("error: {} has no \"artefacts\" array", baseline_path.display());
        exit(1)
    };
    let selected: Vec<&Value> = entries
        .iter()
        .filter(|e| {
            only.is_empty()
                || e.get("artefact")
                    .and_then(Value::as_str)
                    .is_some_and(|name| only.iter().any(|o| o == name))
        })
        .collect();
    for name in &only {
        let known = entries
            .iter()
            .any(|e| e.get("artefact").and_then(Value::as_str) == Some(name.as_str()));
        if !known {
            eprintln!("error: --only {name:?} matches no baseline artefact");
            exit(2);
        }
    }
    let mut failures = Vec::new();
    for entry in &selected {
        check_artefact(entry, &dir, &mut failures);
    }
    if failures.is_empty() {
        println!("baseline gate: {} artefact(s) match {}", selected.len(), baseline_path.display());
    } else {
        for failure in &failures {
            eprintln!("FAIL {failure}\n");
        }
        eprintln!("baseline gate: {} failure(s)", failures.len());
        exit(1);
    }
}
