//! Prints the Fig. 2 / Section II analytic overhead comparison.

fn main() {
    println!("{}", wmn_experiments::fig2::generate());
    println!("{}", wmn_experiments::fig2::worked_example());
}
