//! Prints the Section II motivation measurement (SPR vs preExOR vs MCExOR).

use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("{}", wmn_experiments::motivation::generate(&cfg));
}
