//! Prints the Fig. 7 tables (2-7 hops, with/without cross traffic).

use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    for table in wmn_experiments::fig7::generate(&cfg) {
        println!("{table}");
    }
}
