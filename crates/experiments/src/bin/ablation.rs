//! Prints the ablation tables: forwarder cap, aggregation limit, PHY rates.

use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("{}", wmn_experiments::ablation::max_forwarders(&cfg));
    println!("{}", wmn_experiments::ablation::aggregation_limit(&cfg));
    println!("{}", wmn_experiments::ablation::phy_rates(&cfg));
}
