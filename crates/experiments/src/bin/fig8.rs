//! Prints the Fig. 8 table (web traffic).

use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("{}", wmn_experiments::fig8::generate(&cfg));
}
