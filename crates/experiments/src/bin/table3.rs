//! Prints the Table III reproduction (VoIP MoS).

use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    for table in wmn_experiments::table3::generate(&cfg) {
        println!("{table}");
    }
}
