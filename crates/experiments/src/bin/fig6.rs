//! Prints the Fig. 6 tables (regular and hidden collisions).

use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("{}", wmn_experiments::fig6::generate_regular(&cfg));
    println!("{}", wmn_experiments::fig6::generate_hidden(&cfg));
}
