//! Runs the stale-route crossover (frozen routes vs 50 ms live min-ETX
//! refresh under relay drift), writes the `refresh_crossover` artefact
//! report, and emits one `wmn-trace-v1` packet trace from the
//! fastest-drift refreshed cell (`refresh_crossover_trace.json`, rendered
//! with `trace_render`).

use std::time::Instant;

use wmn_exec::report::{self, ArtifactTiming};
use wmn_exec::{telemetry, trace_document};
use wmn_experiments::{refresh, ExpConfig};

fn main() {
    let cfg = ExpConfig::from_env();
    let dir = report::repro_dir();
    let _ = telemetry::take();
    let t0 = Instant::now();
    let table = refresh::generate(&cfg);
    let wall = t0.elapsed();
    let exec = telemetry::take();
    println!("{table}");

    let timing = ArtifactTiming { wall, exec, jobs: cfg.jobs };
    match report::write_artifact(
        &dir,
        "refresh_crossover",
        std::slice::from_ref(&table),
        &timing,
        cfg.duration.as_secs_f64(),
        &cfg.seeds,
    ) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => {
            eprintln!("error: could not write refresh_crossover.json: {err}");
            std::process::exit(1);
        }
    }

    let (name, trace) = refresh::demo_trace(&cfg);
    let doc = trace_document(&name, &trace);
    match report::write_document(&dir, "refresh_crossover_trace", &doc) {
        Ok(path) => eprintln!("wrote {} ({} events)", path.display(), trace.len()),
        Err(err) => {
            eprintln!("error: could not write refresh_crossover_trace.json: {err}");
            std::process::exit(1);
        }
    }
}
