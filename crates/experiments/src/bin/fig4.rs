//! Prints the Fig. 4 tables (long-lived TCP, BER 1e-5).

use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    for table in wmn_experiments::fig3::generate(1e-5, &cfg) {
        println!("{table}");
    }
}
