//! Runs a generated-scenario sweep: expands a `wmn_scengen::SweepSpec`
//! grid, fans it across the `wmn_exec` worker pool, prints the
//! seed-averaged table, and writes two JSON files under the repro directory
//! (default `target/repro/`, override with `RIPPLE_REPRO_DIR`):
//!
//! * `sweep_<name>.json` — spec echo + run count + result tables. Contains
//!   no timing, so it is **byte-identical for any `RIPPLE_JOBS`** (pinned
//!   by `tests/sweep_determinism.rs` and diffed by the CI baseline gate).
//! * `sweep_<name>_timing.json` — wall/busy/runs/jobs accounting for
//!   perf-trajectory tracking.
//!
//! Usage:
//!
//! ```text
//! scenario_sweep                        # the built-in ci-quick grid (32 runs)
//! scenario_sweep --builtin ci-mobility  # the mobility companion grid (12 runs)
//! scenario_sweep --spec sweep.json      # a sweep spec from disk
//! scenario_sweep --print-spec           # print the selected spec as JSON and exit
//! scenario_sweep --out DIR              # write reports somewhere else
//! ```

use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use wmn_exec::json::Value;
use wmn_exec::{report, telemetry, Executor};
use wmn_experiments::sweep::{artefact_name, run_sweep};
use wmn_scengen::SweepSpec;

fn usage() -> ! {
    eprintln!(
        "usage: scenario_sweep [--builtin <name>] [--spec <file.json>] [--out <dir>] \
         [--print-spec]\n\
         \n\
         Runs the built-in ci-quick sweep unless --builtin selects another\n\
         preset (ci-quick, ci-mobility, ci-mobility-refresh) or --spec\n\
         points at a SweepSpec JSON file (see `--print-spec` for the schema\n\
         by example).\n\
         RIPPLE_JOBS caps the worker pool; results are identical for any value."
    );
    exit(2)
}

fn main() {
    let mut spec_path: Option<PathBuf> = None;
    let mut builtin: Option<String> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut print_spec = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => spec_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--builtin" => builtin = Some(args.next().unwrap_or_else(|| usage())),
            "--out" => out_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--print-spec" => print_spec = true,
            _ => usage(),
        }
    }
    if builtin.is_some() && spec_path.is_some() {
        eprintln!("error: --builtin and --spec are mutually exclusive");
        exit(2);
    }

    let spec = match &spec_path {
        None => match builtin.as_deref() {
            None | Some("ci-quick") => SweepSpec::ci_quick(),
            Some("ci-mobility") => SweepSpec::ci_mobility(),
            Some("ci-mobility-refresh") => SweepSpec::ci_mobility_refresh(),
            Some(other) => {
                eprintln!(
                    "error: unknown builtin sweep {other:?} (have \"ci-quick\", \"ci-mobility\", \
                     \"ci-mobility-refresh\")"
                );
                exit(2)
            }
        },
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|err| {
                eprintln!("error: cannot read {}: {err}", path.display());
                exit(1)
            });
            SweepSpec::parse(&text).unwrap_or_else(|err| {
                eprintln!("error: {}: {err}", path.display());
                exit(1)
            })
        }
    };
    if print_spec {
        println!("{}", spec.to_json());
        return;
    }

    let jobs = Executor::from_env().jobs();
    println!(
        "# Sweep {} — {} scenarios × {} run seeds = {} runs, {} workers\n",
        spec.name,
        spec.scenario_count(),
        spec.run_seeds.len(),
        spec.run_count(),
        jobs
    );
    let _ = telemetry::take();
    let started = Instant::now();
    let outcome = run_sweep(&spec, jobs).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        exit(1)
    });
    let wall = started.elapsed();
    let exec = telemetry::take();
    println!("{}", outcome.table);

    let dir = out_dir.unwrap_or_else(report::repro_dir);
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {err}", dir.display());
        exit(1);
    }
    let stem = artefact_name(&spec);
    let report_path = dir.join(format!("{stem}.json"));
    let timing_path = dir.join(format!("{stem}_timing.json"));
    let timing = Value::obj().with("sweep", spec.name.as_str()).with(
        "timing",
        Value::obj()
            .with("wall_ms", wall.as_secs_f64() * 1e3)
            .with("busy_ms", exec.busy.as_secs_f64() * 1e3)
            .with("runs", exec.runs)
            .with("plans", exec.plans)
            .with("jobs", jobs),
    );
    for (path, doc) in [(&report_path, &outcome.document), (&timing_path, &timing)] {
        // Checked emission: a non-finite table cell must fail the sweep, not
        // serialise as `null` and corrupt the baseline diff undetected.
        let text = match doc.to_json_string() {
            Ok(text) => text,
            Err(err) => {
                eprintln!("error: refusing to write {}: {err}", path.display());
                exit(1)
            }
        };
        match std::fs::write(path, format!("{text}\n")) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(err) => {
                eprintln!("error: could not write {}: {err}", path.display());
                exit(1)
            }
        }
    }
    let wall_s = wall.as_secs_f64();
    let busy_s = exec.busy.as_secs_f64();
    println!(
        "\n{} runs in {wall_s:.2}s wall / {busy_s:.2}s busy ({:.2}x concurrency)",
        exec.runs,
        if wall_s > 0.0 { busy_s / wall_s } else { 1.0 }
    );
}
