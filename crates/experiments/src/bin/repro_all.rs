//! Runs every experiment, prints all tables, and writes one JSON report per
//! artefact (tables + wall-clock/run accounting) under `target/repro/` — the
//! full reproduction in one command.
//!
//! * `RIPPLE_REPRO` selects the setting: `quick` (default), `mid`, or
//!   `paper` (the 10 s × 5 seed runs). Unknown values abort.
//! * `RIPPLE_JOBS` caps the worker pool (default: all cores); results are
//!   bit-identical for any value.
//! * `RIPPLE_REPRO_DIR` overrides the JSON output directory.

use std::path::Path;
use std::time::Instant;

use wmn_exec::report::{self, ArtifactTiming};
use wmn_exec::telemetry;
use wmn_experiments as exp;
use wmn_experiments::ExpConfig;
use wmn_metrics::Table;

/// Generates one artefact, prints its tables, writes its JSON report, and
/// appends a row to the wall-clock summary. Returns the artefact's executor
/// counters so the caller can total them (each call drains the global
/// telemetry, so the final summary must re-accumulate).
fn emit(
    name: &str,
    generate: impl FnOnce() -> Vec<Table>,
    cfg: &ExpConfig,
    dir: &Path,
    summary: &mut Table,
) -> telemetry::Snapshot {
    let t0 = Instant::now();
    let tables = generate();
    let wall = t0.elapsed();
    let exec = telemetry::take();
    for t in &tables {
        println!("{t}");
    }
    let timing = ArtifactTiming { wall, exec, jobs: cfg.jobs };
    match report::write_artifact(
        dir,
        name,
        &tables,
        &timing,
        cfg.duration.as_secs_f64(),
        &cfg.seeds,
    ) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("warning: could not write {name}.json: {err}"),
    }
    let wall_s = wall.as_secs_f64();
    let busy_s = exec.busy.as_secs_f64();
    summary.add_row(vec![
        name.to_string(),
        exec.runs.to_string(),
        format!("{wall_s:.2}"),
        format!("{busy_s:.2}"),
        format!("{:.2}x", if wall_s > 0.0 { busy_s / wall_s } else { 1.0 }),
    ]);
    exec
}

fn main() {
    let cfg = ExpConfig::from_env();
    let dir = report::repro_dir();
    println!("# RIPPLE reproduction — all tables\n");
    println!(
        "({}s x {} seeds, {} workers; JSON -> {})\n",
        cfg.duration.as_secs_f64(),
        cfg.seeds.len(),
        cfg.jobs,
        dir.display()
    );

    let mut summary = Table::new(
        "Run summary — wall-clock per artefact",
        vec!["artefact", "runs", "wall (s)", "busy (s)", "speedup"],
    );
    let started = Instant::now();
    let _ = telemetry::take(); // drop any counters from config resolution
    let mut total_exec = telemetry::Snapshot::default();

    total_exec += emit(
        "fig2",
        || vec![exp::fig2::generate(), exp::fig2::worked_example()],
        &cfg,
        &dir,
        &mut summary,
    );
    total_exec +=
        emit("motivation", || vec![exp::motivation::generate(&cfg)], &cfg, &dir, &mut summary);
    total_exec += emit("fig3", || exp::fig3::generate(1e-6, &cfg), &cfg, &dir, &mut summary);
    total_exec += emit("fig4", || exp::fig3::generate(1e-5, &cfg), &cfg, &dir, &mut summary);
    total_exec += emit(
        "fig6",
        || vec![exp::fig6::generate_regular(&cfg), exp::fig6::generate_hidden(&cfg)],
        &cfg,
        &dir,
        &mut summary,
    );
    total_exec += emit("fig7", || exp::fig7::generate(&cfg), &cfg, &dir, &mut summary);
    total_exec += emit("fig8", || vec![exp::fig8::generate(&cfg)], &cfg, &dir, &mut summary);
    total_exec += emit("table3", || exp::table3::generate(&cfg), &cfg, &dir, &mut summary);
    total_exec += emit("fig10", || exp::fig10::generate(&cfg), &cfg, &dir, &mut summary);
    total_exec += emit("fig12", || exp::fig12::generate(&cfg), &cfg, &dir, &mut summary);
    total_exec += emit(
        "ablation",
        || {
            vec![
                exp::ablation::max_forwarders(&cfg),
                exp::ablation::aggregation_limit(&cfg),
                exp::ablation::phy_rates(&cfg),
            ]
        },
        &cfg,
        &dir,
        &mut summary,
    );

    let total = started.elapsed();
    summary.add_row(vec![
        "TOTAL".into(),
        total_exec.runs.to_string(),
        format!("{:.2}", total.as_secs_f64()),
        format!("{:.2}", total_exec.busy.as_secs_f64()),
        String::new(),
    ]);
    println!("{summary}");
    // The per-artefact emits drained the global counters; the summary
    // reports their accumulated total.
    let timing = ArtifactTiming { wall: total, exec: total_exec, jobs: cfg.jobs };
    match report::write_artifact(
        &dir,
        "summary",
        std::slice::from_ref(&summary),
        &timing,
        cfg.duration.as_secs_f64(),
        &cfg.seeds,
    ) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(err) => eprintln!("warning: could not write summary.json: {err}"),
    }
}
