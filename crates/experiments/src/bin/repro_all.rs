//! Runs every experiment and prints all tables — the full reproduction in
//! one command. Set RIPPLE_REPRO=paper for the 10 s x 5 seed settings.

use wmn_experiments as exp;
use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    println!("# RIPPLE reproduction — all tables\n");
    println!("{}", exp::fig2::generate());
    println!("{}", exp::fig2::worked_example());
    println!("{}", exp::motivation::generate(&cfg));
    for t in exp::fig3::generate(1e-6, &cfg) {
        println!("{t}");
    }
    for t in exp::fig3::generate(1e-5, &cfg) {
        println!("{t}");
    }
    println!("{}", exp::fig6::generate_regular(&cfg));
    println!("{}", exp::fig6::generate_hidden(&cfg));
    for t in exp::fig7::generate(&cfg) {
        println!("{t}");
    }
    println!("{}", exp::fig8::generate(&cfg));
    for t in exp::table3::generate(&cfg) {
        println!("{t}");
    }
    for t in exp::fig10::generate(&cfg) {
        println!("{t}");
    }
    for t in exp::fig12::generate(&cfg) {
        println!("{t}");
    }
}
