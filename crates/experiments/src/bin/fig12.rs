//! Prints the Fig. 12 tables (Roofnet topology).

use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    for table in wmn_experiments::fig12::generate(&cfg) {
        println!("{table}");
    }
}
