//! Prints the Fig. 10 tables (Wigle topology).

use wmn_experiments::ExpConfig;

fn main() {
    let cfg = ExpConfig::from_env();
    for table in wmn_experiments::fig10::generate(&cfg) {
        println!("{table}");
    }
}
