//! Fig. 2 / Section II: the analytic per-packet delivery-time comparison
//! (the transmission-timeline figure rendered as numbers).

use wmn_mac::OverheadModel;
use wmn_metrics::Table;
use wmn_phy::PhyParams;

/// Per-packet delivery time (µs) over 1–7 transmissions for every scheme
/// in Fig. 2, from the Section II closed forms with Table I parameters.
pub fn generate() -> Table {
    let model = OverheadModel::new(PhyParams::paper_216());
    let mut table = Table::new(
        "Fig. 2 — analytic per-packet delivery time (us) vs path length",
        vec!["hops (n)", "PRR", "preExOR", "MCExOR", "RIPPLE-1", "RIPPLE-16"],
    );
    for n in 1..=7u32 {
        table.add_numeric_row(
            n.to_string(),
            &[
                model.prr(n).as_micros_f64(),
                model.pre_exor(n).as_micros_f64(),
                model.mc_exor(n).as_micros_f64(),
                model.ripple(n, 1).as_micros_f64(),
                model.ripple(n, 16).as_micros_f64(),
            ],
        );
    }
    table
}

/// The worked 3-hop, 2-packet example of Section II: the extra time each
/// scheme needs relative to PRR, expressed in the paper's units.
pub fn worked_example() -> Table {
    let model = OverheadModel::new(PhyParams::paper_216());
    let t_ack = model.t_ack().as_micros_f64();
    let sifs = 16.0;
    let mut table = Table::new(
        "Sec. II worked example (2 packets over 0->1->2->3)",
        vec!["comparison", "paper identity", "value (us)"],
    );
    let pre = model.pre_exor(3).as_micros_f64() * 2.0;
    let mce = model.mc_exor(3).as_micros_f64() * 2.0;
    table.add_row(vec![
        "preExOR - MCExOR".into(),
        "6 x T_ACK".into(),
        format!("{:.2} (expect {:.2})", pre - mce, 6.0 * t_ack),
    ]);
    table.add_row(vec![
        "extra ACK slots of preExOR".into(),
        "6 x (T_ACK + T_SIFS)".into(),
        format!("{:.2}", 6.0 * (t_ack + sifs)),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_seven_rows_and_fig2_ordering() {
        let t = generate();
        assert_eq!(t.row_count(), 7);
        // Row for n=3: RIPPLE-16 < RIPPLE-1 < PRR < MCExOR < preExOR.
        let v = |col: usize| t.cell(2, col).unwrap().parse::<f64>().unwrap();
        let (prr, pre, mce, r1, r16) = (v(1), v(2), v(3), v(4), v(5));
        assert!(r16 < r1 && r1 < prr && prr < mce && mce < pre);
    }

    #[test]
    fn worked_example_matches_identity() {
        let t = worked_example();
        assert_eq!(t.row_count(), 2);
        let cell = t.cell(0, 2).unwrap();
        // "x (expect y)" with x == y.
        let parts: Vec<&str> = cell.split(" (expect ").collect();
        let x: f64 = parts[0].parse().unwrap();
        let y: f64 = parts[1].trim_end_matches(')').parse().unwrap();
        assert!((x - y).abs() < 0.01, "identity must hold: {cell}");
    }
}
