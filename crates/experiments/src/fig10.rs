//! Fig. 10: per-flow TCP throughput on the (synthetic) Wigle topology, at
//! 6 and 216 Mbps PHY rates, with and without the hidden S→R flow.
//!
//! Routes come from ETX; flow labels spell out the path like the paper's
//! x-axis ("1-4-6-8"). Expected shape: RIPPLE ≥ AFR ≥ DCF on nearly every
//! flow, with gains up to ~2–3×.

use wmn_metrics::Table;
use wmn_netsim::{FlowSpec, Scenario, Workload};
use wmn_phy::PhyParams;
use wmn_routing::LinkGraph;
use wmn_sim::NodeId;
use wmn_topology::wigle;
use wmn_traffic::CbrModel;

use crate::common::{dar_schemes, next_named, run_grid, ExpConfig};

fn path_label(path: &[NodeId]) -> String {
    path.iter().map(|n| n.index().to_string()).collect::<Vec<_>>().join("-")
}

/// The ETX paths of the eight Fig. 10 flows.
pub fn flow_paths() -> Vec<Vec<NodeId>> {
    let topo = wigle::topology();
    let graph = LinkGraph::from_placement(&PhyParams::paper_216(), &topo.positions);
    wigle::flow_pairs()
        .into_iter()
        .map(|(s, d)| graph.shortest_path(s, d).expect("wigle pairs are connected"))
        .collect()
}

/// One table per (rate, hidden) combination, per-flow throughput rows.
pub fn generate(cfg: &ExpConfig) -> Vec<Table> {
    let topo = wigle::topology();
    let paths = flow_paths();
    let rates = [("6Mbps", PhyParams::paper_6()), ("216Mbps", PhyParams::paper_216())];
    let mut scenarios = Vec::new();
    for (rate_label, params) in &rates {
        for hidden in [false, true] {
            for (label, scheme) in dar_schemes() {
                let mut flows: Vec<FlowSpec> = paths
                    .iter()
                    .map(|p| FlowSpec { path: p.clone(), workload: Workload::Ftp })
                    .collect();
                if hidden {
                    flows.push(FlowSpec {
                        path: vec![wigle::HIDDEN_SRC, wigle::HIDDEN_DST],
                        workload: Workload::Cbr(CbrModel::heavy()),
                    });
                }
                scenarios.push(Scenario {
                    name: format!("fig10-{label}-{rate_label}-{hidden}"),
                    params: params.clone(),
                    positions: topo.positions.clone(),
                    scheme,
                    flows,
                    duration: cfg.duration,
                    seed: 0,
                    max_forwarders: 5,
                    motion: wmn_netsim::MotionPlan::default(),
                    route_refresh: None,
                    shards: None,
                });
            }
        }
    }
    let mut avgs = run_grid(&scenarios, cfg).into_iter();
    let mut tables = Vec::new();
    for (rate_label, _) in &rates {
        for hidden in [false, true] {
            let mut table = Table::new(
                format!(
                    "Fig. 10 — Wigle, {rate_label}{} — per-flow TCP throughput (Mbps)",
                    if hidden { ", with hidden S->R" } else { "" }
                ),
                vec!["flow (path)", "DCF", "AFR", "RIPPLE"],
            );
            let columns: Vec<Vec<f64>> = dar_schemes()
                .iter()
                .map(|(label, _)| {
                    let name = format!("fig10-{label}-{rate_label}-{hidden}");
                    let avg = next_named(&mut avgs, &name);
                    avg.flows.iter().take(paths.len()).map(|f| f.throughput_mbps).collect()
                })
                .collect();
            for (i, path) in paths.iter().enumerate() {
                table.add_numeric_row(
                    path_label(path),
                    &[columns[0][i], columns[1][i], columns[2][i]],
                );
            }
            tables.push(table);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_sim::SimDuration;

    #[test]
    fn eight_flows_with_path_labels() {
        let paths = flow_paths();
        assert_eq!(paths.len(), 8);
        for p in &paths {
            assert!((2..=4).contains(&p.len()), "1-3 hops: {}", path_label(p));
        }
    }

    #[test]
    fn tables_cover_rate_and_hidden_grid() {
        let cfg = ExpConfig::custom(SimDuration::from_millis(120), vec![1]);
        let tables = generate(&cfg);
        assert_eq!(tables.len(), 4, "2 rates x (plain, hidden)");
        assert_eq!(tables[0].row_count(), 8);
    }
}
