//! Experiment library: one module per table/figure of the paper.
//!
//! Every module exposes a `generate(&ExpConfig) -> Vec<Table>` (or similar)
//! function that reruns the corresponding experiment and returns the rows /
//! series the paper reports; the binaries in `src/bin/` print them. The
//! absolute numbers come from this repo's simulator, not the authors' NS-2
//! setup — EXPERIMENTS.md tracks the *shape* comparison (who wins, by
//! roughly what factor, where crossovers fall).
//!
//! Every generator builds its full `(scenario × seed)` grid up front and
//! funnels it through [`common::run_grid`], which fans the independent runs
//! across the [`wmn_exec`] worker pool (`RIPPLE_JOBS`, default: all cores)
//! and returns seed averages bit-identical to a serial loop. `repro_all`
//! additionally writes per-artefact JSON (tables + timing) under
//! `target/repro/`.
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Fig. 2 / Sec. II timing formulas | [`fig2`] | `fig2_overhead` |
//! | Sec. II motivation (SPR vs preExOR vs MCExOR) | [`motivation`] | `motivation` |
//! | Fig. 3 (long TCP, BER 1e-6) | [`fig3`] | `fig3` |
//! | Fig. 4 (long TCP, BER 1e-5) | [`fig3`] | `fig4` |
//! | Fig. 6 (regular / hidden collisions) | [`fig6`] | `fig6` |
//! | Fig. 7 (2–7 hops ± cross traffic) | [`fig7`] | `fig7` |
//! | Fig. 8 (web traffic) | [`fig8`] | `fig8` |
//! | Table III (VoIP MoS) | [`table3`] | `table3` |
//! | Fig. 10 (Wigle) | [`fig10`] | `fig10` |
//! | Fig. 12 (Roofnet) | [`fig12`] | `fig12` |
//! | Ablations (forwarder cap, aggregation, PHY rates) | [`ablation`] | `ablation` |
//!
//! Beyond the paper's artefacts, [`sweep`] drives `wmn_scengen`'s generated
//! scenario grids through the same engine (`scenario_sweep` binary), and
//! `check_baseline` diffs fresh repro/sweep JSON against the committed
//! `ci/baseline_repro.json` (the CI perf-regression gate).

pub mod ablation;
pub mod common;
pub mod fig10;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod motivation;
pub mod refresh;
pub mod sweep;
pub mod table3;

pub use common::{AvgFlow, AvgResult, ExpConfig};
