//! Simulated clock types.
//!
//! [`SimTime`] is an absolute instant; [`SimDuration`] is a span. Both are
//! newtypes over a `u64` nanosecond count. 802.11 timing constants (SIFS,
//! slot, PHY header) are integral microseconds, but transmission durations at
//! 216 Mbps are fractional microseconds, so nanoseconds are the working unit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of simulated time, counted in nanoseconds from the
/// start of the run.
///
/// # Example
///
/// ```
/// use wmn_sim::{SimDuration, SimTime};
/// let t = SimTime::from_micros(10) + SimDuration::from_micros(16);
/// assert_eq!(t.as_micros_f64(), 26.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, counted in nanoseconds.
///
/// # Example
///
/// ```
/// use wmn_sim::SimDuration;
/// let slot = SimDuration::from_micros(9);
/// assert_eq!((slot * 2).as_nanos(), 18_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from a microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds (fractional seconds allowed).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid second count: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "infinite" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from a nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from a microsecond count.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from seconds (fractional seconds allowed).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid second count: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a span from fractional microseconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid microsecond count: {us}");
        SimDuration((us * 1e3).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the span expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// How many whole copies of `unit` fit in this span.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    pub fn div_duration(self, unit: SimDuration) -> u64 {
        assert!(unit.0 > 0, "division by zero duration");
        self.0 / unit.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime subtraction underflow"))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime subtraction underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration subtraction underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.checked_sub(rhs.0).expect("SimDuration subtraction underflow");
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_roundtrip() {
        let d = SimDuration::from_micros(16);
        assert_eq!(d.as_nanos(), 16_000);
        assert_eq!(d.as_micros_f64(), 16.0);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_micros(100);
        let t1 = t0 + SimDuration::from_micros(34);
        assert_eq!(t1 - t0, SimDuration::from_micros(34));
        assert_eq!(t1 - SimDuration::from_micros(34), t0);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_micros(5);
        let late = SimTime::from_micros(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_micros(4));
    }

    #[test]
    fn div_duration_counts_whole_slots() {
        let elapsed = SimDuration::from_micros(31);
        let slot = SimDuration::from_micros(9);
        assert_eq!(elapsed.div_duration(slot), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_micros(1) - SimTime::from_micros(2);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(1e-9).as_nanos(), 1);
        assert_eq!(SimDuration::from_secs_f64(10.0).as_secs_f64(), 10.0);
    }

    #[test]
    fn duration_scaling() {
        let slot = SimDuration::from_micros(9);
        assert_eq!(slot * 3, SimDuration::from_micros(27));
        assert_eq!(SimDuration::from_micros(27) / 3, slot);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert!(!format!("{}", SimTime::ZERO).is_empty());
        assert!(!format!("{:?}", SimDuration::ZERO).is_empty());
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3].iter().map(|&us| SimDuration::from_micros(us)).sum();
        assert_eq!(total, SimDuration::from_micros(6));
    }
}
