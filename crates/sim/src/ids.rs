//! Shared identifier newtypes used across every layer of the simulator.

use std::fmt;

/// Identifies a wireless station within one simulation.
///
/// Node ids are dense indices assigned by the scenario builder, so they can be
/// used directly to index per-node state tables.
///
/// # Example
///
/// ```
/// use wmn_sim::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(format!("{n}"), "n3");
/// ```
/// `Default` (index 0) exists so dense inline containers (`wmn_mac`'s
/// `SmallList`) can zero-fill their unused slots; a defaulted id is a
/// legitimate station index, never a sentinel.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index, suitable for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Identifies an end-to-end traffic flow within one simulation.
///
/// A flow is directional at the application level (e.g. an FTP download), but
/// its id is shared by both directions of the underlying conversation (TCP
/// data and TCP acknowledgements use the same `FlowId`).
/// `Default` (index 0) exists for the same inline-container zero-fill as
/// [`NodeId`]'s.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(u32);

impl FlowId {
    /// Creates a flow id from a dense index.
    pub const fn new(index: u32) -> Self {
        FlowId(index)
    }

    /// Returns the dense index, suitable for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl From<u32> for FlowId {
    fn from(v: u32) -> Self {
        FlowId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7u32), n);
    }

    #[test]
    fn flow_id_display() {
        assert_eq!(format!("{}", FlowId::new(2)), "f2");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(FlowId::new(0) < FlowId::new(9));
    }
}
