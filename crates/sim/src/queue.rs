//! The future-event list.
//!
//! A thin wrapper over [`BinaryHeap`] that pops events in time order and —
//! crucially for reproducibility — breaks ties among simultaneous events in
//! insertion (FIFO) order, so a run is a pure function of the scenario seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A deterministic discrete-event queue.
///
/// Events of type `E` are scheduled at absolute [`SimTime`] instants and
/// popped in non-decreasing time order. Events scheduled for the same instant
/// come out in the order they were scheduled.
///
/// # Example
///
/// ```
/// use wmn_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_micros(1);
/// q.schedule(t, "first");
/// q.schedule(t, "second");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // tick, the first-scheduled) entry is popped first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events before
    /// the backing heap reallocates. Simulation runners that know their
    /// initial schedule size (pre-computed departure times, per-flow start
    /// events) use this to avoid growth reallocations in the hot loop.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(capacity), next_seq: 0, now: SimTime::ZERO }
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after [`EventQueue::now`] — the
    /// instant of the most recently popped event. This is the natural form
    /// for discrete-event handlers ("this timer expires 34 µs from now")
    /// and saves every caller from adding `SimTime`s by hand.
    ///
    /// Debug builds assert that `now + delay` does not overflow the
    /// [`SimTime`] range: a wrapped instant would silently schedule the
    /// event in the *past* and corrupt the pop order.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        debug_assert!(
            self.now.as_nanos().checked_add(delay.as_nanos()).is_some(),
            "schedule_in overflows SimTime: now + {delay:?} wraps past SimTime::MAX",
        );
        self.schedule(self.now + delay, event);
    }

    /// Reserves room for at least `additional` more pending events.
    ///
    /// Runners call this once after seeding to pre-size the per-station
    /// schedule burst (each station keeps a backoff timer, a `TxEnd` and a
    /// handful of deliveries in flight at once), so heap growth happens
    /// before the hot loop instead of inside it. After the warm-up the
    /// backing storage is recycled across pops and pushes — the steady
    /// state never returns event nodes to the allocator.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current capacity of the backing heap, in events.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The queue's clock: the instant of the most recently popped event
    /// ([`SimTime::ZERO`] before the first pop). Offsets passed to
    /// [`EventQueue::schedule_in`] are measured from here.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Advances [`EventQueue::now`] to the popped event's instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Windowed pop: removes and returns the earliest event *strictly
    /// before* `horizon`, or `None` if the earliest pending event is at or
    /// past it (the queue itself is untouched in that case). This is the
    /// conservative-window primitive: a shard may safely process every event
    /// below its horizon because no peer can inject anything earlier.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at >= horizon {
            return None;
        }
        self.pop()
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Total events ever scheduled on this queue (the next tie-break
    /// sequence number). Monotone over the queue's lifetime — it never
    /// resets on pops — which is what keeps FIFO order stable when
    /// schedules and pops interleave at one instant.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Canonical, content-derived identity of a scheduled event.
///
/// The plain [`EventQueue`] breaks simultaneous-event ties by insertion
/// order — correct for a single loop, but meaningless across loops: when a
/// scenario is sharded, the interleaving of schedules (and therefore every
/// insertion sequence number) depends on the shard count. A sharded run
/// instead tags each event with a key derived from its *origin* — the kind
/// and index of the entity that caused it, plus that origin's own event
/// counter — which is invariant under resharding. Keys order
/// lexicographically as `(kind, entity, seq)`.
///
/// Contract: an origin must mint strictly increasing `seq` values, so every
/// key in flight is unique and `(time, key)` is a total order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Origin lane: `kind << 32 | entity index`.
    lane: u64,
    /// The origin's own event counter at scheduling time.
    seq: u64,
}

impl EventKey {
    /// Builds a key from an origin kind, the origin's dense index, and the
    /// origin's event counter.
    pub fn new(kind: u32, entity: u32, seq: u64) -> EventKey {
        EventKey { lane: (u64::from(kind) << 32) | u64::from(entity), seq }
    }
}

/// A deterministic event queue ordered by `(time, EventKey)` instead of
/// `(time, insertion order)` — the shard-safe variant of [`EventQueue`].
///
/// Two queues holding the same set of `(time, key, event)` entries pop them
/// in the same order no matter how the entries were distributed or
/// interleaved at insertion, which is exactly the property the window-merge
/// seam of a sharded run needs: a cross-shard arrival injected at a window
/// boundary sorts into the same place it would have occupied in a
/// single-shard run.
#[derive(Debug)]
pub struct KeyedEventQueue<E> {
    heap: BinaryHeap<KeyedEntry<E>>,
    now: SimTime,
}

#[derive(Debug)]
struct KeyedEntry<E> {
    at: SimTime,
    key: EventKey,
    event: E,
}

impl<E> PartialEq for KeyedEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}

impl<E> Eq for KeyedEntry<E> {}

impl<E> PartialOrd for KeyedEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for KeyedEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap, inverted: earliest (time, key) pops first.
        other.at.cmp(&self.at).then_with(|| other.key.cmp(&self.key))
    }
}

impl<E> KeyedEventQueue<E> {
    /// Creates an empty queue with room for `capacity` pending events.
    ///
    /// The capacity is clamped to at least one slot: per-shard queues are
    /// sized from the shard's share of the seeded events, and a shard that
    /// owns none of them (all flows live elsewhere) would otherwise start at
    /// zero capacity and pay its first growth reallocation mid-window.
    pub fn with_capacity(capacity: usize) -> Self {
        KeyedEventQueue { heap: BinaryHeap::with_capacity(capacity.max(1)), now: SimTime::ZERO }
    }

    /// Schedules `event` at the absolute instant `at` under `key`.
    pub fn schedule_keyed(&mut self, at: SimTime, key: EventKey, event: E) {
        self.heap.push(KeyedEntry { at, key, event });
    }

    /// Schedules `event` under `key`, `delay` after [`KeyedEventQueue::now`].
    ///
    /// Debug builds assert that `now + delay` does not overflow the
    /// [`SimTime`] range (see [`EventQueue::schedule_in`]).
    pub fn schedule_keyed_in(&mut self, delay: SimDuration, key: EventKey, event: E) {
        debug_assert!(
            self.now.as_nanos().checked_add(delay.as_nanos()).is_some(),
            "schedule_keyed_in overflows SimTime: now + {delay:?} wraps past SimTime::MAX",
        );
        self.schedule_keyed(self.now + delay, key, event);
    }

    /// Reserves room for at least `additional` more pending events — the
    /// per-station burst pre-sizing twin of [`EventQueue::reserve`].
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current capacity of the backing heap, in events.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// The queue's clock: the instant of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Removes and returns the earliest `(time, key)` event, advancing the
    /// clock to its instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Windowed pop: the earliest event strictly before `horizon`, or
    /// `None` (queue untouched) if the earliest pending event is at or past
    /// it. See [`EventQueue::pop_before`].
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.heap.peek()?.at >= horizon {
            return None;
        }
        self.pop()
    }

    /// The `(time, key)` of the earliest pending event without removing it.
    pub fn peek(&self) -> Option<(SimTime, EventKey)> {
        self.heap.peek().map(|e| (e.at, e.key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn schedule_in_measures_from_last_pop() {
        let mut q = EventQueue::with_capacity(8);
        assert_eq!(q.now(), SimTime::ZERO);
        // Before any pop, delays are measured from time zero.
        q.schedule_in(crate::SimDuration::from_micros(10), "a");
        let (t, e) = q.pop().expect("scheduled");
        assert_eq!((t, e), (SimTime::from_micros(10), "a"));
        assert_eq!(q.now(), SimTime::from_micros(10));
        // After a pop, from the popped instant.
        q.schedule_in(crate::SimDuration::from_micros(5), "b");
        assert_eq!(q.pop().expect("scheduled").0, SimTime::from_micros(15));
    }

    #[test]
    fn schedule_in_zero_delay_is_fifo_with_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(3), "popped");
        q.pop();
        q.schedule(SimTime::from_micros(3), "abs");
        q.schedule_in(crate::SimDuration::ZERO, "rel");
        assert_eq!(q.pop().unwrap().1, "abs");
        assert_eq!(q.pop().unwrap().1, "rel");
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    /// The adversarial case for the tie-break: schedules and pops
    /// interleaved *at the same instant*. Events scheduled after a pop must
    /// still come out after the earlier survivors, not jump the queue.
    #[test]
    fn interleaved_schedule_pop_at_equal_timestamps_stays_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(3);
        q.schedule(t, "a");
        q.schedule(t, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        // Scheduled mid-drain, same instant: must follow "b".
        q.schedule(t, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        q.schedule(t, "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert!(q.is_empty());
    }

    /// Draining the queue completely must not reset the tie-break: a second
    /// wave at the same instant still pops in schedule order, and the
    /// sequence counter only ever grows.
    #[test]
    fn seq_survives_full_drain() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(9);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.scheduled_total(), 2);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 2, "pops must not rewind the counter");
        q.schedule(t, 2);
        q.schedule(t, 3);
        assert_eq!(q.scheduled_total(), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 3]);
    }

    /// The simulator's actual access pattern under MAC timer storms: a
    /// rolling window where each popped event schedules successors at the
    /// same or a later instant. Global order must stay (time, insertion).
    #[test]
    fn rolling_interleave_preserves_time_then_insertion_order() {
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        for wave in 0..50u64 {
            let t = SimTime::from_micros(wave / 4); // several waves share a tick
            q.schedule(t, (t, wave)); // wave doubles as the insertion id
            if wave % 3 == 2 {
                popped.push(q.pop().expect("queue non-empty"));
            }
        }
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), 50);
        for pair in popped.windows(2) {
            let ((ta, (_, ia)), (tb, (_, ib))) = (pair[0], pair[1]);
            assert!(ta <= tb, "pop times must be non-decreasing");
            if ta == tb {
                assert!(ia < ib, "equal instants must preserve insertion order");
            }
        }
    }

    #[test]
    fn pop_before_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(5), "early");
        q.schedule(SimTime::from_nanos(10), "boundary");
        q.schedule(SimTime::from_nanos(15), "late");
        let h = SimTime::from_nanos(10);
        assert_eq!(q.pop_before(h).unwrap(), (SimTime::from_nanos(5), "early"));
        // An event exactly at the horizon must stay: cross-shard arrivals
        // land at or past it, and may still sort before this one.
        assert_eq!(q.pop_before(h), None);
        assert_eq!(q.len(), 2, "refused pops leave the queue untouched");
        assert_eq!(q.pop_before(SimTime::from_nanos(16)).unwrap().1, "boundary");
        assert_eq!(q.pop_before(SimTime::from_nanos(16)).unwrap().1, "late");
        assert_eq!(q.pop_before(SimTime::from_nanos(16)), None);
    }

    /// The satellite regression for the window-merge seam: simultaneous
    /// events at a window boundary must pop in key order, no matter how
    /// their insertion interleaved — including a cross-"shard" injection
    /// arriving after local events with the same timestamp were scheduled.
    #[test]
    fn window_boundary_simultaneous_pops_are_key_ordered() {
        let t = SimTime::from_micros(50);
        // One queue schedules local-first, the other injection-first.
        let mut local_first = KeyedEventQueue::with_capacity(4);
        local_first.schedule_keyed(t, EventKey::new(0, 7, 3), "node7#3");
        local_first.schedule_keyed(t, EventKey::new(1, 0, 0), "flow0#0");
        local_first.schedule_keyed(t, EventKey::new(0, 2, 9), "node2#9"); // the injection
        let mut inject_first = KeyedEventQueue::with_capacity(4);
        inject_first.schedule_keyed(t, EventKey::new(0, 2, 9), "node2#9");
        inject_first.schedule_keyed(t, EventKey::new(0, 7, 3), "node7#3");
        inject_first.schedule_keyed(t, EventKey::new(1, 0, 0), "flow0#0");
        for q in [&mut local_first, &mut inject_first] {
            assert_eq!(q.pop_before(t + crate::SimDuration::from_nanos(1)).unwrap().1, "node2#9");
            assert_eq!(q.pop().unwrap().1, "node7#3");
            assert_eq!(q.pop().unwrap().1, "flow0#0");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn keyed_queue_orders_by_time_then_kind_then_entity_then_seq() {
        let mut q = KeyedEventQueue::with_capacity(8);
        q.schedule_keyed(SimTime::from_nanos(2), EventKey::new(0, 0, 1), 4);
        q.schedule_keyed(SimTime::from_nanos(1), EventKey::new(1, 0, 0), 3);
        q.schedule_keyed(SimTime::from_nanos(1), EventKey::new(0, 5, 0), 2);
        q.schedule_keyed(SimTime::from_nanos(1), EventKey::new(0, 3, 8), 1);
        q.schedule_keyed(SimTime::from_nanos(1), EventKey::new(0, 3, 2), 0);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    /// Equal-time *same-key* entries violate the key-uniqueness contract,
    /// so no FIFO promise holds — but the order must still be a pure
    /// function of the insertion sequence (heap mechanics, no address or
    /// hash dependence), or a contract slip would silently break run
    /// reproducibility instead of showing up as a diff. This pins the
    /// current order; if it ever changes, the heap implementation changed
    /// underneath us and shard bit-identity needs re-auditing.
    #[test]
    fn equal_time_same_key_pop_order_is_deterministic() {
        let t = SimTime::from_micros(1);
        let k = EventKey::new(0, 0, 0);
        let build = || {
            let mut q = KeyedEventQueue::with_capacity(4);
            for name in ["a", "b", "c", "d"] {
                q.schedule_keyed(t, k, name);
            }
            q
        };
        fn drain(mut q: KeyedEventQueue<&str>) -> Vec<&str> {
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
        }
        let order = drain(build());
        assert_eq!(order, vec!["a", "c", "b", "d"], "insertion-determined, not FIFO");
        assert_eq!(order, drain(build()), "same insertions, same pops");
        // With the contract honoured — unique seqs — the same instant is
        // strictly seq-ordered regardless of insertion interleaving.
        let mut q = KeyedEventQueue::with_capacity(4);
        for (seq, name) in [(2, "third"), (0, "first"), (1, "second")] {
            q.schedule_keyed(t, EventKey::new(0, 0, seq), name);
        }
        assert_eq!(drain(q), vec!["first", "second", "third"]);
    }

    #[test]
    fn reserve_pre_sizes_the_burst() {
        let mut q: EventQueue<u32> = EventQueue::with_capacity(2);
        q.reserve(100);
        let warm = q.capacity();
        assert!(warm >= 100);
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(u64::from(i)), i);
        }
        assert_eq!(q.capacity(), warm, "no growth inside the reserved burst");
        let mut kq: KeyedEventQueue<u32> = KeyedEventQueue::with_capacity(1);
        kq.reserve(64);
        assert!(kq.capacity() >= 64);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overflows SimTime")]
    fn schedule_in_overflow_is_caught_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX - SimDuration::from_nanos(1), ());
        q.pop();
        q.schedule_in(SimDuration::from_nanos(2), ());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overflows SimTime")]
    fn schedule_keyed_in_overflow_is_caught_in_debug() {
        let mut q = KeyedEventQueue::with_capacity(1);
        q.schedule_keyed(SimTime::MAX - SimDuration::from_nanos(1), EventKey::new(0, 0, 0), ());
        q.pop();
        q.schedule_keyed_in(SimDuration::from_nanos(2), EventKey::new(0, 0, 1), ());
    }

    #[test]
    fn keyed_queue_zero_capacity_is_clamped() {
        // The shard-split audit: a shard owning no seeded events must still
        // start with a usable (non-zero-capacity) queue.
        let mut q: KeyedEventQueue<()> = KeyedEventQueue::with_capacity(0);
        assert!(q.is_empty());
        q.schedule_keyed_in(SimDuration::from_nanos(3), EventKey::new(0, 0, 0), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(3));
        assert_eq!(q.now(), SimTime::from_nanos(3));
    }

    proptest! {
        /// Keyed pop order is a pure function of the entry *set*: any
        /// permutation of the same `(time, key)` entries pops identically —
        /// the K-invariance property the sharded engine is built on.
        #[test]
        fn prop_keyed_pop_order_is_insertion_invariant(
            entries in proptest::collection::vec((0u64..50, 0u32..3, 0u32..4, 0u64..5), 1..40),
            rot in 0usize..40,
        ) {
            let mut a = KeyedEventQueue::with_capacity(entries.len());
            for &(t, kind, ent, seq) in &entries {
                a.schedule_keyed(SimTime::from_nanos(t), EventKey::new(kind, ent, seq), (t, kind, ent, seq));
            }
            let mut rotated = entries.clone();
            rotated.rotate_left(rot % entries.len().max(1));
            let mut b = KeyedEventQueue::with_capacity(rotated.len());
            for &(t, kind, ent, seq) in &rotated {
                b.schedule_keyed(SimTime::from_nanos(t), EventKey::new(kind, ent, seq), (t, kind, ent, seq));
            }
            // Entries may collide on (time, key) under this generator; the
            // popped *multisets per (time, key)* still must match, and where
            // keys are unique the order is fully pinned. Compare the full
            // sorted-equivalence: pop sequences must agree on (time, key)
            // at every position.
            let pa: Vec<_> = std::iter::from_fn(|| a.pop()).collect();
            let pb: Vec<_> = std::iter::from_fn(|| b.pop()).collect();
            prop_assert_eq!(pa.len(), pb.len());
            for ((ta, ea), (tb, eb)) in pa.iter().zip(&pb) {
                prop_assert_eq!(ta, tb);
                prop_assert_eq!((ea.0, ea.1, ea.2, ea.3), (eb.0, eb.1, eb.2, eb.3));
            }
        }

        /// Popping always yields a non-decreasing time sequence, regardless of
        /// the insertion order.
        #[test]
        fn prop_pop_times_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Every scheduled event is popped exactly once.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..1_000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
