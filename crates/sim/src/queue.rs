//! The future-event list.
//!
//! A thin wrapper over [`BinaryHeap`] that pops events in time order and —
//! crucially for reproducibility — breaks ties among simultaneous events in
//! insertion (FIFO) order, so a run is a pure function of the scenario seed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A deterministic discrete-event queue.
///
/// Events of type `E` are scheduled at absolute [`SimTime`] instants and
/// popped in non-decreasing time order. Events scheduled for the same instant
/// come out in the order they were scheduled.
///
/// # Example
///
/// ```
/// use wmn_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let t = SimTime::from_micros(1);
/// q.schedule(t, "first");
/// q.schedule(t, "second");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // tick, the first-scheduled) entry is popped first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue with room for `capacity` pending events before
    /// the backing heap reallocates. Simulation runners that know their
    /// initial schedule size (pre-computed departure times, per-flow start
    /// events) use this to avoid growth reallocations in the hot loop.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(capacity), next_seq: 0, now: SimTime::ZERO }
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` to fire `delay` after [`EventQueue::now`] — the
    /// instant of the most recently popped event. This is the natural form
    /// for discrete-event handlers ("this timer expires 34 µs from now")
    /// and saves every caller from adding `SimTime`s by hand.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// The queue's clock: the instant of the most recently popped event
    /// ([`SimTime::ZERO`] before the first pop). Offsets passed to
    /// [`EventQueue::schedule_in`] are measured from here.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Advances [`EventQueue::now`] to the popped event's instant.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Total events ever scheduled on this queue (the next tie-break
    /// sequence number). Monotone over the queue's lifetime — it never
    /// resets on pops — which is what keeps FIFO order stable when
    /// schedules and pops interleave at one instant.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn schedule_in_measures_from_last_pop() {
        let mut q = EventQueue::with_capacity(8);
        assert_eq!(q.now(), SimTime::ZERO);
        // Before any pop, delays are measured from time zero.
        q.schedule_in(crate::SimDuration::from_micros(10), "a");
        let (t, e) = q.pop().expect("scheduled");
        assert_eq!((t, e), (SimTime::from_micros(10), "a"));
        assert_eq!(q.now(), SimTime::from_micros(10));
        // After a pop, from the popped instant.
        q.schedule_in(crate::SimDuration::from_micros(5), "b");
        assert_eq!(q.pop().expect("scheduled").0, SimTime::from_micros(15));
    }

    #[test]
    fn schedule_in_zero_delay_is_fifo_with_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(3), "popped");
        q.pop();
        q.schedule(SimTime::from_micros(3), "abs");
        q.schedule_in(crate::SimDuration::ZERO, "rel");
        assert_eq!(q.pop().unwrap().1, "abs");
        assert_eq!(q.pop().unwrap().1, "rel");
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    /// The adversarial case for the tie-break: schedules and pops
    /// interleaved *at the same instant*. Events scheduled after a pop must
    /// still come out after the earlier survivors, not jump the queue.
    #[test]
    fn interleaved_schedule_pop_at_equal_timestamps_stays_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(3);
        q.schedule(t, "a");
        q.schedule(t, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        // Scheduled mid-drain, same instant: must follow "b".
        q.schedule(t, "c");
        assert_eq!(q.pop().unwrap().1, "b");
        q.schedule(t, "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert!(q.is_empty());
    }

    /// Draining the queue completely must not reset the tie-break: a second
    /// wave at the same instant still pops in schedule order, and the
    /// sequence counter only ever grows.
    #[test]
    fn seq_survives_full_drain() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(9);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.scheduled_total(), 2);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 2, "pops must not rewind the counter");
        q.schedule(t, 2);
        q.schedule(t, 3);
        assert_eq!(q.scheduled_total(), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![2, 3]);
    }

    /// The simulator's actual access pattern under MAC timer storms: a
    /// rolling window where each popped event schedules successors at the
    /// same or a later instant. Global order must stay (time, insertion).
    #[test]
    fn rolling_interleave_preserves_time_then_insertion_order() {
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        for wave in 0..50u64 {
            let t = SimTime::from_micros(wave / 4); // several waves share a tick
            q.schedule(t, (t, wave)); // wave doubles as the insertion id
            if wave % 3 == 2 {
                popped.push(q.pop().expect("queue non-empty"));
            }
        }
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        assert_eq!(popped.len(), 50);
        for pair in popped.windows(2) {
            let ((ta, (_, ia)), (tb, (_, ib))) = (pair[0], pair[1]);
            assert!(ta <= tb, "pop times must be non-decreasing");
            if ta == tb {
                assert!(ia < ib, "equal instants must preserve insertion order");
            }
        }
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, regardless of
        /// the insertion order.
        #[test]
        fn prop_pop_times_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Every scheduled event is popped exactly once.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..1_000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
