//! Discrete-event simulation engine for the RIPPLE wireless-mesh reproduction.
//!
//! This crate is the bottom layer of the workspace. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated clock
//!   newtypes with microsecond convenience constructors (802.11 timing is
//!   specified in µs),
//! * [`EventQueue`] — a deterministic future-event list with stable FIFO
//!   ordering among simultaneous events, plus [`KeyedEventQueue`], the
//!   shard-safe variant ordered by content-derived [`EventKey`]s instead of
//!   insertion order (so pop order survives resharding),
//! * [`rng`] — named, independently-seeded random-number streams so that
//!   changing how one component consumes randomness does not perturb others,
//! * small shared identifier newtypes ([`NodeId`], [`FlowId`]).
//!
//! Every protocol entity in the upper crates is written as a passive state
//! machine; the event queue in this crate is the only source of time.
//!
//! # Example
//!
//! ```
//! use wmn_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(5), "beacon");
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(3), "ack");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "ack");
//! assert_eq!(t, SimTime::from_micros(3));
//! ```

pub mod ids;
pub mod queue;
pub mod rng;
pub mod time;

pub use ids::{FlowId, NodeId};
pub use queue::{EventKey, EventQueue, KeyedEventQueue};
pub use rng::{RngDirectory, StreamRng};
pub use time::{SimDuration, SimTime};
