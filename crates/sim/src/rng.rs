//! Named random-number streams.
//!
//! Every stochastic component of the simulator (per-link shadowing, per-node
//! backoff, each traffic generator, …) draws from its own [`StreamRng`],
//! derived deterministically from the master seed and a stream label. This
//! keeps components statistically independent and means adding a new consumer
//! of randomness does not perturb the draws seen by existing ones.

/// A deterministic random stream derived from `(master_seed, label)`.
///
/// Wraps an inline xoshiro256++ generator (the algorithm behind `rand`'s
/// `SmallRng` on 64-bit targets — implemented here because this build
/// environment cannot fetch crates.io dependencies) and adds the
/// distribution helpers the simulator needs: exponential, Pareto, and
/// standard-normal variates.
///
/// # Example
///
/// ```
/// use wmn_sim::StreamRng;
/// let mut a = StreamRng::derive(42, "backoff/n0");
/// let mut b = StreamRng::derive(42, "backoff/n0");
/// assert_eq!(a.next_u64(), b.next_u64()); // same label => same stream
/// ```
#[derive(Debug)]
pub struct StreamRng {
    state: [u64; 4],
}

impl StreamRng {
    /// Derives a stream from the master seed and a stable label.
    pub fn derive(master_seed: u64, label: &str) -> Self {
        // FNV-1a-style fold over the label (odd multiplier, not the exact
        // FNV-64 prime — do not "correct" it: every derived stream, and so
        // every seed-dependent result, would change), mixed with the master
        // seed via splitmix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // Expand the mixed seed into four non-degenerate state words, as
        // xoshiro's authors recommend: successive splitmix64 outputs.
        let mut s = splitmix64(master_seed ^ h);
        let mut state = [0u64; 4];
        for word in &mut state {
            s = splitmix64(s);
            *word = s;
        }
        StreamRng { state }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let mut n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.state = [n0, n1, n2, n3];
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → the standard dyadic-rational construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n]` (inclusive). Used for 802.11 backoff
    /// counter draws over the contention window.
    ///
    /// # Panics
    ///
    /// Never panics; `n = 0` always yields 0.
    pub fn uniform_slots(&mut self, n: u32) -> u32 {
        // n + 1 ≤ 2^32 values; modulo bias over a u64 draw is < 2^-32 and
        // irrelevant to backoff statistics.
        (self.next_u64() % (u64::from(n) + 1)) as u32
    }

    /// Exponential variate with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid exponential mean: {mean}");
        let u: f64 = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// Pareto variate with the given `shape` and *mean* (not scale).
    ///
    /// The paper's web workload draws transfer sizes from a Pareto
    /// distribution with mean 80 KB and shape 1.5. For shape `a > 1` the mean
    /// of a Pareto with scale `x_m` is `a·x_m/(a−1)`, so the scale is derived
    /// as `mean·(a−1)/a`.
    ///
    /// # Panics
    ///
    /// Panics unless `shape > 1` and `mean > 0` (the mean is otherwise
    /// undefined).
    pub fn pareto_with_mean(&mut self, shape: f64, mean: f64) -> f64 {
        assert!(shape > 1.0, "Pareto mean undefined for shape <= 1 (got {shape})");
        assert!(mean.is_finite() && mean > 0.0, "invalid Pareto mean: {mean}");
        let scale = mean * (shape - 1.0) / shape;
        let u: f64 = 1.0 - self.uniform(); // in (0, 1]
        scale / u.powf(1.0 / shape)
    }

    /// Standard normal variate (Box–Muller), for log-normal shadowing draws.
    ///
    /// Consumes exactly two raw words per call (see
    /// [`StreamRng::skip_standard_normal`]), and — because `u1` is at least
    /// 2⁻⁵³ — the variate is hard-bounded by
    /// `±sqrt(-2·ln(2⁻⁵³)) ≈ ±8.5716`. Callers that can prove a sample
    /// irrelevant from that bound may skip the transcendental math without
    /// perturbing the stream.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller transform; one variate per call keeps the stream simple.
        let u1: f64 = 1.0 - self.uniform(); // in (0,1], avoids ln(0)
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Advances the stream past exactly the raw draws one
    /// [`StreamRng::standard_normal`] call consumes, without the
    /// transcendental math.
    ///
    /// Hot paths use this when the sample provably cannot matter (e.g. a
    /// link whose maximum possible shadowing excursion still leaves it below
    /// carrier sense) while staying bit-compatible with code that samples:
    /// every later draw sees the identical stream position.
    pub fn skip_standard_normal(&mut self) {
        self.next_u64();
        self.next_u64();
    }

    /// Bernoulli trial that succeeds with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A factory handing out [`StreamRng`]s for a fixed master seed.
///
/// Scenario runners hold one directory and derive per-component streams from
/// it, e.g. `dir.stream("phy/shadowing/n3")`.
#[derive(Debug, Clone, Copy)]
pub struct RngDirectory {
    master_seed: u64,
}

impl RngDirectory {
    /// Creates a directory for the given master seed.
    pub const fn new(master_seed: u64) -> Self {
        RngDirectory { master_seed }
    }

    /// The master seed this directory was built from.
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives the stream with the given label.
    pub fn stream(&self, label: &str) -> StreamRng {
        // lint:allow(rng-label-registry): forwarding shim — each caller's literal label is registered at its own call site
        StreamRng::derive(self.master_seed, label)
    }

    /// Derives the stream `"{prefix}/{index}"` — the canonical form for
    /// per-entity stream families (`"shard/medium"` + transmitter index,
    /// `"shard/ber"` + receiver index, …).
    ///
    /// Sharded engines must derive every per-entity stream through this
    /// method with a literal prefix: the lint registry records the family as
    /// `dynamic:<prefix>/{index}` from the call site, and the
    /// `shard-rng-label` rule rejects unindexed derivations inside shard
    /// code, where a shared stream would make consumption order depend on
    /// the shard count.
    pub fn indexed_stream(&self, prefix: &str, index: u32) -> StreamRng {
        // lint:allow(rng-label-registry): forwarding shim — each caller's literal prefix is registered at its own call site
        StreamRng::derive(self.master_seed, &format!("{prefix}/{index}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_label_same_stream() {
        let dir = RngDirectory::new(7);
        let mut a = dir.stream("x");
        let mut b = dir.stream("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn indexed_stream_matches_the_formatted_label() {
        // The indexed form is *defined* as the "{prefix}/{index}" label:
        // shard code deriving `indexed_stream("shard/medium", 3)` and
        // registry tooling reasoning about `dynamic:shard/medium/{index}`
        // must agree on the stream.
        let dir = RngDirectory::new(41);
        let mut a = dir.indexed_stream("shard/medium", 3);
        let mut b = dir.stream("shard/medium/3");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut other = dir.indexed_stream("shard/medium", 4);
        assert_ne!(a.next_u64(), other.next_u64());
    }

    #[test]
    fn different_labels_diverge() {
        let dir = RngDirectory::new(7);
        let mut a = dir.stream("x");
        let mut b = dir.stream("y");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams with different labels should diverge");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StreamRng::derive(1, "x");
        let mut b = StreamRng::derive(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StreamRng::derive(11, "exp");
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(1.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.5).abs() < 0.05, "sample mean {mean} too far from 1.5");
    }

    #[test]
    fn pareto_mean_is_close() {
        let mut rng = StreamRng::derive(13, "pareto");
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.pareto_with_mean(1.5, 80_000.0)).sum();
        let mean = sum / n as f64;
        // Heavy-tailed: allow a generous tolerance.
        assert!((mean - 80_000.0).abs() / 80_000.0 < 0.25, "sample mean {mean} too far from 80000");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StreamRng::derive(17, "norm");
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn skip_standard_normal_matches_consumption() {
        // The skip must advance the stream exactly as far as a real sample:
        // the shadowing fast path depends on this equivalence.
        let mut sampled = StreamRng::derive(21, "skip");
        let mut skipped = StreamRng::derive(21, "skip");
        for _ in 0..64 {
            let _ = sampled.standard_normal();
            skipped.skip_standard_normal();
            assert_eq!(sampled.next_u64(), skipped.next_u64());
        }
    }

    #[test]
    fn standard_normal_is_hard_bounded() {
        // Box–Muller over a 53-bit uniform: |z| ≤ sqrt(-2·ln(2⁻⁵³)). The
        // medium's build-time link classification relies on this bound.
        let bound = (-2.0 * (1.0 / (1u64 << 53) as f64).ln()).sqrt();
        assert!(bound < 8.572, "analytic bound {bound}");
        let mut rng = StreamRng::derive(23, "bound");
        for _ in 0..100_000 {
            assert!(rng.standard_normal().abs() <= bound);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = StreamRng::derive(19, "chance");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    proptest! {
        /// Backoff draws always fall inside the contention window.
        #[test]
        fn prop_uniform_slots_in_range(n in 0u32..4096, seed in any::<u64>()) {
            let mut rng = StreamRng::derive(seed, "slots");
            for _ in 0..32 {
                prop_assert!(rng.uniform_slots(n) <= n);
            }
        }

        /// Pareto variates are never below the derived scale parameter.
        #[test]
        fn prop_pareto_lower_bound(seed in any::<u64>()) {
            let mut rng = StreamRng::derive(seed, "p");
            let shape = 1.5;
            let mean = 80_000.0;
            let scale = mean * (shape - 1.0) / shape;
            for _ in 0..64 {
                prop_assert!(rng.pareto_with_mean(shape, mean) >= scale - 1e-9);
            }
        }
    }
}
