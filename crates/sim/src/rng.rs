//! Named random-number streams.
//!
//! Every stochastic component of the simulator (per-link shadowing, per-node
//! backoff, each traffic generator, …) draws from its own [`StreamRng`],
//! derived deterministically from the master seed and a stream label. This
//! keeps components statistically independent and means adding a new consumer
//! of randomness does not perturb the draws seen by existing ones.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random stream derived from `(master_seed, label)`.
///
/// Wraps a [`SmallRng`] and adds the distribution helpers the simulator
/// needs: exponential, Pareto, and standard-normal variates.
///
/// # Example
///
/// ```
/// use wmn_sim::StreamRng;
/// let mut a = StreamRng::derive(42, "backoff/n0");
/// let mut b = StreamRng::derive(42, "backoff/n0");
/// assert_eq!(a.next_u64(), b.next_u64()); // same label => same stream
/// ```
#[derive(Debug)]
pub struct StreamRng {
    inner: SmallRng,
}

impl StreamRng {
    /// Derives a stream from the master seed and a stable label.
    pub fn derive(master_seed: u64, label: &str) -> Self {
        // FNV-1a over the label, mixed with the master seed via splitmix64.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let seed = splitmix64(master_seed ^ h);
        StreamRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n]` (inclusive). Used for 802.11 backoff
    /// counter draws over the contention window.
    ///
    /// # Panics
    ///
    /// Never panics; `n = 0` always yields 0.
    pub fn uniform_slots(&mut self, n: u32) -> u32 {
        self.inner.gen_range(0..=n)
    }

    /// Exponential variate with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid exponential mean: {mean}");
        let u: f64 = 1.0 - self.uniform(); // in (0, 1]
        -mean * u.ln()
    }

    /// Pareto variate with the given `shape` and *mean* (not scale).
    ///
    /// The paper's web workload draws transfer sizes from a Pareto
    /// distribution with mean 80 KB and shape 1.5. For shape `a > 1` the mean
    /// of a Pareto with scale `x_m` is `a·x_m/(a−1)`, so the scale is derived
    /// as `mean·(a−1)/a`.
    ///
    /// # Panics
    ///
    /// Panics unless `shape > 1` and `mean > 0` (the mean is otherwise
    /// undefined).
    pub fn pareto_with_mean(&mut self, shape: f64, mean: f64) -> f64 {
        assert!(shape > 1.0, "Pareto mean undefined for shape <= 1 (got {shape})");
        assert!(mean.is_finite() && mean > 0.0, "invalid Pareto mean: {mean}");
        let scale = mean * (shape - 1.0) / shape;
        let u: f64 = 1.0 - self.uniform(); // in (0, 1]
        scale / u.powf(1.0 / shape)
    }

    /// Standard normal variate (Box–Muller), for log-normal shadowing draws.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller transform; one variate per call keeps the stream simple.
        let u1: f64 = 1.0 - self.uniform(); // in (0,1], avoids ln(0)
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli trial that succeeds with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A factory handing out [`StreamRng`]s for a fixed master seed.
///
/// Scenario runners hold one directory and derive per-component streams from
/// it, e.g. `dir.stream("phy/shadowing/n3")`.
#[derive(Debug, Clone, Copy)]
pub struct RngDirectory {
    master_seed: u64,
}

impl RngDirectory {
    /// Creates a directory for the given master seed.
    pub const fn new(master_seed: u64) -> Self {
        RngDirectory { master_seed }
    }

    /// The master seed this directory was built from.
    pub const fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives the stream with the given label.
    pub fn stream(&self, label: &str) -> StreamRng {
        StreamRng::derive(self.master_seed, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_label_same_stream() {
        let dir = RngDirectory::new(7);
        let mut a = dir.stream("x");
        let mut b = dir.stream("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let dir = RngDirectory::new(7);
        let mut a = dir.stream("x");
        let mut b = dir.stream("y");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams with different labels should diverge");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StreamRng::derive(1, "x");
        let mut b = StreamRng::derive(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StreamRng::derive(11, "exp");
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(1.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.5).abs() < 0.05, "sample mean {mean} too far from 1.5");
    }

    #[test]
    fn pareto_mean_is_close() {
        let mut rng = StreamRng::derive(13, "pareto");
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.pareto_with_mean(1.5, 80_000.0)).sum();
        let mean = sum / n as f64;
        // Heavy-tailed: allow a generous tolerance.
        assert!(
            (mean - 80_000.0).abs() / 80_000.0 < 0.25,
            "sample mean {mean} too far from 80000"
        );
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StreamRng::derive(17, "norm");
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = StreamRng::derive(19, "chance");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    proptest! {
        /// Backoff draws always fall inside the contention window.
        #[test]
        fn prop_uniform_slots_in_range(n in 0u32..4096, seed in any::<u64>()) {
            let mut rng = StreamRng::derive(seed, "slots");
            for _ in 0..32 {
                prop_assert!(rng.uniform_slots(n) <= n);
            }
        }

        /// Pareto variates are never below the derived scale parameter.
        #[test]
        fn prop_pareto_lower_bound(seed in any::<u64>()) {
            let mut rng = StreamRng::derive(seed, "p");
            let shape = 1.5;
            let mean = 80_000.0;
            let scale = mean * (shape - 1.0) / shape;
            for _ in 0..64 {
                prop_assert!(rng.pareto_with_mean(shape, mean) >= scale - 1e-9);
            }
        }
    }
}
