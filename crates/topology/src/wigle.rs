//! A synthetic stand-in for the Wigle AP topology of Fig. 9.
//!
//! The paper uses the connected component of a real Wigle access-point map
//! (8 stations, small diameter: most flows traverse 1–3 hops) plus two
//! added stations S and R whose TCP flow provides hidden-terminal
//! interference. The original coordinates are not available, so this module
//! provides a fixed placement with the same structural properties; the
//! tests below pin them down.

use wmn_phy::Position;
use wmn_sim::NodeId;

use crate::Topology;

/// Index of the added hidden source S.
pub const HIDDEN_SRC: NodeId = NodeId::new(8);
/// Index of the added hidden destination R.
pub const HIDDEN_DST: NodeId = NodeId::new(9);

/// The 8 main stations (ids 0–7) plus S (8) and R (9).
pub fn topology() -> Topology {
    Topology::new(
        "wigle",
        vec![
            Position::new(0.0, 0.0),   // 0
            Position::new(5.0, 1.0),   // 1
            Position::new(9.5, 0.0),   // 2
            Position::new(3.5, 5.0),   // 3
            Position::new(8.0, 5.5),   // 4
            Position::new(13.0, 4.0),  // 5
            Position::new(12.5, 9.0),  // 6
            Position::new(8.5, 10.0),  // 7
            Position::new(24.0, 14.0), // 8 = S (hidden source)
            Position::new(27.5, 14.0), // 9 = R (hidden destination)
        ],
    )
}

/// The eight station pairs whose TCP flows Fig. 10 measures. Chosen (like
/// the paper's "randomly picked pairs") so the set spans 1–3 hops across
/// the map; routes are computed by ETX at experiment time.
pub fn flow_pairs() -> Vec<(NodeId, NodeId)> {
    [(0u32, 5u32), (7, 2), (3, 5), (0, 7), (2, 7), (5, 0), (6, 1), (4, 0)]
        .iter()
        .map(|&(a, b)| (NodeId::new(a), NodeId::new(b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_phy::PhyParams;
    use wmn_routing::LinkGraph;

    fn graph() -> LinkGraph {
        let t = topology();
        LinkGraph::from_placement(&PhyParams::paper_216(), &t.positions)
    }

    #[test]
    fn all_flow_pairs_are_routable_within_3_hops() {
        let g = graph();
        for (src, dst) in flow_pairs() {
            let hops = g.hop_count(src, dst).unwrap_or_else(|| panic!("{src}->{dst} unroutable"));
            assert!(
                (1..=3).contains(&hops),
                "small-diameter property: {src}->{dst} is {hops} hops"
            );
        }
        // The set spans more than one hop count.
        let hs: std::collections::BTreeSet<_> =
            flow_pairs().iter().map(|&(a, b)| g.hop_count(a, b).unwrap()).collect();
        assert!(hs.len() >= 2, "flows should span multiple hop counts: {hs:?}");
    }

    #[test]
    fn hidden_pair_is_a_clean_link() {
        let t = topology();
        let p = PhyParams::paper_216();
        let q = p.link_delivery_probability(t.distance(HIDDEN_SRC, HIDDEN_DST));
        assert!(q > 0.9, "S-R must be a clean link: {q}");
    }

    #[test]
    fn hidden_source_is_hidden_from_far_stations_but_interferes_nearby() {
        let t = topology();
        let p = PhyParams::paper_216();
        // Station 0 rarely senses S…
        let far = p.sense_probability(t.distance(NodeId::new(0), HIDDEN_SRC));
        assert!(far < 0.25, "S should be (mostly) hidden from station 0: {far}");
        // …but stations 5/6 are inside its interference range.
        for near in [5u32, 6] {
            let q = p.sense_probability(t.distance(NodeId::new(near), HIDDEN_SRC));
            assert!(q > 0.5, "S must interfere at station {near}: {q}");
        }
    }
}
