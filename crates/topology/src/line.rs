//! The line topology of Section IV-C ("Maximum Hops with Cross Traffic"):
//! a chain of 2–7 hops, optionally intersected mid-way by a 3-hop cross
//! flow. At 6–7 hops the endpoints cannot hear each other at all, so
//! RIPPLE's performance "depends entirely on the forwarders' help".

use wmn_phy::Position;
use wmn_sim::NodeId;

use crate::Topology;

/// Spacing between consecutive chain stations, metres (strong links).
pub const HOP_SPACING: f64 = 5.0;

/// A `hops`-hop chain: stations `0..=hops` along the x axis. If
/// `with_cross` is set, three more stations form a 3-hop cross flow through
/// the chain's middle station: `hops+1 → middle → hops+2 → hops+3`.
///
/// # Panics
///
/// Panics unless `2 ≤ hops ≤ 7` (the paper's range).
pub fn line(hops: usize, with_cross: bool) -> Topology {
    assert!((2..=7).contains(&hops), "the paper evaluates 2..=7 hops");
    let mut positions: Vec<Position> =
        (0..=hops).map(|i| Position::new(i as f64 * HOP_SPACING, 0.0)).collect();
    if with_cross {
        let mid_x = (hops as f64 / 2.0).floor() * HOP_SPACING;
        positions.push(Position::new(mid_x, HOP_SPACING)); // cross source
        positions.push(Position::new(mid_x, -HOP_SPACING)); // 2nd cross hop
        positions.push(Position::new(mid_x, -2.0 * HOP_SPACING)); // cross dest
    }
    Topology::new(format!("line-{hops}{}", if with_cross { "-cross" } else { "" }), positions)
}

/// The chain's end-to-end path.
pub fn main_path(hops: usize) -> Vec<NodeId> {
    (0..=hops as u32).map(NodeId::new).collect()
}

/// The 3-hop cross path through the chain's middle station.
pub fn cross_path(hops: usize) -> Vec<NodeId> {
    let base = hops as u32 + 1;
    let mid = (hops as u32) / 2;
    vec![NodeId::new(base), NodeId::new(mid), NodeId::new(base + 1), NodeId::new(base + 2)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_phy::PhyParams;

    #[test]
    fn chain_links_strong_ends_disconnected() {
        let p = PhyParams::paper_216();
        for hops in 2..=7 {
            let t = line(hops, false);
            for w in main_path(hops).windows(2) {
                assert!(p.link_delivery_probability(t.distance(w[0], w[1])) > 0.9);
            }
        }
        // 6+ hops: source and destination cannot hear each other.
        let t = line(6, false);
        let q = p.link_delivery_probability(t.distance(NodeId::new(0), NodeId::new(6)));
        assert!(q < 0.01, "30 m endpoints must be disconnected: {q}");
        assert!(p.sense_probability(t.distance(NodeId::new(0), NodeId::new(6))) < 0.1);
    }

    #[test]
    fn cross_path_intersects_the_chain() {
        for hops in 2..=7 {
            let t = line(hops, true);
            let cross = cross_path(hops);
            assert_eq!(cross.len(), 4, "3-hop cross flow");
            let mid = cross[1];
            assert!(mid.index() <= hops, "cross flow relays through a chain station");
            let p = PhyParams::paper_216();
            for w in cross.windows(2) {
                assert!(
                    p.link_delivery_probability(t.distance(w[0], w[1])) > 0.8,
                    "cross link {}-{} must be usable",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "2..=7")]
    fn out_of_range_hops_rejected() {
        let _ = line(8, false);
    }
}
