//! Station placements and route sets for every topology the paper
//! evaluates:
//!
//! * [`fig1`] — the 8-station multi-flow topology of Fig. 1 with the three
//!   predetermined route sets of Table II;
//! * [`collision`] — Fig. 5(a) (single cell, regular collisions) and
//!   Fig. 5(b) (hidden terminals);
//! * [`mod@line`] — the 2–7-hop line of Section IV-C, with its 3-hop cross
//!   flow;
//! * [`wigle`] — a synthetic stand-in for the Wigle AP map of Fig. 9
//!   (small diameter, flows 1–3 hops, plus two hidden stations S and R);
//! * [`roofnet`] — a synthetic stand-in for the MIT Roofnet map of Fig. 11
//!   (large sparse mesh; flows 3–5 hops with nearby hidden terminals);
//! * [`motion`] — time-varying positions: per-node trajectories (constant
//!   drift, waypoint schedules) that a mobile simulation samples on a fixed
//!   tick.
//!
//! The Wigle/Roofnet coordinate files are unavailable, so both are
//! deterministic synthetic placements with the same structural properties
//! the experiments rely on (see DESIGN.md, substitutions).
//!
//! Distances are calibrated against the shadowing model in `wmn-phy`:
//! ~5 m links deliver ≈96 % of frames, ~10 m ≈47 %, ~15 m ≈12 %, which
//! engineers the paper's premise that one-hop routing between flow
//! endpoints is inefficient while forwarder chains are reliable.

pub mod collision;
pub mod fig1;
pub mod line;
pub mod motion;
pub mod roofnet;
pub mod wigle;

use wmn_phy::Position;
use wmn_sim::NodeId;

pub use motion::{MotionPlan, NodePath, Waypoint};

/// A named topology: positions plus the flows an experiment will run on it.
///
/// # NodeId contract
///
/// `positions` defines the run's whole id namespace: [`NodeId`]s are **dense
/// indices starting at 0**, so node `i` lives at `positions[i]` and every id
/// handed to [`Topology::distance`] (or placed in a flow path) must be below
/// [`Topology::node_count`]. The hand-placed topologies in this crate and the
/// generators in `wmn_scengen` all emit dense placements; anything assembling
/// ids by hand (see [`path`]) owns keeping them in range.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable name (used in experiment output).
    pub name: String,
    /// Station placements; index = `NodeId` index.
    pub positions: Vec<Position>,
}

impl Topology {
    /// Creates a topology from a placement.
    pub fn new(name: impl Into<String>, positions: Vec<Position>) -> Self {
        Topology { name: name.into(), positions }
    }

    /// Number of stations.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Whether `id` refers to a station of this topology (ids are dense
    /// indices into the placement — see the NodeId contract above).
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.positions.len()
    }

    /// Distance in metres between two stations.
    ///
    /// # Panics
    ///
    /// Panics if either id violates the NodeId contract (out of range for
    /// this placement). Debug builds name the offending id and the topology;
    /// release builds hit the slice bounds check.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        debug_assert!(
            self.contains(a) && self.contains(b),
            "Topology::distance({a}, {b}): id outside the {}-station topology {:?} \
             (NodeIds must be dense indices into `positions`)",
            self.node_count(),
            self.name,
        );
        self.positions[a.index()].distance_to(self.positions[b.index()])
    }
}

/// Convenience conversion from raw u32 ids to a path of [`NodeId`]s.
///
/// The ids are taken verbatim: they must obey the target topology's NodeId
/// contract (dense indices below its node count) — this helper cannot check
/// that because it does not know the topology. Pair it with
/// [`Topology::contains`] or `wmn_netsim::Scenario::validate` when the ids
/// are not literals.
pub fn path(ids: &[u32]) -> Vec<NodeId> {
    ids.iter().map(|&i| NodeId::new(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_basics() {
        let t = Topology::new("t", vec![Position::new(0.0, 0.0), Position::new(3.0, 4.0)]);
        assert_eq!(t.node_count(), 2);
        assert!((t.distance(NodeId::new(0), NodeId::new(1)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn path_converts_ids() {
        assert_eq!(path(&[0, 2]), vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn contains_matches_the_dense_contract() {
        let t = Topology::new("t", vec![Position::new(0.0, 0.0), Position::new(3.0, 4.0)]);
        assert!(t.contains(NodeId::new(0)) && t.contains(NodeId::new(1)));
        assert!(!t.contains(NodeId::new(2)), "ids are dense: 2 stations end at n1");
    }

    /// Regression for the NodeId contract: a sparse id must fail loudly in
    /// `distance`, not silently read a neighbouring station's position.
    #[test]
    #[should_panic(expected = "NodeIds must be dense")]
    #[cfg(debug_assertions)]
    fn distance_rejects_out_of_range_ids() {
        let t = Topology::new("t", vec![Position::new(0.0, 0.0)]);
        let _ = t.distance(NodeId::new(0), NodeId::new(5));
    }
}
