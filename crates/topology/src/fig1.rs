//! The Fig. 1 multi-flow topology and the Table II route sets.
//!
//! Eight stations. Flow 1: 0→3, flow 2: 0→4, flow 3: 5→7. Flows 1 and 2
//! share stations 0, 1 and 2; flow 3 intersects the others at station 1.
//!
//! The placement is calibrated so that
//! * consecutive stations of ROUTE0 are strong (~5 m) links,
//! * the direct 0→3 link used by the figures' "S" (SPR) baseline is poor
//!   (~15 m, ≈12 % delivery) — reproducing the paper's premise that the
//!   one-hop route is inefficient (0.76 vs 7.04 Mbps),
//! * ROUTE2's longer hops (0→2, 5→1) are marginal, which is why the paper
//!   measures "significantly lower throughput … on ROUTE2".

use wmn_phy::Position;
use wmn_sim::NodeId;

use crate::{path, Topology};

/// Station placement for Fig. 1.
pub fn topology() -> Topology {
    Topology::new(
        "fig1",
        vec![
            Position::new(0.0, 0.0),  // 0: source of flows 1 and 2
            Position::new(5.0, 0.0),  // 1
            Position::new(8.0, 2.5),  // 2
            Position::new(12.4, 1.6), // 3: destination of flow 1
            Position::new(10.8, 5.2), // 4: destination of flow 2
            Position::new(0.2, 7.2),  // 5: source of flow 3
            Position::new(3.2, 4.5),  // 6
            Position::new(9.0, 1.5),  // 7: destination of flow 3
        ],
    )
}

/// One of the paper's predetermined route sets (Table II).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteSet {
    /// ROUTE0: 0 1 2 3 / 0 1 2 4 / 5 6 1 7.
    Route0,
    /// ROUTE1: 0 1 3 / 0 1 4 / 5 6 7.
    Route1,
    /// ROUTE2: 0 2 3 / 0 2 4 / 5 1 7.
    Route2,
}

impl RouteSet {
    /// All three sets, in paper order.
    pub const ALL: [RouteSet; 3] = [RouteSet::Route0, RouteSet::Route1, RouteSet::Route2];

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            RouteSet::Route0 => "ROUTE0",
            RouteSet::Route1 => "ROUTE1",
            RouteSet::Route2 => "ROUTE2",
        }
    }

    /// The Table II path for flow `flow` (1, 2 or 3), source to destination
    /// inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is not 1, 2 or 3.
    pub fn flow_path(self, flow: usize) -> Vec<NodeId> {
        match (self, flow) {
            (RouteSet::Route0, 1) => path(&[0, 1, 2, 3]),
            (RouteSet::Route0, 2) => path(&[0, 1, 2, 4]),
            (RouteSet::Route0, 3) => path(&[5, 6, 1, 7]),
            (RouteSet::Route1, 1) => path(&[0, 1, 3]),
            (RouteSet::Route1, 2) => path(&[0, 1, 4]),
            (RouteSet::Route1, 3) => path(&[5, 6, 7]),
            (RouteSet::Route2, 1) => path(&[0, 2, 3]),
            (RouteSet::Route2, 2) => path(&[0, 2, 4]),
            (RouteSet::Route2, 3) => path(&[5, 1, 7]),
            _ => panic!("Fig. 1 has flows 1..=3, got {flow}"),
        }
    }
}

/// Endpoints (source, destination) of the three flows.
pub fn flow_endpoints(flow: usize) -> (NodeId, NodeId) {
    match flow {
        1 => (NodeId::new(0), NodeId::new(3)),
        2 => (NodeId::new(0), NodeId::new(4)),
        3 => (NodeId::new(5), NodeId::new(7)),
        _ => panic!("Fig. 1 has flows 1..=3, got {flow}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_phy::PhyParams;

    #[test]
    fn table2_routes_match_paper() {
        assert_eq!(RouteSet::Route0.flow_path(1), path(&[0, 1, 2, 3]));
        assert_eq!(RouteSet::Route0.flow_path(3), path(&[5, 6, 1, 7]));
        assert_eq!(RouteSet::Route1.flow_path(2), path(&[0, 1, 4]));
        assert_eq!(RouteSet::Route2.flow_path(3), path(&[5, 1, 7]));
    }

    #[test]
    fn routes_start_and_end_at_flow_endpoints() {
        for set in RouteSet::ALL {
            for flow in 1..=3 {
                let p = set.flow_path(flow);
                let (src, dst) = flow_endpoints(flow);
                assert_eq!(*p.first().unwrap(), src, "{set:?} flow {flow}");
                assert_eq!(*p.last().unwrap(), dst, "{set:?} flow {flow}");
            }
        }
    }

    /// The calibration the whole Fig. 3/4 experiment depends on.
    #[test]
    fn link_quality_calibration() {
        let t = topology();
        let p = PhyParams::paper_216();
        let quality = |a: u32, b: u32| {
            p.link_delivery_probability(t.distance(NodeId::new(a), NodeId::new(b)))
        };
        // ROUTE0 hops are strong.
        for (a, b) in [(0, 1), (1, 2), (2, 3), (2, 4), (5, 6), (6, 1), (1, 7)] {
            assert!(quality(a, b) > 0.88, "link {a}-{b} should be strong: {}", quality(a, b));
        }
        // The direct 0→3 link (the "S" baseline) is poor.
        assert!(quality(0, 3) < 0.30, "direct 0-3 must be poor: {}", quality(0, 3));
        assert!(quality(0, 4) < 0.35, "direct 0-4 must be poor: {}", quality(0, 4));
        // ROUTE1's 1→3 hop and ROUTE2's long hops are marginal: usable but
        // clearly worse than ROUTE0's (the paper measures "significantly
        // lower throughput" on ROUTE2).
        for (a, b) in [(1, 3), (1, 4), (0, 2), (5, 1), (6, 7)] {
            let q = quality(a, b);
            assert!((0.45..0.92).contains(&q), "link {a}-{b} should be marginal: {q}");
        }
    }

    #[test]
    #[should_panic(expected = "flows 1..=3")]
    fn bad_flow_panics() {
        let _ = RouteSet::Route0.flow_path(4);
    }
}
