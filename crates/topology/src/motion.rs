//! Time-varying positions: per-node trajectories over a placement.
//!
//! A [`Topology`](crate::Topology) (or a `Scenario`'s `positions`) pins
//! where every station
//! sits at `t = 0`; a [`MotionPlan`] says how each of them moves from
//! there. Trajectories are *pure functions of time* — no randomness is
//! drawn while a simulation runs (generators in `wmn_scengen` draw all
//! their randomness up front when they expand a mobility spec into a
//! plan), so a mobile run consumes exactly the same RNG streams as a
//! static one and stays bit-reproducible per seed.
//!
//! The plan deliberately knows nothing about the radio model: the
//! simulation runner samples [`NodePath::position_at`] on a fixed tick and
//! pushes the new placements into `wmn_phy::Medium::update_node_position`,
//! which refreshes only the moved node's row and column of the link-state
//! matrix.

use wmn_phy::Position;
use wmn_sim::{SimDuration, SimTime};

/// One scheduled waypoint of a [`NodePath::Waypoints`] trajectory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Waypoint {
    /// When the node arrives at `pos` (simulation time).
    pub at: SimTime,
    /// Where it is at that instant.
    pub pos: Position,
}

/// The trajectory of one node, relative to its `t = 0` placement.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum NodePath {
    /// Stays at the initial placement for the whole run.
    #[default]
    Static,
    /// Constant-velocity drift away from the initial placement.
    Drift {
        /// Velocity along x, metres per second.
        vx_mps: f64,
        /// Velocity along y, metres per second.
        vy_mps: f64,
    },
    /// Piecewise-linear waypoint schedule: the node leaves its initial
    /// placement at `t = 0`, reaches each waypoint at its `at` instant
    /// (moving in a straight line between consecutive waypoints), and
    /// holds the last waypoint's position afterwards. Times must be
    /// strictly increasing and non-zero ([`NodePath::check`]).
    Waypoints(Vec<Waypoint>),
}

impl NodePath {
    /// Whether this path never leaves the initial placement.
    pub fn is_static(&self) -> bool {
        match self {
            NodePath::Static => true,
            NodePath::Drift { vx_mps, vy_mps } => *vx_mps == 0.0 && *vy_mps == 0.0,
            NodePath::Waypoints(points) => points.is_empty(),
        }
    }

    /// The node's position at `t`, given its `t = 0` placement.
    pub fn position_at(&self, origin: Position, t: SimTime) -> Position {
        match self {
            NodePath::Static => origin,
            NodePath::Drift { vx_mps, vy_mps } => {
                let secs = t.as_nanos() as f64 * 1e-9;
                Position::new(origin.x + vx_mps * secs, origin.y + vy_mps * secs)
            }
            NodePath::Waypoints(points) => {
                let mut from = Waypoint { at: SimTime::ZERO, pos: origin };
                for wp in points {
                    if t <= wp.at {
                        let span = (wp.at.as_nanos() - from.at.as_nanos()) as f64;
                        if span <= 0.0 {
                            return wp.pos;
                        }
                        let f = (t.as_nanos() - from.at.as_nanos()) as f64 / span;
                        return Position::new(
                            from.pos.x + (wp.pos.x - from.pos.x) * f,
                            from.pos.y + (wp.pos.y - from.pos.y) * f,
                        );
                    }
                    from = *wp;
                }
                from.pos
            }
        }
    }

    /// Structural sanity: finite velocities and coordinates, waypoint times
    /// strictly increasing and after `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        match self {
            NodePath::Static => Ok(()),
            NodePath::Drift { vx_mps, vy_mps } => {
                if vx_mps.is_finite() && vy_mps.is_finite() {
                    Ok(())
                } else {
                    Err(format!("drift velocity ({vx_mps}, {vy_mps}) must be finite"))
                }
            }
            NodePath::Waypoints(points) => {
                let mut last = SimTime::ZERO;
                for (i, wp) in points.iter().enumerate() {
                    if wp.at <= last {
                        return Err(format!(
                            "waypoint {i} at {:?} does not advance past {:?} \
                             (times must be strictly increasing, starting after t = 0)",
                            wp.at, last
                        ));
                    }
                    if !(wp.pos.x.is_finite() && wp.pos.y.is_finite()) {
                        return Err(format!("waypoint {i} position {} is not finite", wp.pos));
                    }
                    last = wp.at;
                }
                Ok(())
            }
        }
    }
}

/// How often a mobile simulation re-samples positions when no interval is
/// set explicitly (100 ms: fast enough that a pedestrian-speed node moves
/// well under a metre between refreshes).
pub const DEFAULT_MOTION_TICK: SimDuration = SimDuration::from_millis(100);

/// Per-node trajectories for a whole placement.
///
/// `paths[i]` belongs to node `i` (the dense NodeId contract); nodes beyond
/// the vector's length are static, so the empty default plan — what every
/// pre-mobility scenario uses — moves nothing, schedules nothing, and is
/// byte-for-byte equivalent to the static simulator.
#[derive(Clone, Debug, PartialEq)]
pub struct MotionPlan {
    /// Per-node paths, indexed by `NodeId`; missing tail entries are static.
    pub paths: Vec<NodePath>,
    /// How often the runner re-samples positions and refreshes the medium.
    /// Ignored when the plan is static.
    pub tick: SimDuration,
}

impl Default for MotionPlan {
    fn default() -> Self {
        MotionPlan { paths: Vec::new(), tick: DEFAULT_MOTION_TICK }
    }
}

impl MotionPlan {
    /// Whether every node stays put (an empty plan is static).
    pub fn is_static(&self) -> bool {
        self.paths.iter().all(NodePath::is_static)
    }

    /// The path of `node` (static beyond the vector's length).
    pub fn path(&self, node: usize) -> &NodePath {
        static STATIC: NodePath = NodePath::Static;
        self.paths.get(node).unwrap_or(&STATIC)
    }

    /// Structural sanity against a placement of `node_count` stations: no
    /// paths for out-of-range nodes, every path well-formed, and a positive
    /// tick whenever anything actually moves.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn check(&self, node_count: usize) -> Result<(), String> {
        if self.paths.len() > node_count {
            return Err(format!(
                "motion plan has {} paths for a {node_count}-station placement",
                self.paths.len()
            ));
        }
        for (i, path) in self.paths.iter().enumerate() {
            path.check().map_err(|msg| format!("node {i}: {msg}"))?;
        }
        if !self.is_static() && self.tick == SimDuration::ZERO {
            return Err("a moving plan needs a positive tick".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_millis(s * 1000)
    }

    #[test]
    fn static_path_never_moves() {
        let origin = Position::new(3.0, 4.0);
        assert_eq!(NodePath::Static.position_at(origin, secs(1000)), origin);
        assert!(NodePath::Static.is_static());
    }

    #[test]
    fn drift_is_linear_in_time() {
        let path = NodePath::Drift { vx_mps: 2.0, vy_mps: -1.0 };
        let origin = Position::new(10.0, 10.0);
        assert_eq!(path.position_at(origin, SimTime::ZERO), origin);
        let p = path.position_at(origin, secs(5));
        assert!((p.x - 20.0).abs() < 1e-9 && (p.y - 5.0).abs() < 1e-9);
        assert!(!path.is_static());
        assert!(NodePath::Drift { vx_mps: 0.0, vy_mps: 0.0 }.is_static());
    }

    #[test]
    fn waypoints_interpolate_and_hold() {
        let path = NodePath::Waypoints(vec![
            Waypoint { at: secs(10), pos: Position::new(10.0, 0.0) },
            Waypoint { at: secs(20), pos: Position::new(10.0, 20.0) },
        ]);
        let origin = Position::new(0.0, 0.0);
        assert_eq!(path.position_at(origin, SimTime::ZERO), origin);
        let mid = path.position_at(origin, secs(5));
        assert!((mid.x - 5.0).abs() < 1e-9 && mid.y.abs() < 1e-9, "halfway up the first leg");
        let at_first = path.position_at(origin, secs(10));
        assert!((at_first.x - 10.0).abs() < 1e-9 && at_first.y.abs() < 1e-9);
        let second = path.position_at(origin, secs(15));
        assert!((second.x - 10.0).abs() < 1e-9 && (second.y - 10.0).abs() < 1e-9);
        let held = path.position_at(origin, secs(1000));
        assert_eq!(held, Position::new(10.0, 20.0), "position holds after the last waypoint");
    }

    #[test]
    fn path_check_rejects_malformed_trajectories() {
        assert!(NodePath::Drift { vx_mps: f64::NAN, vy_mps: 0.0 }.check().is_err());
        let backwards = NodePath::Waypoints(vec![
            Waypoint { at: secs(10), pos: Position::new(1.0, 0.0) },
            Waypoint { at: secs(5), pos: Position::new(2.0, 0.0) },
        ]);
        assert!(backwards.check().unwrap_err().contains("strictly increasing"));
        let at_zero =
            NodePath::Waypoints(vec![Waypoint { at: SimTime::ZERO, pos: Position::new(1.0, 0.0) }]);
        assert!(at_zero.check().is_err(), "a waypoint at t = 0 conflicts with the placement");
        let bad_pos = NodePath::Waypoints(vec![Waypoint {
            at: secs(1),
            pos: Position::new(f64::INFINITY, 0.0),
        }]);
        assert!(bad_pos.check().unwrap_err().contains("finite"));
    }

    #[test]
    fn default_plan_is_static_and_checks_clean() {
        let plan = MotionPlan::default();
        assert!(plan.is_static());
        assert_eq!(plan.check(0), Ok(()));
        assert_eq!(plan.check(5), Ok(()));
        assert_eq!(*plan.path(3), NodePath::Static, "paths beyond the vector are static");
    }

    #[test]
    fn plan_check_enforces_placement_bounds_and_tick() {
        let mut plan = MotionPlan {
            paths: vec![NodePath::Static, NodePath::Drift { vx_mps: 1.0, vy_mps: 0.0 }],
            ..MotionPlan::default()
        };
        assert_eq!(plan.check(2), Ok(()));
        assert!(plan.check(1).unwrap_err().contains("2 paths"), "more paths than stations");
        plan.tick = SimDuration::ZERO;
        assert!(plan.check(2).unwrap_err().contains("positive tick"));
        // A fully static plan tolerates a zero tick (it is never consulted).
        plan.paths[1] = NodePath::Static;
        assert_eq!(plan.check(2), Ok(()));
    }

    #[test]
    fn mixed_plan_reports_motion() {
        let plan = MotionPlan {
            paths: vec![
                NodePath::Static,
                NodePath::Waypoints(vec![Waypoint { at: secs(1), pos: Position::new(5.0, 5.0) }]),
            ],
            ..MotionPlan::default()
        };
        assert!(!plan.is_static());
        assert!(!plan.path(1).is_static());
        assert!(plan.path(0).is_static());
    }
}
