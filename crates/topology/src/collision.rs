//! The Fig. 5 collision topologies.
//!
//! * **Regular collisions** (Fig. 5a): all stations within communication
//!   range of each other — contention losses come from simultaneous backoff
//!   expiry, not hidden terminals.
//! * **Hidden collisions** (Fig. 5b): flow 1 runs over a 3-hop chain; the
//!   sources of flows 2–10 are placed beyond carrier-sense range of flow
//!   1's source but within interference range of its downstream forwarders
//!   and destination, so their (saturated) traffic collides with flow 1
//!   invisibly.

use wmn_phy::Position;
use wmn_sim::NodeId;

use crate::Topology;

/// Fig. 5(a): `n_flows` source/destination pairs packed in one cell.
/// Node `2i` is the source and `2i+1` the destination of flow `i`.
pub fn single_cell(n_flows: usize) -> Topology {
    assert!(n_flows >= 1, "at least one flow");
    let mut positions = Vec::with_capacity(2 * n_flows);
    // Pairs on a small circle: every station hears every other.
    for i in 0..n_flows {
        let angle = i as f64 / n_flows as f64 * std::f64::consts::TAU;
        let (s, c) = angle.sin_cos();
        positions.push(Position::new(2.0 * c, 2.0 * s)); // source
        positions.push(Position::new(2.0 * c + 1.5, 2.0 * s)); // destination
    }
    Topology::new(format!("cell-{n_flows}"), positions)
}

/// Source/destination node ids of flow `i` in [`single_cell`].
pub fn cell_flow_endpoints(i: usize) -> (NodeId, NodeId) {
    (NodeId::new(2 * i as u32), NodeId::new(2 * i as u32 + 1))
}

/// Fig. 5(b): flow 1's chain is 0→1→2→3 (5 m hops). Hidden flow `k`
/// (0-based, up to 8) has its source at node `4+2k` and destination at
/// `5+2k`, placed ~27 m from station 0 (rarely sensed) but within range of
/// stations 2, 3.
pub fn hidden_terminals(n_hidden: usize) -> Topology {
    assert!(n_hidden <= 9, "the paper uses up to 9 hidden flows");
    let mut positions = vec![
        Position::new(0.0, 0.0),
        Position::new(5.0, 0.0),
        Position::new(10.0, 0.0),
        Position::new(15.0, 0.0),
    ];
    for k in 0..n_hidden {
        // Hidden sources fan out beyond the destination: ~29.5 m from the
        // flow-1 source (rarely sensed there) and ~15 m from its
        // destination, where their frames are sensed roughly half the time
        // — partial interference, so throughput declines gradually with
        // hidden load instead of collapsing at the first hidden flow.
        let y = (k as f64 - (n_hidden as f64 - 1.0) / 2.0) * 2.5;
        positions.push(Position::new(29.5, y)); // hidden source
        positions.push(Position::new(33.0, y)); // its destination
    }
    Topology::new(format!("hidden-{n_hidden}"), positions)
}

/// Flow 1's chain in [`hidden_terminals`].
pub fn hidden_main_path() -> Vec<NodeId> {
    crate::path(&[0, 1, 2, 3])
}

/// Source/destination of hidden flow `k` (0-based) in [`hidden_terminals`].
pub fn hidden_flow_endpoints(k: usize) -> (NodeId, NodeId) {
    (NodeId::new(4 + 2 * k as u32), NodeId::new(5 + 2 * k as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_phy::PhyParams;

    #[test]
    fn cell_is_fully_connected() {
        let t = single_cell(10);
        let p = PhyParams::paper_216();
        for a in 0..t.node_count() {
            for b in 0..t.node_count() {
                if a == b {
                    continue;
                }
                let q = p.link_delivery_probability(
                    t.distance(NodeId::new(a as u32), NodeId::new(b as u32)),
                );
                assert!(q > 0.85, "cell stations must all hear each other: {a}-{b} {q}");
            }
        }
    }

    #[test]
    fn hidden_sources_are_hidden_from_flow1_source_but_interfere_downstream() {
        let t = hidden_terminals(9);
        let p = PhyParams::paper_216();
        for k in 0..9 {
            let (hs, hd) = hidden_flow_endpoints(k);
            // Rarely sensed by station 0…
            let sense_at_source = p.sense_probability(t.distance(NodeId::new(0), hs));
            assert!(sense_at_source < 0.3, "hidden source {k} too audible: {sense_at_source}");
            // …but partially inside the destination's interference range.
            let sense_at_dest = p.sense_probability(t.distance(NodeId::new(3), hs));
            assert!(
                (0.2..0.9).contains(&sense_at_dest),
                "hidden source {k} should interfere at station 3 part-time: {sense_at_dest}"
            );
            // And each hidden pair is a good link.
            let pair = p.link_delivery_probability(t.distance(hs, hd));
            assert!(pair > 0.9, "hidden pair {k} must be a clean link: {pair}");
        }
    }

    #[test]
    fn main_chain_is_strong() {
        let t = hidden_terminals(0);
        let p = PhyParams::paper_216();
        let chain = hidden_main_path();
        for w in chain.windows(2) {
            let q = p.link_delivery_probability(t.distance(w[0], w[1]));
            assert!(q > 0.9);
        }
    }

    #[test]
    #[should_panic(expected = "up to 9")]
    fn too_many_hidden_flows_rejected() {
        let _ = hidden_terminals(10);
    }
}
