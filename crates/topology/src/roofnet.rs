//! A synthetic stand-in for the MIT Roofnet topology of Fig. 11.
//!
//! The paper derives a large sparse mesh from the Roofnet GPS coordinate
//! file and measures flows whose endpoints are 3–5 hops apart, with two
//! nearby stations acting as hidden terminals per flow. The coordinate
//! file is offline, so this module generates a deterministic jittered-grid
//! placement with the same structural properties (documented in DESIGN.md);
//! the tests pin down that 3/4/5-hop pairs exist and that hidden pairs can
//! be selected near each destination.

use wmn_phy::{PhyParams, Position};
use wmn_routing::LinkGraph;
use wmn_sim::{NodeId, StreamRng};

use crate::Topology;

/// Grid side: 6×6 = 36 stations, comparable to Roofnet's connected core.
pub const GRID_SIDE: usize = 6;
/// Grid spacing in metres (strong-ish links between neighbours).
pub const GRID_SPACING: f64 = 5.5;

/// Deterministic jittered-grid placement (the jitter stream is fixed, so
/// every build sees the same "Roofnet").
pub fn topology() -> Topology {
    let mut rng = StreamRng::derive(0xF00F, "roofnet-jitter");
    let mut positions = Vec::with_capacity(GRID_SIDE * GRID_SIDE);
    for row in 0..GRID_SIDE {
        for col in 0..GRID_SIDE {
            let jx = (rng.uniform() - 0.5) * 2.2;
            let jy = (rng.uniform() - 0.5) * 2.2;
            positions.push(Position::new(
                col as f64 * GRID_SPACING + jx,
                row as f64 * GRID_SPACING + jy,
            ));
        }
    }
    Topology::new("roofnet", positions)
}

/// The ETX link graph of the synthetic Roofnet under `params`.
pub fn link_graph(params: &PhyParams) -> LinkGraph {
    LinkGraph::from_placement(params, &topology().positions)
}

/// Finds up to `count` station pairs exactly `hops` ETX-hops apart,
/// scanning deterministically. Used to pick Fig. 12's `3(1)`, `3(2)`, …
/// flows.
pub fn pairs_with_hops(graph: &LinkGraph, hops: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    let n = graph.node_count();
    let mut out = Vec::new();
    'outer: for a in 0..n {
        for b in (a + 1)..n {
            let (src, dst) = (NodeId::new(a as u32), NodeId::new(b as u32));
            if graph.hop_count(src, dst) == Some(hops) {
                // Spread the picks: avoid reusing an endpoint.
                if out
                    .iter()
                    .all(|&(s, d): &(NodeId, NodeId)| s != src && d != dst && s != dst && d != src)
                {
                    out.push((src, dst));
                    if out.len() == count {
                        break 'outer;
                    }
                }
            }
        }
    }
    out
}

/// Picks a hidden-terminal pair for a flow: a station near the destination
/// (interference range) but far from the source, plus that station's
/// nearest neighbour as its traffic sink. Mirrors the paper's "two more
/// nearby stations are selected to act as the hidden terminals".
pub fn pick_hidden_pair(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    exclude: &[NodeId],
) -> Option<(NodeId, NodeId)> {
    let n = topo.node_count();
    let candidates: Vec<NodeId> = (0..n)
        .map(|i| NodeId::new(i as u32))
        .filter(|&x| x != src && x != dst && !exclude.contains(&x))
        .collect();
    // Hidden source: close to the destination, far from the source.
    // `total_cmp` keeps the selection total (and deterministic) even if a
    // distance were ever NaN — a panic in a topology helper is the wrong
    // failure mode for bad coordinates.
    let hidden_src = candidates
        .iter()
        .copied()
        .filter(|&x| topo.distance(x, dst) < 9.0 && topo.distance(x, src) > 14.0)
        .min_by(|&a, &b| topo.distance(a, dst).total_cmp(&topo.distance(b, dst)))?;
    // Its sink: the nearest remaining station.
    let hidden_dst =
        candidates.iter().copied().filter(|&x| x != hidden_src).min_by(|&a, &b| {
            topo.distance(a, hidden_src).total_cmp(&topo.distance(b, hidden_src))
        })?;
    Some((hidden_src, hidden_dst))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let a = topology();
        let b = topology();
        for i in 0..a.node_count() {
            assert_eq!(a.positions[i], b.positions[i]);
        }
        assert_eq!(a.node_count(), 36);
    }

    #[test]
    fn pairs_exist_for_3_4_5_hops() {
        let g = link_graph(&PhyParams::paper_216());
        for hops in 3..=5 {
            let pairs = pairs_with_hops(&g, hops, 2);
            assert_eq!(pairs.len(), 2, "need two {hops}-hop test pairs (Fig. 12 labels)");
            for (s, d) in pairs {
                assert_eq!(g.hop_count(s, d), Some(hops));
            }
        }
    }

    #[test]
    fn hidden_pairs_selectable_for_long_flows() {
        let t = topology();
        let g = link_graph(&PhyParams::paper_216());
        let mut found = 0;
        for (s, d) in pairs_with_hops(&g, 4, 2) {
            let path = g.shortest_path(s, d).unwrap();
            if let Some((hs, hd)) = pick_hidden_pair(&t, s, d, &path) {
                found += 1;
                assert!(t.distance(hs, d) < 9.0, "hidden source interferes at destination");
                assert!(t.distance(hs, s) > 14.0, "hidden source far from flow source");
                assert!(t.distance(hs, hd) < 9.0, "hidden pair is a usable link");
            }
        }
        assert!(found >= 1, "at least one 4-hop flow must admit a hidden pair");
    }
}
