//! The preExOR and MCExOR opportunistic MACs (Section II of the paper).
//!
//! Both schemes transmit each data packet with an in-frame priority list
//! (destination first). Receivers on the list acknowledge:
//!
//! * **preExOR** — *every* list member that decoded the packet sends a MAC
//!   ACK in its own sequential slot (`SIFS + rank·(T_ack + SIFS)` after the
//!   data frame), so a transmission with `m` list members costs up to `m`
//!   ACK slots.
//! * **MCExOR** — a list member of rank `i` waits `(i+1)·SIFS`; if it hears
//!   an ACK start during the wait it suppresses its own, so only the best
//!   receiver acknowledges.
//!
//! In both, the best receiver *caches* the packet and contends for the
//! channel (DIFS + backoff) to relay it with a truncated priority list.
//! That contention races with the source's next packet — the mechanism that
//! re-orders 26–28 % of TCP packets in the paper's measurement and
//! motivates RIPPLE's mTXOP design.
//!
//! Retransmission is per-hop: the transmitter retries (CW doubling) until
//! it hears any ACK for the frame or exhausts the retry limit.

use std::collections::{BTreeMap, BTreeSet};

use wmn_mac::frame::{
    AckFrame, DataFrame, Frame, LinkDst, NodeList, Packet, RouteInfo, RxFrame, Subframe,
};
use wmn_mac::{
    ActionSink, Backoff, DropReason, FramePool, IfQueue, MacAction, MacEntity, MacStats, RateClass,
    TimerToken,
};
use wmn_phy::PhyParams;
use wmn_sim::{FlowId, NodeId, SimDuration, SimTime, StreamRng};

use wmn_mac::frame::ACK_BYTES;

/// Which acknowledgement discipline the MAC runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExorMode {
    /// Sequential per-member ACK slots (the early ExOR of Biswas & Morris).
    PreExor,
    /// Compressed, suppression-based ACKs (Zubow et al.).
    McExor,
}

/// Configuration shared by both modes.
#[derive(Clone, Debug)]
pub struct ExorConfig {
    /// Short interframe space.
    pub sifs: SimDuration,
    /// Slot time.
    pub slot: SimDuration,
    /// DIFS.
    pub difs: SimDuration,
    /// Minimum contention window.
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// Per-hop retry limit.
    pub retry_limit: u8,
    /// Interface queue capacity.
    pub ifq_capacity: usize,
    /// Complete ACK airtime (PHY header + payload at basic rate).
    pub t_ack: SimDuration,
    /// Extra slack added to ACK-window timeouts.
    pub timeout_margin: SimDuration,
}

impl ExorConfig {
    /// Derives the configuration from PHY parameters.
    pub fn from_phy(params: &PhyParams) -> Self {
        ExorConfig {
            sifs: params.sifs,
            slot: params.slot,
            difs: params.difs(),
            cw_min: params.cw_min,
            cw_max: params.cw_max,
            retry_limit: params.retry_limit,
            ifq_capacity: params.ifq_capacity,
            t_ack: params.airtime(params.basic_rate, ACK_BYTES),
            timeout_margin: SimDuration::from_micros(15),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DataState {
    Idle,
    Transmitting,
    WaitAck,
}

#[derive(Debug)]
struct Inflight {
    seq: u32,
    packet: Packet,
    list: NodeList,
    retries: u8,
    frame_seq: u64,
}

#[derive(Debug)]
struct QItem {
    seq: u32,
    packet: Packet,
    list: NodeList,
}

#[derive(Debug)]
struct Pending {
    seq: u32,
    packet: Packet,
    list: NodeList,
    my_rank: usize,
    flow: FlowId,
    data_tx: NodeId,
    frame_seq: u64,
    heard_higher: bool,
    /// First time this node sees this (flow, src, seq): eligible to relay.
    fresh: bool,
}

#[derive(Debug)]
enum Role {
    BackoffDone,
    AckTimeout,
    /// Fire the ACK for a pending reception; `key` indexes `pending`.
    SendAck {
        key: (NodeId, u64),
    },
    /// preExOR end-of-window relay decision.
    RelayDecision {
        key: (NodeId, u64),
    },
}

/// The preExOR / MCExOR MAC state machine for one station.
pub struct ExorMac {
    mode: ExorMode,
    cfg: ExorConfig,
    node: NodeId,
    q: IfQueue,
    relay_q: Vec<QItem>,
    inflight: Option<Inflight>,
    data_state: DataState,
    ack_tx_in_progress: bool,
    channel_busy: bool,
    idle_since: SimTime,
    backoff: Backoff,
    armed_backoff: Option<TimerToken>,
    countdown_anchor: SimTime,
    armed_ack_timeout: Option<TimerToken>,
    timer_roles: BTreeMap<u64, Role>,
    next_token: u64,
    pending: BTreeMap<(NodeId, u64), Pending>,
    seen: BTreeMap<(FlowId, NodeId), BTreeSet<u32>>,
    seq_counters: BTreeMap<(FlowId, NodeId), u32>,
    frame_seq_counter: u64,
    pool: FramePool,
    rng: StreamRng,
    stats: MacStats,
}

impl std::fmt::Debug for ExorMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExorMac")
            .field("mode", &self.mode)
            .field("node", &self.node)
            .field("state", &self.data_state)
            .finish()
    }
}

impl ExorMac {
    /// Creates the MAC for `node` in the given acknowledgement mode.
    pub fn new(mode: ExorMode, cfg: ExorConfig, node: NodeId, rng: StreamRng) -> Self {
        let (cw_min, cw_max, ifq) = (cfg.cw_min, cfg.cw_max, cfg.ifq_capacity);
        ExorMac {
            mode,
            cfg,
            node,
            q: IfQueue::new(ifq),
            relay_q: Vec::new(),
            inflight: None,
            data_state: DataState::Idle,
            ack_tx_in_progress: false,
            channel_busy: false,
            idle_since: SimTime::ZERO,
            backoff: Backoff::new(cw_min, cw_max),
            armed_backoff: None,
            countdown_anchor: SimTime::ZERO,
            armed_ack_timeout: None,
            timer_roles: BTreeMap::new(),
            next_token: 0,
            pending: BTreeMap::new(),
            seen: BTreeMap::new(),
            seq_counters: BTreeMap::new(),
            frame_seq_counter: 0,
            pool: FramePool::default(),
            rng,
            stats: MacStats::default(),
        }
    }

    /// The acknowledgement discipline this MAC runs.
    pub fn mode(&self) -> ExorMode {
        self.mode
    }

    fn mint(&mut self, role: Role) -> TimerToken {
        let token = TimerToken(self.next_token);
        self.next_token += 1;
        self.timer_roles.insert(token.0, role);
        token
    }

    fn next_seq(&mut self, flow: FlowId, src: NodeId) -> u32 {
        let c = self.seq_counters.entry((flow, src)).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    fn radio_free(&self) -> bool {
        self.data_state != DataState::Transmitting && !self.ack_tx_in_progress
    }

    fn has_work(&self) -> bool {
        self.inflight.is_some() || !self.q.is_empty() || !self.relay_q.is_empty()
    }

    /// The ACK wait of list rank `i` after the data frame ends.
    fn ack_offset(&self, rank: usize) -> SimDuration {
        match self.mode {
            ExorMode::PreExor => self.cfg.sifs + (self.cfg.t_ack + self.cfg.sifs) * rank as u64,
            ExorMode::McExor => self.cfg.sifs * (rank as u64 + 1),
        }
    }

    /// Sender-side ACK window for a list of `m` members (timeout measured
    /// from the end of the data transmission).
    fn ack_window(&self, m: usize) -> SimDuration {
        let last = match self.mode {
            ExorMode::PreExor => self.ack_offset(m.saturating_sub(1)) + self.cfg.t_ack,
            ExorMode::McExor => self.ack_offset(m.saturating_sub(1)) + self.cfg.t_ack,
        };
        last + self.cfg.timeout_margin
    }

    fn try_progress(&mut self, now: SimTime, out: &mut ActionSink) {
        if self.data_state != DataState::Idle || !self.radio_free() || !self.has_work() {
            return;
        }
        if self.channel_busy {
            return;
        }
        let idle_for = now.saturating_since(self.idle_since);
        if self.backoff.remaining().is_none() && idle_for >= self.cfg.difs {
            self.transmit_data(out);
            return;
        }
        self.arm_backoff(now, out);
    }

    fn arm_backoff(&mut self, now: SimTime, out: &mut ActionSink) {
        if self.armed_backoff.is_some() || self.channel_busy {
            return;
        }
        let remaining = self.backoff.ensure_drawn(&mut self.rng);
        let boundary = self.idle_since + self.cfg.difs;
        let start = if boundary > now { boundary } else { now };
        self.countdown_anchor = start;
        let fire_at = start + self.cfg.slot * u64::from(remaining);
        let token = self.mint(Role::BackoffDone);
        self.armed_backoff = Some(token);
        out.push(MacAction::SetTimer { delay: fire_at.saturating_since(now), token });
    }

    fn disarm_backoff(&mut self, now: SimTime) {
        if let Some(token) = self.armed_backoff.take() {
            self.timer_roles.remove(&token.0);
            let idle = now.saturating_since(self.countdown_anchor);
            self.backoff.consume_idle(idle, self.cfg.slot);
        }
    }

    fn next_outgoing(&mut self) -> Option<(u32, Packet, NodeList)> {
        // Relays first: they carry packets already mid-path.
        if !self.relay_q.is_empty() {
            let item = self.relay_q.remove(0);
            return Some((item.seq, item.packet, item.list));
        }
        let qp = self.q.pop()?;
        let RouteInfo::Opportunistic { list } = qp.route else {
            panic!("ExOR-family MACs require opportunistic routes");
        };
        let seq = self.next_seq(qp.packet.header.flow, qp.packet.header.src);
        Some((seq, qp.packet, list))
    }

    fn transmit_data(&mut self, out: &mut ActionSink) {
        self.backoff.clear();
        if self.inflight.is_none() {
            let Some((seq, packet, list)) = self.next_outgoing() else { return };
            self.inflight = Some(Inflight { seq, packet, list, retries: 0, frame_seq: 0 });
        }
        self.frame_seq_counter += 1;
        let fs = self.frame_seq_counter;
        // Pooled subframe vector + by-reference packet body: each
        // (re)transmission attempt is allocation-free at steady state.
        let mut subframes = self.pool.mint_subframes();
        let inflight = self.inflight.as_mut().expect("just set");
        inflight.frame_seq = fs;
        subframes.push(Subframe {
            seq: inflight.seq,
            packet: inflight.packet.clone(),
            corrupted: false,
        });
        let frame = DataFrame {
            transmitter: self.node,
            link_dst: LinkDst::Opportunistic { list: inflight.list.clone() },
            flow: inflight.packet.header.flow,
            src: inflight.packet.header.src,
            dst: inflight.packet.header.dst,
            frame_seq: fs,
            subframes,
            retry: inflight.retries,
        };
        self.data_state = DataState::Transmitting;
        self.stats.data_frames_sent += 1;
        out.push(MacAction::StartTx { frame: Frame::Data(frame), rate: RateClass::Data });
    }

    fn handle_data_frame(&mut self, d: &DataFrame, _now: SimTime, out: &mut ActionSink) {
        let LinkDst::Opportunistic { list } = &d.link_dst else {
            return; // unicast frames belong to other MACs
        };
        let Some(my_rank) = list.iter().position(|&n| n == self.node) else {
            return; // not on the candidate list
        };
        let Some(sf) = d.subframes.first() else { return };
        if sf.corrupted {
            return; // payload CRC failed; nothing to acknowledge
        }
        self.stats.data_frames_received += 1;
        let key_flow = (sf.packet.header.flow, sf.packet.header.src);
        let fresh = self.seen.entry(key_flow).or_default().insert(sf.seq);

        if my_rank == 0 {
            // We are the destination: deliver immediately (no reordering
            // buffer — preExOR/MCExOR deliver as received, which is the
            // behaviour the paper measures).
            if fresh {
                self.stats.delivered_up += 1;
                out.push(MacAction::Deliver { packet: sf.packet.clone() });
            }
        }

        let key = (d.transmitter, d.frame_seq);
        self.pending.insert(
            key,
            Pending {
                seq: sf.seq,
                packet: sf.packet.clone(),
                list: list.clone(),
                my_rank,
                flow: d.flow,
                data_tx: d.transmitter,
                frame_seq: d.frame_seq,
                heard_higher: false,
                fresh,
            },
        );
        let token = self.mint(Role::SendAck { key });
        out.push(MacAction::SetTimer { delay: self.ack_offset(my_rank), token });
        if self.mode == ExorMode::PreExor && my_rank > 0 {
            let token = self.mint(Role::RelayDecision { key });
            out.push(MacAction::SetTimer { delay: self.ack_window(list.len()), token });
        }
    }

    fn handle_ack_frame(&mut self, a: &AckFrame, now: SimTime, out: &mut ActionSink) {
        // Sender side: does this acknowledge our inflight frame?
        if a.to == self.node && self.data_state == DataState::WaitAck {
            if let Some(inflight) = self.inflight.as_ref() {
                if inflight.frame_seq == a.frame_seq {
                    self.stats.acks_received += 1;
                    if let Some(token) = self.armed_ack_timeout.take() {
                        self.timer_roles.remove(&token.0);
                    }
                    self.inflight = None;
                    self.data_state = DataState::Idle;
                    self.backoff.on_success();
                    self.backoff.draw(&mut self.rng);
                    self.try_progress(now, out);
                }
            }
        }
        // Receiver side: a higher-priority member may have acknowledged a
        // frame we are still holding.
        if let Some(p) = self.pending.get_mut(&(a.to, a.frame_seq)) {
            if let Some(rank) = p.list.iter().position(|&n| n == a.transmitter) {
                if rank < p.my_rank {
                    p.heard_higher = true;
                }
            }
        }
    }

    fn fire_send_ack(&mut self, key: (NodeId, u64), now: SimTime, out: &mut ActionSink) {
        let Some(p) = self.pending.get(&key) else { return };
        let suppressed = self.mode == ExorMode::McExor && p.heard_higher;
        if suppressed {
            self.pending.remove(&key);
            return;
        }
        let ack = AckFrame {
            transmitter: self.node,
            to: p.data_tx,
            flow: p.flow,
            frame_seq: p.frame_seq,
            acked_seqs: [(p.flow, p.seq)].as_slice().into(),
            relay_list: NodeList::new(),
        };
        if self.radio_free() {
            self.ack_tx_in_progress = true;
            self.stats.ack_frames_sent += 1;
            out.push(MacAction::StartTx { frame: Frame::Ack(ack), rate: RateClass::Basic });
        }
        // MCExOR: the acknowledging member is the relay; adopt immediately.
        if self.mode == ExorMode::McExor {
            let p = self.pending.remove(&key).expect("present");
            if p.my_rank > 0 && p.fresh {
                let list = NodeList::from(&p.list[..p.my_rank]);
                self.relay_q.push(QItem { seq: p.seq, packet: p.packet, list });
                self.try_progress(now, out);
            }
        }
        // preExOR keeps `pending` until the window-end relay decision.
    }

    fn fire_relay_decision(&mut self, key: (NodeId, u64), now: SimTime, out: &mut ActionSink) {
        let Some(p) = self.pending.remove(&key) else { return };
        if p.my_rank > 0 && p.fresh && !p.heard_higher {
            let list = NodeList::from(&p.list[..p.my_rank]);
            self.relay_q.push(QItem { seq: p.seq, packet: p.packet, list });
            self.try_progress(now, out);
        }
    }

    fn handle_ack_timeout(&mut self, now: SimTime, out: &mut ActionSink) {
        self.armed_ack_timeout = None;
        if self.data_state != DataState::WaitAck {
            return;
        }
        self.stats.timeouts += 1;
        self.data_state = DataState::Idle;
        self.backoff.on_failure();
        let drop = {
            let inflight = self.inflight.as_mut().expect("timeout without inflight");
            inflight.retries += 1;
            inflight.retries > self.cfg.retry_limit
        };
        if drop {
            let dead = self.inflight.take().expect("present");
            self.stats.drops_retry_limit += 1;
            out.push(MacAction::Drop { packet: dead.packet, reason: DropReason::RetryLimit });
            self.backoff.on_success();
        }
        self.backoff.draw(&mut self.rng);
        self.try_progress(now, out);
    }
}

impl MacEntity for ExorMac {
    fn on_enqueue(&mut self, packet: Packet, route: RouteInfo, now: SimTime, out: &mut ActionSink) {
        if let Some(rejected) = self.q.push(packet, route) {
            self.stats.drops_queue_full += 1;
            out.push(MacAction::Drop { packet: rejected, reason: DropReason::QueueFull });
            return;
        }
        self.try_progress(now, out);
    }

    fn on_busy(&mut self, now: SimTime, _out: &mut ActionSink) {
        self.channel_busy = true;
        self.disarm_backoff(now);
    }

    fn on_idle(&mut self, now: SimTime, out: &mut ActionSink) {
        self.channel_busy = false;
        self.idle_since = now;
        if self.data_state == DataState::Idle && self.radio_free() && self.has_work() {
            self.arm_backoff(now, out);
        }
    }

    fn on_frame_rx(&mut self, frame: RxFrame, now: SimTime, out: &mut ActionSink) {
        match &*frame {
            Frame::Data(d) => self.handle_data_frame(d, now, out),
            Frame::Ack(a) => self.handle_ack_frame(a, now, out),
        }
    }

    fn on_tx_end(&mut self, now: SimTime, out: &mut ActionSink) {
        if self.ack_tx_in_progress {
            self.ack_tx_in_progress = false;
            self.try_progress(now, out);
        } else if self.data_state == DataState::Transmitting {
            self.data_state = DataState::WaitAck;
            let m = self.inflight.as_ref().map(|i| i.list.len()).unwrap_or(1);
            let token = self.mint(Role::AckTimeout);
            self.armed_ack_timeout = Some(token);
            out.push(MacAction::SetTimer { delay: self.ack_window(m), token });
        }
    }

    fn on_timer(&mut self, token: TimerToken, now: SimTime, out: &mut ActionSink) {
        let Some(role) = self.timer_roles.remove(&token.0) else {
            return;
        };
        match role {
            Role::BackoffDone => {
                if self.armed_backoff == Some(token) {
                    self.armed_backoff = None;
                    if !self.channel_busy
                        && self.radio_free()
                        && self.data_state == DataState::Idle
                        && self.has_work()
                    {
                        self.backoff.clear();
                        self.transmit_data(out);
                    }
                }
            }
            Role::AckTimeout => {
                if self.armed_ack_timeout == Some(token) {
                    self.handle_ack_timeout(now, out);
                }
            }
            Role::SendAck { key } => self.fire_send_ack(key, now, out),
            Role::RelayDecision { key } => self.fire_relay_decision(key, now, out),
        }
    }

    fn stats(&self) -> MacStats {
        self.stats
    }
}

/// The preExOR / MCExOR forwarding schemes, as a
/// [`MacScheme`](wmn_mac::MacScheme) factory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExorScheme {
    /// Which acknowledgement discipline the stations run.
    pub mode: ExorMode,
}

impl wmn_mac::MacScheme for ExorScheme {
    fn label(&self) -> &'static str {
        match self.mode {
            ExorMode::PreExor => "preExOR",
            ExorMode::McExor => "MCExOR",
        }
    }

    fn is_opportunistic(&self) -> bool {
        true
    }

    fn build_mac(&self, params: &PhyParams, node: NodeId, rng: StreamRng) -> Box<dyn MacEntity> {
        Box::new(ExorMac::new(self.mode, ExorConfig::from_phy(params), node, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_mac::frame::{NetHeader, Proto};
    use wmn_mac::MacEntityExt;

    fn cfg() -> ExorConfig {
        ExorConfig::from_phy(&PhyParams::paper_216())
    }

    fn mac(mode: ExorMode, node: u32) -> ExorMac {
        ExorMac::new(mode, cfg(), NodeId::new(node), StreamRng::derive(3, "exor"))
    }

    fn packet(flow: u32, src: u32, dst: u32) -> Packet {
        Packet::new(
            NetHeader {
                flow: FlowId::new(flow),
                src: NodeId::new(src),
                dst: NodeId::new(dst),
                proto: Proto::Tcp,
                wire_bytes: 1000,
            },
            vec![],
        )
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn route_0_to_3() -> RouteInfo {
        // Destination 3 first, then forwarders 2 (rank 1) and 1 (rank 2).
        RouteInfo::Opportunistic {
            list: vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)].into(),
        }
    }

    fn find_tx(actions: &[MacAction]) -> Option<&Frame> {
        actions.iter().find_map(|a| match a {
            MacAction::StartTx { frame, .. } => Some(frame),
            _ => None,
        })
    }

    fn timers(actions: &[MacAction]) -> Vec<(SimDuration, TimerToken)> {
        actions
            .iter()
            .filter_map(|a| match a {
                MacAction::SetTimer { delay, token } => Some((*delay, *token)),
                _ => None,
            })
            .collect()
    }

    fn tx_data_frame(src_mac: &mut ExorMac, now: SimTime) -> DataFrame {
        let actions = src_mac.on_enqueue_vec(packet(0, 0, 3), route_0_to_3(), now);
        match find_tx(&actions) {
            Some(Frame::Data(d)) => d.clone(),
            _ => panic!("expected immediate data tx"),
        }
    }

    #[test]
    fn source_transmits_with_priority_list() {
        let mut m = mac(ExorMode::PreExor, 0);
        let d = tx_data_frame(&mut m, t(100));
        assert_eq!(
            d.link_dst,
            LinkDst::Opportunistic {
                list: vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)].into(),
            }
        );
        assert_eq!(d.subframes.len(), 1, "no aggregation in preExOR/MCExOR");
    }

    #[test]
    fn preexor_ack_slots_are_sequential_by_rank() {
        let mut src = mac(ExorMode::PreExor, 0);
        let d = tx_data_frame(&mut src, t(100));
        let c = cfg();
        // Destination (rank 0).
        let mut dest = mac(ExorMode::PreExor, 3);
        let acts = dest.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200));
        let (delay0, _) = timers(&acts)[0];
        assert_eq!(delay0, c.sifs);
        // Forwarder rank 2 (node 1).
        let mut fwd = mac(ExorMode::PreExor, 1);
        let acts = fwd.on_frame_rx_vec(Frame::Data(d).into(), t(200));
        let (delay2, _) = timers(&acts)[0];
        assert_eq!(delay2, c.sifs + (c.t_ack + c.sifs) * 2);
    }

    #[test]
    fn mcexor_waits_are_sifs_multiples() {
        let mut src = mac(ExorMode::McExor, 0);
        let d = tx_data_frame(&mut src, t(100));
        let c = cfg();
        let mut fwd = mac(ExorMode::McExor, 2); // rank 1
        let acts = fwd.on_frame_rx_vec(Frame::Data(d).into(), t(200));
        let (delay, _) = timers(&acts)[0];
        assert_eq!(delay, c.sifs * 2, "rank 1 waits 2 SIFS");
    }

    #[test]
    fn destination_delivers_immediately_without_reordering_buffer() {
        let mut src = mac(ExorMode::PreExor, 0);
        let d = tx_data_frame(&mut src, t(100));
        let mut dest = mac(ExorMode::PreExor, 3);
        let acts = dest.on_frame_rx_vec(Frame::Data(d).into(), t(200));
        assert!(acts.iter().any(|a| matches!(a, MacAction::Deliver { .. })));
    }

    #[test]
    fn duplicate_is_acked_but_not_redelivered_or_rerelayed() {
        let mut src = mac(ExorMode::PreExor, 0);
        let d1 = tx_data_frame(&mut src, t(100));
        let mut dest = mac(ExorMode::PreExor, 3);
        dest.on_frame_rx_vec(Frame::Data(d1.clone()).into(), t(200));
        // Source retransmits (missed ACK): same seq, new frame_seq.
        let mut d2 = d1;
        d2.frame_seq += 10;
        let acts = dest.on_frame_rx_vec(Frame::Data(d2).into(), t(400));
        assert!(
            !acts.iter().any(|a| matches!(a, MacAction::Deliver { .. })),
            "duplicates must not be delivered twice"
        );
        assert!(!timers(&acts).is_empty(), "duplicate still acknowledged");
    }

    #[test]
    fn mcexor_suppresses_ack_after_hearing_higher_priority() {
        let mut src = mac(ExorMode::McExor, 0);
        let d = tx_data_frame(&mut src, t(100));
        let mut fwd = mac(ExorMode::McExor, 1); // rank 2
        let acts = fwd.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200));
        let (_, token) = timers(&acts)[0];
        // The destination's ACK is overheard before our slot.
        let higher_ack = AckFrame {
            transmitter: NodeId::new(3),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: d.frame_seq,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: NodeList::new(),
        };
        fwd.on_frame_rx_vec(Frame::Ack(higher_ack).into(), t(210));
        let acts = fwd.on_timer_vec(token, t(232));
        assert!(find_tx(&acts).is_none(), "ACK suppressed");
        assert!(fwd.relay_q.is_empty(), "no relay adopted");
    }

    #[test]
    fn mcexor_best_receiver_acks_and_relays() {
        let mut src = mac(ExorMode::McExor, 0);
        let d = tx_data_frame(&mut src, t(100));
        let mut fwd = mac(ExorMode::McExor, 2); // rank 1: best receiver if dest missed
        let acts = fwd.on_frame_rx_vec(Frame::Data(d).into(), t(200));
        let (delay, token) = timers(&acts)[0];
        let acts = fwd.on_timer_vec(token, t(200) + delay);
        match find_tx(&acts) {
            Some(Frame::Ack(a)) => assert_eq!(a.to, NodeId::new(0)),
            _ => panic!("expected ACK"),
        }
        assert_eq!(fwd.relay_q.len(), 1, "forwarder adopts the packet");
        assert_eq!(fwd.relay_q[0].list.as_slice(), &[NodeId::new(3)], "truncated list");
    }

    #[test]
    fn preexor_relays_only_without_higher_ack() {
        let mut src = mac(ExorMode::PreExor, 0);
        let d = tx_data_frame(&mut src, t(100));
        // Case 1: no higher-priority ACK heard → relay.
        let mut fwd = mac(ExorMode::PreExor, 2); // rank 1
        let acts = fwd.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200));
        let relay_timer = timers(&acts).last().copied().unwrap();
        let acts = fwd.on_timer_vec(relay_timer.1, t(200) + relay_timer.0);
        // The idle channel lets the adopted relay transmit immediately.
        let relayed = match find_tx(&acts) {
            Some(Frame::Data(r)) => {
                assert_eq!(
                    r.link_dst,
                    LinkDst::Opportunistic { list: vec![NodeId::new(3)].into() }
                );
                true
            }
            _ => !fwd.relay_q.is_empty(),
        };
        assert!(relayed, "forwarder must adopt and relay the packet");
        // Case 2: destination ACK heard → discard.
        let mut fwd2 = mac(ExorMode::PreExor, 2);
        let acts = fwd2.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200));
        let relay_timer = timers(&acts).last().copied().unwrap();
        let dest_ack = AckFrame {
            transmitter: NodeId::new(3),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: d.frame_seq,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: NodeList::new(),
        };
        fwd2.on_frame_rx_vec(Frame::Ack(dest_ack).into(), t(220));
        fwd2.on_timer_vec(relay_timer.1, t(200) + relay_timer.0);
        assert!(fwd2.relay_q.is_empty(), "higher-priority ACK cancels the relay");
    }

    #[test]
    fn sender_succeeds_on_any_list_ack() {
        let mut src = mac(ExorMode::PreExor, 0);
        let d = tx_data_frame(&mut src, t(100));
        src.on_tx_end_vec(t(160));
        let fwd_ack = AckFrame {
            transmitter: NodeId::new(1),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: d.frame_seq,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: NodeList::new(),
        };
        src.on_frame_rx_vec(Frame::Ack(fwd_ack).into(), t(260));
        assert!(src.inflight.is_none(), "forwarder ACK means progress");
        assert_eq!(src.stats().acks_received, 1);
    }

    #[test]
    fn sender_times_out_and_retries() {
        let mut src = mac(ExorMode::McExor, 0);
        let d = tx_data_frame(&mut src, t(100));
        let acts = src.on_tx_end_vec(t(160));
        let (delay, token) = timers(&acts)[0];
        let acts = src.on_timer_vec(token, t(160) + delay);
        assert_eq!(src.stats().timeouts, 1);
        // Retry goes through backoff.
        let (d2, tok2) = timers(&acts)[0];
        let acts = src.on_timer_vec(tok2, t(160) + delay + d2);
        match find_tx(&acts) {
            Some(Frame::Data(retry)) => {
                assert_eq!(retry.subframes[0].seq, d.subframes[0].seq);
                assert!(retry.frame_seq > d.frame_seq, "fresh frame_seq per attempt");
            }
            _ => panic!("expected retransmission"),
        }
    }

    #[test]
    fn ack_window_covers_all_slots() {
        let pre = mac(ExorMode::PreExor, 0);
        let mce = mac(ExorMode::McExor, 0);
        let c = cfg();
        // 3-member list: preExOR window spans 3 ACK slots.
        assert!(pre.ack_window(3) > (c.sifs + c.t_ack) * 3);
        // MCExOR's compressed window is much shorter.
        assert!(mce.ack_window(3) < pre.ack_window(3));
    }
}
