//! The ETX link metric and shortest-path route discovery.
//!
//! ETX of a link is the expected number of transmissions for a successful
//! delivery-plus-acknowledgement: `1 / (p_fwd · p_rev)`. ETX of a path is
//! the sum over its links; Dijkstra minimises it. The paper delegates route
//! discovery to this metric ("Existing routing schemes (e.g., ExOR and
//! MORE) use ETX towards the destination to select forwarders") and focuses
//! on forwarding, so we compute delivery probabilities *analytically* from
//! the shadowing model rather than with probe traffic.

use wmn_phy::{Medium, PhyParams, Position};
use wmn_sim::NodeId;

/// Links with delivery probability below this are unusable for routing.
const MIN_LINK_PROBABILITY: f64 = 0.05;

/// A delivery-probability matrix was rejected at [`LinkGraph`] construction.
///
/// Catching bad link costs here — with the offending pair named — replaces
/// the old failure mode: a `NaN` smuggled into the matrix survived until
/// Dijkstra's comparator panicked mid-extraction with no hint of which link
/// was broken.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum EtxError {
    /// A matrix row's length differs from the number of rows.
    NonSquare {
        /// Index of the offending row.
        row: usize,
        /// Its length.
        len: usize,
        /// The expected dimension (number of rows).
        n: usize,
    },
    /// A link's delivery probability is NaN or infinite.
    NonFinite {
        /// Transmitting node of the offending directed pair.
        from: NodeId,
        /// Receiving node of the offending directed pair.
        to: NodeId,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for EtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EtxError::NonSquare { row, len, n } => {
                write!(
                    f,
                    "delivery matrix must be square: row {row} has {len} entries, expected {n}"
                )
            }
            EtxError::NonFinite { from, to, value } => {
                write!(
                    f,
                    "non-finite delivery probability {value} on link {} -> {}",
                    from.index(),
                    to.index()
                )
            }
        }
    }
}

impl std::error::Error for EtxError {}

/// Validates a delivery matrix: square, every entry finite.
fn validate(delivery: &[Vec<f64>]) -> Result<(), EtxError> {
    let n = delivery.len();
    for (i, row) in delivery.iter().enumerate() {
        if row.len() != n {
            return Err(EtxError::NonSquare { row: i, len: row.len(), n });
        }
        for (j, &p) in row.iter().enumerate() {
            if !p.is_finite() {
                return Err(EtxError::NonFinite {
                    from: NodeId::new(i as u32),
                    to: NodeId::new(j as u32),
                    value: p,
                });
            }
        }
    }
    Ok(())
}

/// Pairwise link-quality graph with ETX arithmetic and Dijkstra.
///
/// # Example
///
/// ```
/// use wmn_phy::{PhyParams, Position};
/// use wmn_routing::LinkGraph;
/// use wmn_sim::NodeId;
///
/// // Three stations in a line, 5 m apart: the two-hop route wins on ETX.
/// let g = LinkGraph::from_placement(
///     &PhyParams::paper_216(),
///     &[Position::new(0.0, 0.0), Position::new(5.0, 0.0), Position::new(10.0, 0.0)],
/// );
/// let path = g.shortest_path(NodeId::new(0), NodeId::new(2)).unwrap();
/// assert_eq!(path.len(), 3); // 0 -> 1 -> 2
/// ```
#[derive(Clone, Debug)]
pub struct LinkGraph {
    n: usize,
    /// delivery[i][j]: probability a frame from i is decodable at j.
    delivery: Vec<Vec<f64>>,
}

impl LinkGraph {
    /// Builds the graph from the analytic shadowing-model delivery
    /// probabilities for a station placement.
    ///
    /// # Panics
    ///
    /// Panics with the [`EtxError`] message if the parameters yield a
    /// non-finite delivery probability (a misconfigured `PhyParams` — a
    /// programming error, not a runtime condition).
    pub fn from_placement(params: &PhyParams, positions: &[Position]) -> Self {
        Self::try_from_placement(params, positions).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible form of [`LinkGraph::from_placement`]: rejects non-finite
    /// delivery probabilities with a typed error naming the offending pair.
    ///
    /// # Errors
    ///
    /// [`EtxError::NonFinite`] if any pair's delivery probability is NaN or
    /// infinite.
    pub fn try_from_placement(
        params: &PhyParams,
        positions: &[Position],
    ) -> Result<Self, EtxError> {
        let n = positions.len();
        let mut delivery = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let d = positions[i].distance_to(positions[j]);
                    delivery[i][j] = params.link_delivery_probability(d);
                }
            }
        }
        validate(&delivery)?;
        Ok(LinkGraph { n, delivery })
    }

    /// Builds the graph from a [`Medium`]'s *current* link state — the entry
    /// point of the live routing-refresh pass.
    ///
    /// Delivery probabilities come from the medium's cached per-pair
    /// distances, which the mobility subsystem keeps bit-identical to a full
    /// rebuild over the current placement; over an unmoved placement this
    /// graph is therefore bit-identical to
    /// [`LinkGraph::from_placement`] at scenario build.
    ///
    /// # Errors
    ///
    /// [`EtxError::NonFinite`] if any pair's delivery probability is NaN or
    /// infinite (a refresh caller can then keep its last-known-good routes
    /// instead of panicking mid-run).
    pub fn try_from_medium(medium: &Medium) -> Result<Self, EtxError> {
        let n = medium.node_count();
        let mut delivery = vec![vec![0.0; n]; n];
        for (i, row) in delivery.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i != j {
                    *cell = medium
                        .link_delivery_probability(NodeId::new(i as u32), NodeId::new(j as u32));
                }
            }
        }
        validate(&delivery)?;
        Ok(LinkGraph { n, delivery })
    }

    /// Builds a graph directly from a delivery-probability matrix (used by
    /// tests and synthetic topologies).
    ///
    /// # Errors
    ///
    /// [`EtxError::NonSquare`] if the matrix is not square,
    /// [`EtxError::NonFinite`] if any entry is NaN or infinite.
    pub fn from_matrix(delivery: Vec<Vec<f64>>) -> Result<Self, EtxError> {
        validate(&delivery)?;
        let n = delivery.len();
        Ok(LinkGraph { n, delivery })
    }

    /// Number of stations.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Forward delivery probability of the directed link `a → b`.
    pub fn delivery_probability(&self, a: NodeId, b: NodeId) -> f64 {
        self.delivery[a.index()][b.index()]
    }

    /// ETX of the link between `a` and `b`: `1/(p_ab · p_ba)`, or infinity
    /// if either direction is below the usability floor.
    pub fn link_etx(&self, a: NodeId, b: NodeId) -> f64 {
        let pf = self.delivery[a.index()][b.index()];
        let pr = self.delivery[b.index()][a.index()];
        if pf < MIN_LINK_PROBABILITY || pr < MIN_LINK_PROBABILITY {
            f64::INFINITY
        } else {
            1.0 / (pf * pr)
        }
    }

    /// Cumulative ETX of a path (sum of link ETX values).
    ///
    /// # Panics
    ///
    /// Panics if the path has fewer than two nodes.
    pub fn path_etx(&self, path: &[NodeId]) -> f64 {
        assert!(path.len() >= 2, "a path needs at least two nodes");
        path.windows(2).map(|w| self.link_etx(w[0], w[1])).sum()
    }

    /// Minimum-ETX path from `src` to `dst` (inclusive of both), or `None`
    /// if no usable path exists.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let n = self.n;
        let (s, d) = (src.index(), dst.index());
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        dist[s] = 0.0;
        for _ in 0..n {
            // Linear extraction: topologies here are tens of nodes.
            // `total_cmp` keeps the extraction total even for values a
            // malformed metric could produce — construction rejects
            // non-finite inputs, but the comparator must not be the thing
            // that panics if that invariant ever slips.
            let u = (0..n)
                .filter(|&u| !visited[u] && dist[u].is_finite())
                .min_by(|&a, &b| dist[a].total_cmp(&dist[b]))?;
            if u == d {
                break;
            }
            visited[u] = true;
            for v in 0..n {
                if v == u || visited[v] {
                    continue;
                }
                let w = self.link_etx(NodeId::new(u as u32), NodeId::new(v as u32));
                if w.is_finite() && dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                    prev[v] = u;
                }
            }
        }
        if !dist[d].is_finite() {
            return None;
        }
        let mut path = vec![d];
        let mut cur = d;
        while cur != s {
            cur = prev[cur];
            if cur == usize::MAX {
                return None;
            }
            path.push(cur);
        }
        path.reverse();
        Some(path.into_iter().map(|i| NodeId::new(i as u32)).collect())
    }

    /// Hop count of the minimum-ETX path, if one exists.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.shortest_path(src, dst).map(|p| p.len() - 1)
    }
}

/// Builds an opportunistic forwarder priority list from a route.
///
/// The returned list is in the paper's on-the-wire order: the destination
/// first ("the closest one to the MAC header"), then forwarders by
/// decreasing priority — i.e. by decreasing proximity to the destination
/// along the path. At most `max_forwarders` forwarders are kept (the ones
/// nearest the destination, which dominate progress).
///
/// # Panics
///
/// Panics if `path` has fewer than two nodes.
///
/// # Example
///
/// ```
/// use wmn_routing::forwarder_list;
/// use wmn_sim::NodeId;
///
/// let path: Vec<NodeId> = [0u32, 1, 2, 3].iter().map(|&i| NodeId::new(i)).collect();
/// let list = forwarder_list(&path, 5);
/// // Destination 3 first, then forwarder 2 (rank 1), then 1 (rank 2).
/// assert_eq!(list, vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)]);
/// ```
pub fn forwarder_list(path: &[NodeId], max_forwarders: usize) -> Vec<NodeId> {
    assert!(path.len() >= 2, "a path needs at least two nodes");
    let dst = *path.last().expect("non-empty");
    let mut list = vec![dst];
    // Interior nodes, nearest-to-destination first.
    let interior = &path[1..path.len() - 1];
    list.extend(interior.iter().rev().take(max_forwarders).copied());
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line(n: usize, spacing: f64) -> Vec<Position> {
        (0..n).map(|i| Position::new(i as f64 * spacing, 0.0)).collect()
    }

    fn graph(n: usize, spacing: f64) -> LinkGraph {
        LinkGraph::from_placement(&PhyParams::paper_216(), &line(n, spacing))
    }

    #[test]
    fn adjacent_links_have_low_etx() {
        let g = graph(4, 5.0);
        let etx = g.link_etx(NodeId::new(0), NodeId::new(1));
        assert!(etx < 1.2, "5 m link ETX should be near 1, got {etx}");
    }

    #[test]
    fn distant_links_are_unusable() {
        let g = graph(5, 10.0);
        // 40 m apart: both directions far below the floor.
        assert!(g.link_etx(NodeId::new(0), NodeId::new(4)).is_infinite());
    }

    #[test]
    fn shortest_path_prefers_multihop_over_lossy_direct() {
        let g = graph(4, 5.0);
        let path = g.shortest_path(NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(
            path,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            "the hop-by-hop route must win on ETX"
        );
    }

    #[test]
    fn no_path_returns_none() {
        let g = LinkGraph::from_matrix(vec![vec![0.0, 0.0], vec![0.0, 0.0]]).unwrap();
        assert!(g.shortest_path(NodeId::new(0), NodeId::new(1)).is_none());
    }

    #[test]
    fn construction_rejects_non_finite_and_non_square() {
        let err = LinkGraph::from_matrix(vec![vec![0.0, f64::NAN], vec![0.5, 0.0]]).unwrap_err();
        match err {
            EtxError::NonFinite { from, to, value } => {
                assert_eq!((from, to), (NodeId::new(0), NodeId::new(1)));
                assert!(value.is_nan());
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert!(err.to_string().contains("non-finite"), "display names the failure: {err}");
        let err = LinkGraph::from_matrix(vec![vec![0.0, 0.9], vec![0.5, 0.0, 0.1]]).unwrap_err();
        assert_eq!(err, EtxError::NonSquare { row: 1, len: 3, n: 2 });
        let err =
            LinkGraph::from_matrix(vec![vec![0.0, f64::INFINITY], vec![0.5, 0.0]]).unwrap_err();
        assert!(matches!(err, EtxError::NonFinite { value, .. } if value.is_infinite()));
    }

    #[test]
    fn graph_from_medium_matches_placement_bit_for_bit() {
        use wmn_phy::Medium;
        let params = PhyParams::paper_216();
        let positions = line(5, 5.0);
        let mut medium = Medium::new(params.clone(), positions.clone());
        let built = LinkGraph::from_placement(&params, &positions);
        let live = LinkGraph::try_from_medium(&medium).unwrap();
        for i in 0..5u32 {
            for j in 0..5u32 {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                assert_eq!(
                    live.delivery_probability(a, b).to_bits(),
                    built.delivery_probability(a, b).to_bits(),
                    "unmoved medium must reproduce the build-time graph exactly"
                );
            }
        }
        // After a move the live graph tracks the new placement, again
        // bit-identical to a from-scratch build.
        let moved = Position::new(5.0, 30.0);
        medium.update_node_position(NodeId::new(1), moved);
        let mut positions = positions;
        positions[1] = moved;
        let rebuilt = LinkGraph::from_placement(&params, &positions);
        let live = LinkGraph::try_from_medium(&medium).unwrap();
        for i in 0..5u32 {
            for j in 0..5u32 {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                assert_eq!(
                    live.delivery_probability(a, b).to_bits(),
                    rebuilt.delivery_probability(a, b).to_bits()
                );
            }
        }
        assert_ne!(
            rebuilt.shortest_path(NodeId::new(0), NodeId::new(4)),
            Some(vec![0, 1, 2, 3, 4].into_iter().map(NodeId::new).collect()),
            "the moved relay must fall off the min-ETX path"
        );
    }

    #[test]
    fn path_etx_adds_links() {
        let g = graph(3, 5.0);
        let path = [NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let total = g.path_etx(&path);
        let sum = g.link_etx(path[0], path[1]) + g.link_etx(path[1], path[2]);
        assert!((total - sum).abs() < 1e-12);
    }

    #[test]
    fn forwarder_list_order_and_cap() {
        let path: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let list = forwarder_list(&path, 5);
        assert_eq!(list[0], NodeId::new(7), "destination first");
        assert_eq!(list.len(), 6, "dest + 5 forwarders (cap)");
        assert_eq!(list[1], NodeId::new(6), "highest priority forwarder nearest dest");
        assert_eq!(list[5], NodeId::new(2), "cap keeps the 5 nearest the destination");
    }

    #[test]
    fn forwarder_list_direct_path() {
        let path = [NodeId::new(0), NodeId::new(1)];
        assert_eq!(forwarder_list(&path, 5), vec![NodeId::new(1)]);
    }

    #[test]
    fn hop_count_matches_path() {
        let g = graph(5, 5.0);
        assert_eq!(g.hop_count(NodeId::new(0), NodeId::new(4)), Some(4));
    }

    proptest! {
        /// Dijkstra's result never costs more than the direct link or than
        /// any single-relay alternative (spot optimality check).
        #[test]
        fn prop_dijkstra_beats_simple_alternatives(
            ps in proptest::collection::vec((0.05f64..1.0, 0.05f64..1.0), 6..=6)
        ) {
            // Build a dense 3-node asymmetric graph.
            let mut m = vec![vec![0.0; 3]; 3];
            let mut entries = ps.iter();
            for (i, row) in m.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    if i != j {
                        *cell = entries.next().expect("6 off-diagonal entries").0;
                    }
                }
            }
            let g = LinkGraph::from_matrix(m).expect("finite square matrix");
            let (a, b) = (NodeId::new(0), NodeId::new(2));
            if let Some(path) = g.shortest_path(a, b) {
                let best = g.path_etx(&path);
                let direct = g.link_etx(a, b);
                let via = g.link_etx(a, NodeId::new(1)) + g.link_etx(NodeId::new(1), b);
                prop_assert!(best <= direct + 1e-9);
                prop_assert!(best <= via + 1e-9);
            }
        }
    }
}
