//! The ETX link metric and shortest-path route discovery.
//!
//! ETX of a link is the expected number of transmissions for a successful
//! delivery-plus-acknowledgement: `1 / (p_fwd · p_rev)`. ETX of a path is
//! the sum over its links; Dijkstra minimises it. The paper delegates route
//! discovery to this metric ("Existing routing schemes (e.g., ExOR and
//! MORE) use ETX towards the destination to select forwarders") and focuses
//! on forwarding, so we compute delivery probabilities *analytically* from
//! the shadowing model rather than with probe traffic.

use wmn_phy::{PhyParams, Position};
use wmn_sim::NodeId;

/// Links with delivery probability below this are unusable for routing.
const MIN_LINK_PROBABILITY: f64 = 0.05;

/// Pairwise link-quality graph with ETX arithmetic and Dijkstra.
///
/// # Example
///
/// ```
/// use wmn_phy::{PhyParams, Position};
/// use wmn_routing::LinkGraph;
/// use wmn_sim::NodeId;
///
/// // Three stations in a line, 5 m apart: the two-hop route wins on ETX.
/// let g = LinkGraph::from_placement(
///     &PhyParams::paper_216(),
///     &[Position::new(0.0, 0.0), Position::new(5.0, 0.0), Position::new(10.0, 0.0)],
/// );
/// let path = g.shortest_path(NodeId::new(0), NodeId::new(2)).unwrap();
/// assert_eq!(path.len(), 3); // 0 -> 1 -> 2
/// ```
#[derive(Clone, Debug)]
pub struct LinkGraph {
    n: usize,
    /// delivery[i][j]: probability a frame from i is decodable at j.
    delivery: Vec<Vec<f64>>,
}

impl LinkGraph {
    /// Builds the graph from the analytic shadowing-model delivery
    /// probabilities for a station placement.
    pub fn from_placement(params: &PhyParams, positions: &[Position]) -> Self {
        let n = positions.len();
        let mut delivery = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let d = positions[i].distance_to(positions[j]);
                    delivery[i][j] = params.link_delivery_probability(d);
                }
            }
        }
        LinkGraph { n, delivery }
    }

    /// Builds a graph directly from a delivery-probability matrix (used by
    /// tests and synthetic topologies).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn from_matrix(delivery: Vec<Vec<f64>>) -> Self {
        let n = delivery.len();
        for row in &delivery {
            assert_eq!(row.len(), n, "delivery matrix must be square");
        }
        LinkGraph { n, delivery }
    }

    /// Number of stations.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Forward delivery probability of the directed link `a → b`.
    pub fn delivery_probability(&self, a: NodeId, b: NodeId) -> f64 {
        self.delivery[a.index()][b.index()]
    }

    /// ETX of the link between `a` and `b`: `1/(p_ab · p_ba)`, or infinity
    /// if either direction is below the usability floor.
    pub fn link_etx(&self, a: NodeId, b: NodeId) -> f64 {
        let pf = self.delivery[a.index()][b.index()];
        let pr = self.delivery[b.index()][a.index()];
        if pf < MIN_LINK_PROBABILITY || pr < MIN_LINK_PROBABILITY {
            f64::INFINITY
        } else {
            1.0 / (pf * pr)
        }
    }

    /// Cumulative ETX of a path (sum of link ETX values).
    ///
    /// # Panics
    ///
    /// Panics if the path has fewer than two nodes.
    pub fn path_etx(&self, path: &[NodeId]) -> f64 {
        assert!(path.len() >= 2, "a path needs at least two nodes");
        path.windows(2).map(|w| self.link_etx(w[0], w[1])).sum()
    }

    /// Minimum-ETX path from `src` to `dst` (inclusive of both), or `None`
    /// if no usable path exists.
    pub fn shortest_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
        let n = self.n;
        let (s, d) = (src.index(), dst.index());
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        dist[s] = 0.0;
        for _ in 0..n {
            // Linear extraction: topologies here are tens of nodes.
            let u = (0..n)
                .filter(|&u| !visited[u] && dist[u].is_finite())
                .min_by(|&a, &b| dist[a].partial_cmp(&dist[b]).expect("no NaN"))?;
            if u == d {
                break;
            }
            visited[u] = true;
            for v in 0..n {
                if v == u || visited[v] {
                    continue;
                }
                let w = self.link_etx(NodeId::new(u as u32), NodeId::new(v as u32));
                if w.is_finite() && dist[u] + w < dist[v] {
                    dist[v] = dist[u] + w;
                    prev[v] = u;
                }
            }
        }
        if !dist[d].is_finite() {
            return None;
        }
        let mut path = vec![d];
        let mut cur = d;
        while cur != s {
            cur = prev[cur];
            if cur == usize::MAX {
                return None;
            }
            path.push(cur);
        }
        path.reverse();
        Some(path.into_iter().map(|i| NodeId::new(i as u32)).collect())
    }

    /// Hop count of the minimum-ETX path, if one exists.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        self.shortest_path(src, dst).map(|p| p.len() - 1)
    }
}

/// Builds an opportunistic forwarder priority list from a route.
///
/// The returned list is in the paper's on-the-wire order: the destination
/// first ("the closest one to the MAC header"), then forwarders by
/// decreasing priority — i.e. by decreasing proximity to the destination
/// along the path. At most `max_forwarders` forwarders are kept (the ones
/// nearest the destination, which dominate progress).
///
/// # Panics
///
/// Panics if `path` has fewer than two nodes.
///
/// # Example
///
/// ```
/// use wmn_routing::forwarder_list;
/// use wmn_sim::NodeId;
///
/// let path: Vec<NodeId> = [0u32, 1, 2, 3].iter().map(|&i| NodeId::new(i)).collect();
/// let list = forwarder_list(&path, 5);
/// // Destination 3 first, then forwarder 2 (rank 1), then 1 (rank 2).
/// assert_eq!(list, vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)]);
/// ```
pub fn forwarder_list(path: &[NodeId], max_forwarders: usize) -> Vec<NodeId> {
    assert!(path.len() >= 2, "a path needs at least two nodes");
    let dst = *path.last().expect("non-empty");
    let mut list = vec![dst];
    // Interior nodes, nearest-to-destination first.
    let interior = &path[1..path.len() - 1];
    list.extend(interior.iter().rev().take(max_forwarders).copied());
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line(n: usize, spacing: f64) -> Vec<Position> {
        (0..n).map(|i| Position::new(i as f64 * spacing, 0.0)).collect()
    }

    fn graph(n: usize, spacing: f64) -> LinkGraph {
        LinkGraph::from_placement(&PhyParams::paper_216(), &line(n, spacing))
    }

    #[test]
    fn adjacent_links_have_low_etx() {
        let g = graph(4, 5.0);
        let etx = g.link_etx(NodeId::new(0), NodeId::new(1));
        assert!(etx < 1.2, "5 m link ETX should be near 1, got {etx}");
    }

    #[test]
    fn distant_links_are_unusable() {
        let g = graph(5, 10.0);
        // 40 m apart: both directions far below the floor.
        assert!(g.link_etx(NodeId::new(0), NodeId::new(4)).is_infinite());
    }

    #[test]
    fn shortest_path_prefers_multihop_over_lossy_direct() {
        let g = graph(4, 5.0);
        let path = g.shortest_path(NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(
            path,
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            "the hop-by-hop route must win on ETX"
        );
    }

    #[test]
    fn no_path_returns_none() {
        let g = LinkGraph::from_matrix(vec![vec![0.0, 0.0], vec![0.0, 0.0]]);
        assert!(g.shortest_path(NodeId::new(0), NodeId::new(1)).is_none());
    }

    #[test]
    fn path_etx_adds_links() {
        let g = graph(3, 5.0);
        let path = [NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let total = g.path_etx(&path);
        let sum = g.link_etx(path[0], path[1]) + g.link_etx(path[1], path[2]);
        assert!((total - sum).abs() < 1e-12);
    }

    #[test]
    fn forwarder_list_order_and_cap() {
        let path: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let list = forwarder_list(&path, 5);
        assert_eq!(list[0], NodeId::new(7), "destination first");
        assert_eq!(list.len(), 6, "dest + 5 forwarders (cap)");
        assert_eq!(list[1], NodeId::new(6), "highest priority forwarder nearest dest");
        assert_eq!(list[5], NodeId::new(2), "cap keeps the 5 nearest the destination");
    }

    #[test]
    fn forwarder_list_direct_path() {
        let path = [NodeId::new(0), NodeId::new(1)];
        assert_eq!(forwarder_list(&path, 5), vec![NodeId::new(1)]);
    }

    #[test]
    fn hop_count_matches_path() {
        let g = graph(5, 5.0);
        assert_eq!(g.hop_count(NodeId::new(0), NodeId::new(4)), Some(4));
    }

    proptest! {
        /// Dijkstra's result never costs more than the direct link or than
        /// any single-relay alternative (spot optimality check).
        #[test]
        fn prop_dijkstra_beats_simple_alternatives(
            ps in proptest::collection::vec((0.05f64..1.0, 0.05f64..1.0), 6..=6)
        ) {
            // Build a dense 3-node asymmetric graph.
            let mut m = vec![vec![0.0; 3]; 3];
            let mut entries = ps.iter();
            for (i, row) in m.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    if i != j {
                        *cell = entries.next().expect("6 off-diagonal entries").0;
                    }
                }
            }
            let g = LinkGraph::from_matrix(m);
            let (a, b) = (NodeId::new(0), NodeId::new(2));
            if let Some(path) = g.shortest_path(a, b) {
                let best = g.path_etx(&path);
                let direct = g.link_etx(a, b);
                let via = g.link_etx(a, NodeId::new(1)) + g.link_etx(NodeId::new(1), b);
                prop_assert!(best <= direct + 1e-9);
                prop_assert!(best <= via + 1e-9);
            }
        }
    }
}
