//! Route discovery and the two prior opportunistic MACs the paper compares
//! against.
//!
//! * [`etx`] — the ETX link metric of De Couto et al. (the paper's route
//!   discovery substrate, inherited from ExOR/MORE): analytic per-link
//!   delivery probabilities from the shadowing model, Dijkstra shortest
//!   paths on cumulative ETX, and forwarder-list construction (destination
//!   first, then forwarders by decreasing priority, capped at the paper's
//!   default of 5).
//! * [`exor`] — the **preExOR** (sequential per-forwarder ACKs) and
//!   **MCExOR** (compressed, rank-scaled ACK slots) MAC state machines used
//!   in Section II's motivation study. Both cache overheard packets at
//!   forwarders and contend for the channel to relay them — which is exactly
//!   what re-orders interactive traffic and motivates RIPPLE.

pub mod etx;
pub mod exor;

pub use etx::{forwarder_list, EtxError, LinkGraph};
pub use exor::{ExorMac, ExorMode, ExorScheme};

/// The paper's default cap on forwarders per path ("we use 5 as the default
/// maximum forwarders since it works well under a wide range of network
/// conditions").
pub const DEFAULT_MAX_FORWARDERS: usize = 5;
