//! The determinism rules.
//!
//! Each rule walks one file's token stream (comments and test items already
//! removed) and returns [`Finding`]s. The rules are deliberately heuristic —
//! this is a linter, not a compiler — but every heuristic is pinned by the
//! fixture corpus in `tests/fixtures/`, so a behaviour change is a visible
//! test diff, never a silent drift.

use std::collections::BTreeSet;

use crate::lexer::{TokKind, Token};

/// Rule id: HashMap/HashSet iteration in a deterministic crate.
pub const NO_HASH_ITER: &str = "no-hash-iter";
/// Rule id: wall-clock reads outside the telemetry allowlist.
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// Rule id: nondeterministic std surface (`sleep`, `process::id`,
/// `RandomState`, env reads).
pub const NO_NONDET_STD: &str = "no-nondeterministic-std";
/// Rule id: deep-cloning a frame outside the corruption seam.
pub const NO_FRAME_DEEP_CLONE: &str = "no-frame-deep-clone";
/// Rule id: `Vec::new()`/`vec![]` inside a per-event hot-path handler.
pub const HOT_PATH_VEC_NEW: &str = "hot-path-vec-new";
/// Rule id: RNG label extraction / registry problems.
pub const RNG_LABEL_REGISTRY: &str = "rng-label-registry";
/// Rule id: unkeyed event scheduling inside the sharded engine.
pub const SHARD_MERGE_ORDER: &str = "shard-merge-order";
/// Rule id: non-indexed RNG stream derivation inside the sharded engine.
pub const SHARD_RNG_LABEL: &str = "shard-rng-label";
/// Rule id: shared-state write locks outside the coordinator seam.
pub const SHARD_STATE_ISOLATION: &str = "shard-state-isolation";
/// Meta rule id: malformed, unknown-rule, or unused waivers.
pub const WAIVER: &str = "waiver";

/// Every real (waivable-in-principle) rule id, for waiver validation.
pub const RULES: &[&str] = &[
    NO_HASH_ITER,
    NO_WALL_CLOCK,
    NO_NONDET_STD,
    NO_FRAME_DEEP_CLONE,
    HOT_PATH_VEC_NEW,
    RNG_LABEL_REGISTRY,
    SHARD_MERGE_ORDER,
    SHARD_RNG_LABEL,
    SHARD_STATE_ISOLATION,
];

/// One lint finding at a source location.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule fired (one of the `pub const` ids above).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// The waiver reason, when an inline waiver suppressed this finding.
    pub waive_reason: Option<String>,
}

impl Finding {
    /// A fresh, unwaived finding.
    pub fn new(rule: &'static str, file: &str, line: u32, message: String) -> Finding {
        Finding { rule, file: file.to_string(), line, message, waive_reason: None }
    }
}

/// Is `tokens[i..]` the two-character path separator `::`?
fn path_sep(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

/// Methods whose call on a hash collection observes its (randomised,
/// allocation-dependent) iteration order.
const ORDER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Collects identifiers bound to one of `types` in this file, from type
/// annotations (`name: [path::]Type<…>` — struct fields, lets, fn params,
/// struct-literal fields) and constructor assignments
/// (`name = [path::]Type::new()` and friends).
fn typed_names(tokens: &[Token], types: &[&str]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.kind == TokKind::Ident && types.contains(&t.text.as_str())) {
            continue;
        }
        // Walk left across a `seg::seg::` path prefix.
        let mut j = i;
        while j >= 3 && path_sep(tokens, j - 2) && tokens[j - 3].kind == TokKind::Ident {
            j -= 3;
        }
        // …and across `&` / `&mut` in front of the type.
        let mut k = j;
        while k >= 1 && (tokens[k - 1].is_punct('&') || tokens[k - 1].is_ident("mut")) {
            k -= 1;
        }
        // `name : Type` (single colon — a double colon is a path, handled
        // by the walk above).
        if k >= 2
            && tokens[k - 1].is_punct(':')
            && !(k >= 3 && tokens[k - 2].is_punct(':'))
            && tokens[k - 2].kind == TokKind::Ident
        {
            names.insert(tokens[k - 2].text.clone());
        }
        // `name = HashMap::new()` — the binding carries no annotation.
        if j >= 2 && tokens[j - 1].is_punct('=') && tokens[j - 2].kind == TokKind::Ident {
            names.insert(tokens[j - 2].text.clone());
        }
    }
    names
}

/// `no-hash-iter`: flags order-observing method calls and `for … in` loops
/// over identifiers bound to `HashMap`/`HashSet` in this file. Keyed access
/// (`get`/`insert`/`remove`/`entry`/`contains_key`) is deliberately allowed:
/// the contract forbids observing the randomised order, not the collection.
pub fn no_hash_iter(tokens: &[Token], file: &str) -> Vec<Finding> {
    let tracked = typed_names(tokens, &["HashMap", "HashSet"]);
    if tracked.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        // `name.iter()` / `self.name.drain(..)` — the receiver is the ident
        // right before the dot.
        if tokens[i].is_punct('.')
            && i >= 1
            && tokens[i - 1].kind == TokKind::Ident
            && tracked.contains(&tokens[i - 1].text)
            && tokens.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && ORDER_METHODS.contains(&t.text.as_str())
            })
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            let recv = &tokens[i - 1].text;
            let method = &tokens[i + 1].text;
            out.push(Finding::new(
                NO_HASH_ITER,
                file,
                tokens[i + 1].line,
                format!(
                    "`{recv}.{method}()` observes HashMap/HashSet iteration order, which is \
                     randomised per process — use a BTreeMap/BTreeSet, a dense Vec table, or \
                     collect-and-sort"
                ),
            ));
        }
        if tokens[i].is_ident("for") {
            if let Some(f) = for_loop_over_tracked(tokens, i, &tracked, file) {
                out.push(f);
            }
        }
    }
    out
}

/// Checks the `for … in <expr> {` starting at the `for` token at `i` and
/// returns a finding when `<expr>` is a plain (borrowed) reference to a
/// tracked hash collection. Expressions with calls or indexing are left to
/// the method check.
fn for_loop_over_tracked(
    tokens: &[Token],
    i: usize,
    tracked: &BTreeSet<String>,
    file: &str,
) -> Option<Finding> {
    // Find the loop's `in` at bracket depth 0 (the pattern may contain
    // tuples: `for (k, v) in …`), giving up at the body brace. `impl X for
    // Y` has no `in` and is skipped naturally.
    let mut depth = 0i32;
    let mut j = i + 1;
    let in_idx = loop {
        let t = tokens.get(j)?;
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') | TokKind::Punct(';') => return None,
            TokKind::Ident if depth == 0 && t.text == "in" => break j,
            _ => {}
        }
        j += 1;
    };
    let body = (in_idx + 1..tokens.len()).find(|&k| tokens[k].is_punct('{'))?;
    let expr = &tokens[in_idx + 1..body];
    // Plain reference shapes only: `[&][mut] [self.]name`.
    let simple = expr
        .iter()
        .all(|t| matches!(t.kind, TokKind::Ident | TokKind::Punct('&') | TokKind::Punct('.')));
    if !simple || expr.is_empty() {
        return None;
    }
    let name = expr.iter().rev().find(|t| t.kind == TokKind::Ident)?;
    if !tracked.contains(&name.text) {
        return None;
    }
    Some(Finding::new(
        NO_HASH_ITER,
        file,
        tokens[i].line,
        format!(
            "`for … in {}{}` iterates a HashMap/HashSet, whose order is randomised per \
             process — use a BTreeMap/BTreeSet, a dense Vec table, or collect-and-sort",
            if expr.iter().any(|t| t.is_punct('&')) { "&" } else { "" },
            name.text
        ),
    ))
}

/// `no-wall-clock`: flags `Instant::now` and any mention of `SystemTime`.
/// Simulated time comes from the event clock; wall-clock reads belong only
/// to the telemetry layer (exec, bench, experiment binaries, devtools).
pub fn no_wall_clock(tokens: &[Token], file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("Instant")
            && path_sep(tokens, i + 1)
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(Finding::new(
                NO_WALL_CLOCK,
                file,
                t.line,
                "`Instant::now()` reads the wall clock — simulated components must take time \
                 from the event clock; telemetry belongs in wmn_exec/wmn_bench"
                    .to_string(),
            ));
        }
        if t.is_ident("SystemTime") {
            out.push(Finding::new(
                NO_WALL_CLOCK,
                file,
                t.line,
                "`SystemTime` is wall-clock state — nothing in a simulated run may depend on \
                 when it was executed"
                    .to_string(),
            ));
        }
    }
    out
}

/// Environment readers under `std::env` that make a run depend on ambient
/// process state.
const ENV_READERS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// `no-nondeterministic-std`: flags `thread::sleep`, `process::id`,
/// `RandomState`, and `env::var`-family reads. Env reads inside a function
/// named `from_env` are exempt — that is the repo's designated config
/// boundary (`ExpConfig::from_env`), and funnelling every ambient read
/// through it is exactly what this rule enforces.
pub fn no_nondet_std(tokens: &[Token], file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    // Enclosing-function tracking for the `from_env` exemption: remember,
    // per open brace, whether it is the body of a fn named `from_env`.
    let mut pending_fn: Option<String> = None;
    let mut brace_is_from_env: Vec<bool> = Vec::new();
    let mut from_env_depth = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Ident if t.text == "fn" => {
                if let Some(name) = tokens.get(i + 1) {
                    if name.kind == TokKind::Ident {
                        pending_fn = Some(name.text.clone());
                    }
                }
            }
            TokKind::Punct(';') => pending_fn = None,
            TokKind::Punct('{') => {
                let is_from_env = pending_fn.take().as_deref() == Some("from_env");
                brace_is_from_env.push(is_from_env);
                from_env_depth += usize::from(is_from_env);
            }
            TokKind::Punct('}') => {
                if let Some(was) = brace_is_from_env.pop() {
                    from_env_depth -= usize::from(was);
                }
            }
            _ => {}
        }

        if t.is_ident("thread")
            && path_sep(tokens, i + 1)
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("sleep"))
        {
            out.push(Finding::new(
                NO_NONDET_STD,
                file,
                t.line,
                "`thread::sleep` injects wall-clock timing into the run — simulated delays \
                 must be event-queue timers"
                    .to_string(),
            ));
        }
        if t.is_ident("process")
            && path_sep(tokens, i + 1)
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("id"))
        {
            out.push(Finding::new(
                NO_NONDET_STD,
                file,
                t.line,
                "`process::id()` differs every run — nothing result-bearing may incorporate it"
                    .to_string(),
            ));
        }
        if t.is_ident("RandomState") {
            out.push(Finding::new(
                NO_NONDET_STD,
                file,
                t.line,
                "`RandomState` is the randomised hasher behind HashMap — deterministic code \
                 must not name it, let alone seed containers with it"
                    .to_string(),
            ));
        }
        if t.is_ident("env")
            && path_sep(tokens, i + 1)
            && tokens
                .get(i + 3)
                .is_some_and(|t| t.kind == TokKind::Ident && ENV_READERS.contains(&t.text.as_str()))
            && from_env_depth == 0
        {
            out.push(Finding::new(
                NO_NONDET_STD,
                file,
                t.line,
                format!(
                    "`env::{}` reads ambient process state — route configuration through \
                     `ExpConfig::from_env` (the one sanctioned boundary) instead",
                    tokens[i + 3].text
                ),
            ));
        }
    }
    out
}

/// Is `tokens[i..]` the shape `.name(` for one of `names`? Returns the
/// matched method name.
fn dot_call<'t>(tokens: &'t [Token], i: usize, names: &[&str]) -> Option<&'t str> {
    if !tokens[i].is_punct('.') {
        return None;
    }
    let m = tokens.get(i + 1)?;
    if m.kind == TokKind::Ident
        && names.contains(&m.text.as_str())
        && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
    {
        Some(&m.text)
    } else {
        None
    }
}

/// `shard-merge-order` (sharded-engine files only): flags unkeyed
/// `.schedule(…)` / `.schedule_in(…)` calls. The cross-shard merge totally
/// orders events by `(time, key)`; an event scheduled without a
/// content-derived key gets an insertion-order tiebreak, which differs with
/// the shard count — exactly the nondeterminism the engine exists to rule
/// out. Shard code must use `schedule_keyed`/`schedule_keyed_in`.
pub fn shard_merge_order(tokens: &[Token], file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if let Some(method) = dot_call(tokens, i, &["schedule", "schedule_in"]) {
            out.push(Finding::new(
                SHARD_MERGE_ORDER,
                file,
                tokens[i + 1].line,
                format!(
                    "`.{method}(…)` schedules without a content-derived key — inside the \
                     sharded engine ties would break by insertion order, which varies with \
                     the shard count; use `schedule_keyed`/`schedule_keyed_in`"
                ),
            ));
        }
    }
    out
}

/// `shard-rng-label` (sharded-engine files only): flags `.stream(…)` and
/// `StreamRng::derive(…)`. A stream shared across entities is consumed in
/// event-processing order, which interleaves differently per shard count;
/// shard code must derive one stream per entity via
/// `RngDirectory::indexed_stream` so every draw sequence is owned by
/// exactly one entity regardless of partitioning.
pub fn shard_rng_label(tokens: &[Token], file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if dot_call(tokens, i, &["stream"]).is_some() {
            out.push(Finding::new(
                SHARD_RNG_LABEL,
                file,
                tokens[i + 1].line,
                "`.stream(…)` derives a shared RNG stream — its consumption order depends \
                 on the shard count; shard code must use `indexed_stream` (one stream per \
                 entity)"
                    .to_string(),
            ));
        }
        if tokens[i].is_ident("StreamRng")
            && path_sep(tokens, i + 1)
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("derive"))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            out.push(Finding::new(
                SHARD_RNG_LABEL,
                file,
                tokens[i].line,
                "`StreamRng::derive(…)` bypasses the per-entity stream discipline — shard \
                 code must go through `RngDirectory::indexed_stream`"
                    .to_string(),
            ));
        }
    }
    out
}

/// `shard-state-isolation` (sharded-engine files outside the coordinator
/// seam): flags `.write(…)`. Workers replicate the shared `Medium` /
/// `NetLayer` behind `RwLock`s and may only read them; every mutation
/// (mobility tick, route refresh) happens on the coordinator at a window
/// barrier, in the seam module (`stack/shard/mod.rs`). A write lock taken
/// from worker code would race the other shards' reads mid-window.
/// Mailbox/report `.lock()`s are deliberately not flagged.
pub fn shard_state_isolation(tokens: &[Token], file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if dot_call(tokens, i, &["write"]).is_some() {
            out.push(Finding::new(
                SHARD_STATE_ISOLATION,
                file,
                tokens[i + 1].line,
                "`.write(…)` takes a write lock on replicated shared state — mutations \
                 belong to the coordinator barrier in `stack/shard/mod.rs`; workers may \
                 only `.read()` between barriers"
                    .to_string(),
            ));
        }
    }
    out
}

/// The frame types whose `.clone()` deep-copies payload state. `Packet` is
/// deliberately absent: its clone is a header copy plus an `Arc` refcount
/// bump on the pooled body — the sanctioned cheap fan-out — and `Arc<Frame>`
/// handles never match the binding shapes below, so refcount bumps are
/// never flagged either.
const FRAME_TYPES: &[&str] = &["Frame", "DataFrame", "AckFrame", "Subframe", "RxFrame"];

/// Identifiers bound to a frame type: the annotation/constructor shapes of
/// [`typed_names`], plus single-ident variant patterns `Frame::Data(x)` /
/// `Frame::Ack(x)` — the shape both engines use to name a received frame's
/// payload in match arms and if-lets.
fn frame_bound_names(tokens: &[Token]) -> BTreeSet<String> {
    let mut names = typed_names(tokens, FRAME_TYPES);
    for i in 0..tokens.len() {
        if tokens[i].is_ident("Frame")
            && path_sep(tokens, i + 1)
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("Data") || t.is_ident("Ack"))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 5).is_some_and(|t| t.kind == TokKind::Ident)
            && tokens.get(i + 6).is_some_and(|t| t.is_punct(')'))
        {
            names.insert(tokens[i + 5].text.clone());
        }
    }
    names
}

/// `no-frame-deep-clone` (deterministic crates only): flags `.clone()` on a
/// binding typed as a frame (`Frame`/`DataFrame`/`AckFrame`/`Subframe`/
/// `RxFrame`). The zero-copy receive path shares one broadcast allocation
/// by `Arc` across every receiver; a deep frame clone anywhere else defeats
/// it silently — throughput sags but every test stays green. The one
/// legitimate copy is the corruption seam (`stack/decode.rs`), which is
/// waived inline. Field access through a frame binding (`sf.packet.clone()`)
/// is not flagged: `Packet` clones are shallow by design.
pub fn no_frame_deep_clone(tokens: &[Token], file: &str) -> Vec<Finding> {
    let tracked = frame_bound_names(tokens);
    if tracked.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if dot_call(tokens, i, &["clone"]).is_some()
            && i >= 1
            && tokens[i - 1].kind == TokKind::Ident
            && tracked.contains(&tokens[i - 1].text)
        {
            let recv = &tokens[i - 1].text;
            out.push(Finding::new(
                NO_FRAME_DEEP_CLONE,
                file,
                tokens[i + 1].line,
                format!(
                    "`{recv}.clone()` deep-copies a frame — receivers share the broadcast \
                     allocation by `Arc` (`RxFrame::Shared`); only the corruption seam in \
                     `stack/decode.rs` may copy, under an inline waiver"
                ),
            ));
        }
    }
    out
}

/// Function names that run once per dispatched event: the `MacEntity` trait
/// handlers (MACs also implement same-named inherent helpers) plus both
/// engines' per-event handlers — everything reachable from one dispatch
/// step. Setup fns (`build`, `new`) and result collection are deliberately
/// absent: pre-sizing at construction time is the sanctioned place to
/// allocate.
const HOT_HANDLERS: &[&str] = &[
    // MacEntity trait surface.
    "on_enqueue",
    "on_busy",
    "on_idle",
    "on_frame_rx",
    "on_tx_end",
    "on_timer",
    // Engine per-event handlers (conservative and sharded).
    "dispatch",
    "apply_mac_actions",
    "start_transmission",
    "handle_delivery",
    "broadcast",
    "apply_bit_errors",
];

/// `hot-path-vec-new` (deterministic crates only): flags `Vec::new()` and
/// `vec![…]` inside `impl … MacEntity for …` bodies and inside the named
/// per-event handlers of `HOT_HANDLERS`. The steady-state allocation
/// budget (`ci/alloc_budget.json`) holds because those paths reuse pooled
/// buffers (`SlotPool`/`FramePool`) and drained sinks (`ActionSink`); a
/// fresh `Vec` there reintroduces per-frame churn that no functional test
/// notices — only the bench gate does, long after the PR that caused it.
/// Cold-path allocation (constructors, setup, result collection) is fine
/// and out of scope.
pub fn hot_path_vec_new(tokens: &[Token], file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    // Region tracking: one entry per `{`, true when that brace opens a
    // MacEntity impl body or a hot handler's fn body. Nested braces push
    // `false` but `hot_depth` keeps the region hot until its own `}` pops.
    let mut stack: Vec<bool> = Vec::new();
    let mut hot_depth = 0usize;
    let mut pending_fn_hot = false;
    // Between `impl` and its `{`: does the header name the MacEntity trait?
    let mut impl_header = false;
    let mut impl_macentity = false;
    let mut impl_for = false;
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Ident if t.text == "impl" => {
                impl_header = true;
                impl_macentity = false;
                impl_for = false;
            }
            TokKind::Ident if t.text == "fn" => {
                pending_fn_hot = tokens.get(i + 1).is_some_and(|n| {
                    n.kind == TokKind::Ident && HOT_HANDLERS.contains(&n.text.as_str())
                });
            }
            TokKind::Ident if impl_header && t.text == "MacEntity" => impl_macentity = true,
            TokKind::Ident if impl_header && t.text == "for" => impl_for = true,
            // A trait-method declaration (`fn on_idle(…);`) has no body.
            TokKind::Punct(';') => pending_fn_hot = false,
            TokKind::Punct('{') => {
                let hot = std::mem::take(&mut pending_fn_hot)
                    || (impl_header && impl_macentity && impl_for);
                impl_header = false;
                stack.push(hot);
                hot_depth += usize::from(hot);
            }
            TokKind::Punct('}') => {
                if let Some(was) = stack.pop() {
                    hot_depth -= usize::from(was);
                }
            }
            _ => {}
        }
        if hot_depth == 0 {
            continue;
        }
        if t.is_ident("Vec")
            && path_sep(tokens, i + 1)
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("new"))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            out.push(Finding::new(
                HOT_PATH_VEC_NEW,
                file,
                t.line,
                "`Vec::new()` allocates inside a per-event handler — steady-state MAC and \
                 engine code reuses pooled buffers (`SlotPool`/`FramePool`) or a drained \
                 `ActionSink`; allocate in the constructor and recycle here"
                    .to_string(),
            ));
        }
        if t.is_ident("vec") && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            out.push(Finding::new(
                HOT_PATH_VEC_NEW,
                file,
                t.line,
                "`vec![…]` allocates inside a per-event handler — steady-state MAC and \
                 engine code reuses pooled buffers (`SlotPool`/`FramePool`) or a drained \
                 `ActionSink`; allocate in the constructor and recycle here"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_items};

    fn run<F>(src: &str, rule: F) -> Vec<Finding>
    where
        F: Fn(&[Token], &str) -> Vec<Finding>,
    {
        let tokens = strip_test_items(lex(src).tokens);
        rule(&tokens, "test.rs")
    }

    #[test]
    fn hash_iter_flags_methods_on_annotated_fields() {
        let src = "
            struct S { table: HashMap<u32, u32> }
            impl S {
                fn bad(&mut self) {
                    for v in self.table.values() { use_it(v); }
                }
            }
        ";
        let found = run(src, no_hash_iter);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("values"));
    }

    #[test]
    fn hash_iter_flags_for_loops_and_constructor_bindings() {
        let src = "
            fn f() {
                let mut seen = std::collections::HashSet::new();
                for x in &seen { touch(x); }
            }
        ";
        let found = run(src, no_hash_iter);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("for … in &seen"), "{}", found[0].message);
    }

    #[test]
    fn hash_iter_allows_keyed_access_and_btree_iteration() {
        let src = "
            fn f(m: &mut HashMap<u32, u32>, b: &BTreeMap<u32, u32>) {
                m.insert(1, 2);
                let _ = m.get(&1);
                m.remove(&1);
                m.entry(3).or_default();
                for (k, v) in b.iter() { use_it(k, v); }
                for x in 0..m.len() { use_it(x); }
            }
        ";
        assert!(run(src, no_hash_iter).is_empty());
    }

    #[test]
    fn hash_iter_ignores_vecs_named_like_maps() {
        let src = "
            fn f(pending: &mut Vec<u32>, set: HashSet<u32>) {
                for p in pending.drain(..) { use_it(p); }
                let _ = set.contains(&1);
            }
        ";
        assert!(run(src, no_hash_iter).is_empty());
    }

    #[test]
    fn wall_clock_flags_instant_now_and_system_time() {
        let found = run("fn f() { let t = Instant::now(); }", no_wall_clock);
        assert_eq!(found.len(), 1);
        let found = run("fn f() -> SystemTime { SystemTime::now() }", no_wall_clock);
        assert_eq!(found.len(), 2, "both mentions: {found:?}");
        // `Instant` as a stored type alone is not a read.
        assert!(run("struct T { at: Instant }", no_wall_clock).is_empty());
    }

    #[test]
    fn nondet_std_flags_the_forbidden_surface() {
        let src = "
            fn f() {
                thread::sleep(d);
                let p = std::process::id();
                let h: RandomState = RandomState::new();
                let v = std::env::var(\"X\");
            }
        ";
        let found = run(src, no_nondet_std);
        let rules: Vec<&str> = found.iter().map(|f| f.rule).collect();
        assert_eq!(rules.len(), 5, "sleep, id, 2x RandomState, env::var: {found:?}");
    }

    #[test]
    fn nondet_std_exempts_from_env() {
        let src = "
            impl ExpConfig {
                pub fn from_env() -> Self {
                    let v = std::env::var(\"RIPPLE_REPRO\").ok();
                    Self { v }
                }
            }
            fn elsewhere() { let _ = std::env::var(\"X\"); }
        ";
        let found = run(src, no_nondet_std);
        assert_eq!(found.len(), 1, "only the read outside from_env: {found:?}");
        assert!(found[0].message.contains("env::var"));
    }

    #[test]
    fn shard_merge_order_flags_unkeyed_scheduling_only() {
        let src = "
            fn f(q: &mut KeyedEventQueue<Event>) {
                q.schedule(t, ev);
                q.schedule_in(d, ev);
                q.schedule_keyed(t, key, ev);
                q.schedule_keyed_in(d, key, ev);
            }
        ";
        let found = run(src, shard_merge_order);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].message.contains("schedule_keyed"));
    }

    #[test]
    fn shard_rng_label_flags_shared_streams_and_raw_derives() {
        let src = "
            fn f(dir: &RngDirectory) {
                let a = dir.stream(\"medium\");
                let b = StreamRng::derive(seed, \"x/y\");
                let c = dir.indexed_stream(\"shard/medium\", 3);
            }
        ";
        let found = run(src, shard_rng_label);
        assert_eq!(found.len(), 2, "indexed_stream is the sanctioned form: {found:?}");
    }

    #[test]
    fn shard_state_isolation_flags_write_locks_not_mutex_locks() {
        let src = "
            fn f(m: &RwLock<Medium>, mailbox: &Mutex<Vec<u32>>) {
                let r = m.read().unwrap();
                let w = m.write().unwrap();
                let q = mailbox.lock().unwrap();
            }
        ";
        let found = run(src, shard_state_isolation);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("coordinator barrier"));
    }

    #[test]
    fn frame_deep_clone_flags_typed_and_pattern_bindings() {
        let src = "
            fn f(frame: &Frame, sf: &Subframe) -> Frame {
                match frame {
                    Frame::Data(d) => relay(d.clone()),
                    Frame::Ack(a) => echo(a.clone()),
                }
                stash(sf.clone());
                frame.clone()
            }
        ";
        let found = run(src, no_frame_deep_clone);
        assert_eq!(found.len(), 4, "{found:?}");
        assert!(found.iter().all(|f| f.message.contains("deep-copies")));
    }

    #[test]
    fn frame_deep_clone_allows_arc_handles_and_packet_fields() {
        let src = "
            fn f(af: &Arc<Frame>, sf: &Subframe, route: &RouteInfo) {
                let shared = Arc::clone(af);
                let handle = af.clone();
                let p = sf.packet.clone();
                let r = route.clone();
            }
        ";
        assert!(run(src, no_frame_deep_clone).is_empty());
    }

    #[test]
    fn hot_path_vec_new_flags_mac_entity_impl_bodies() {
        let src = "
            impl wmn_mac::MacEntity for DcfMac {
                fn on_frame_rx(&mut self, now: SimTime, rx: &RxFrame, sink: &mut ActionSink) {
                    let mut acks = Vec::new();
                    let seqs = vec![1, 2, 3];
                    use_it(acks, seqs);
                }
            }
        ";
        let found = run(src, hot_path_vec_new);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found[0].message.contains("Vec::new()"));
        assert!(found[1].message.contains("vec![…]"));
    }

    #[test]
    fn hot_path_vec_new_flags_named_engine_handlers() {
        let src = "
            impl Runner {
                fn handle_delivery(&mut self, node: NodeId, packet: Packet) {
                    let mut staged = Vec::new();
                    use_it(staged);
                }
                fn dispatch(&mut self, event: Event) {
                    if deep { let nested = vec![event]; use_it(nested); }
                }
            }
        ";
        let found = run(src, hot_path_vec_new);
        assert_eq!(found.len(), 2, "nested braces stay hot: {found:?}");
    }

    #[test]
    fn hot_path_vec_new_allows_constructors_and_cold_impls() {
        let src = "
            impl DcfMac {
                pub fn new(cfg: DcfConfig) -> DcfMac {
                    DcfMac { timer_roles: Vec::new(), pending: vec![] }
                }
            }
            impl Scheme for Dcf {
                fn build_mac(&self) -> Box<dyn MacEntity> {
                    let seeds = Vec::new();
                    make(seeds)
                }
            }
            fn results() -> Vec<u32> { vec![1, 2] }
        ";
        assert!(run(src, hot_path_vec_new).is_empty());
    }

    #[test]
    fn hot_path_vec_new_trait_decl_without_body_does_not_leak() {
        // The `fn on_idle(…);` declaration has no body — its trailing `;`
        // must clear the pending-hot flag so the *next* brace (a cold fn)
        // is not misattributed.
        let src = "
            trait MacEntity {
                fn on_idle(&mut self, now: SimTime, sink: &mut ActionSink);
            }
            fn cold() { let v = Vec::new(); use_it(v); }
        ";
        assert!(run(src, hot_path_vec_new).is_empty());
    }

    #[test]
    fn commented_out_triggers_never_fire() {
        let src = "
            // for v in self.table.values() {}
            /* Instant::now(); thread::sleep(d); */
            fn f() { let s = \"env::var RandomState SystemTime\"; }
        ";
        assert!(run(src, no_hash_iter).is_empty());
        assert!(run(src, no_wall_clock).is_empty());
        assert!(run(src, no_nondet_std).is_empty());
    }
}
