//! Machine-readable lint report, in the same hand-rolled JSON dialect as
//! every other artefact this repo emits (`wmn_exec::json`): insertion-
//! ordered keys, byte-stable pretty printing, so two runs over the same
//! tree produce identical bytes and CI can archive the report as an
//! artifact without diff noise.

use wmn_exec::json::Value;

use crate::rules::Finding;
use crate::Analysis;

fn finding_json(f: &Finding) -> Value {
    let mut v = Value::obj()
        .with("rule", f.rule)
        .with("file", f.file.as_str())
        .with("line", u64::from(f.line))
        .with("message", f.message.as_str());
    if let Some(reason) = &f.waive_reason {
        v = v.with("waived_because", reason.as_str());
    }
    v
}

/// Renders the full analysis as a JSON document.
///
/// Shape: `schema`, `files_scanned`, `registry_fresh`, counts, then the
/// sorted `findings` and `waived` arrays. Every waiver in the tree appears
/// under `waived` with its written reason — the report is the audit trail
/// for the whole exception list.
pub fn report_json(analysis: &Analysis) -> Value {
    Value::obj()
        .with("schema", 1u64)
        .with("tool", "wmn_lint")
        .with("files_scanned", analysis.files_scanned)
        .with("registry_fresh", analysis.registry_fresh)
        .with("finding_count", analysis.findings.len())
        .with("waived_count", analysis.waived.len())
        .with("findings", Value::Arr(analysis.findings.iter().map(finding_json).collect()))
        .with("waived", Value::Arr(analysis.waived.iter().map(finding_json).collect()))
}

/// The on-disk report text (trailing newline included).
pub fn report_text(analysis: &Analysis) -> String {
    format!("{}\n", report_json(analysis))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_and_carries_reasons() {
        let mut f = Finding::new(crate::rules::NO_WALL_CLOCK, "a.rs", 3, "msg".to_string());
        let mut w = Finding::new(crate::rules::NO_HASH_ITER, "b.rs", 7, "msg2".to_string());
        w.waive_reason = Some("copied and sorted".to_string());
        f.message = "reads the clock".to_string();
        let analysis = Analysis {
            files_scanned: 2,
            findings: vec![f],
            waived: vec![w],
            registry: String::new(),
            registry_fresh: true,
        };
        let text = report_text(&analysis);
        let doc = wmn_exec::json::parse(&text).expect("report must parse");
        assert_eq!(doc.get("finding_count").and_then(Value::as_u64), Some(1));
        let waived = doc.get("waived").and_then(Value::as_arr).unwrap();
        assert_eq!(
            waived[0].get("waived_because").and_then(Value::as_str),
            Some("copied and sorted")
        );
        // Byte-stable: rendering twice is identical.
        assert_eq!(text, report_text(&analysis));
    }
}
