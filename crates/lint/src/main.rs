//! CLI for the workspace determinism linter.
//!
//! ```text
//! cargo run -p wmn_lint                          # report findings, exit 0
//! cargo run -p wmn_lint -- --check               # exit 1 on any finding
//! cargo run -p wmn_lint -- --update-registry     # rewrite ci/rng_labels.json
//! cargo run -p wmn_lint -- --report out.json     # also write the JSON report
//! cargo run -p wmn_lint -- --root ../elsewhere   # lint another checkout
//! ```
//!
//! Exit codes: `0` clean (or informational run), `1` findings under
//! `--check`, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use wmn_lint::report::report_text;
use wmn_lint::{analyze_workspace, Analysis, REGISTRY_PATH};

struct Cli {
    root: PathBuf,
    check: bool,
    update_registry: bool,
    report: Option<PathBuf>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli =
        Cli { root: PathBuf::from("."), check: false, update_registry: false, report: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => cli.check = true,
            "--update-registry" => cli.update_registry = true,
            "--root" => {
                cli.root = PathBuf::from(args.next().ok_or("--root needs a directory argument")?);
            }
            "--report" => {
                cli.report =
                    Some(PathBuf::from(args.next().ok_or("--report needs a path argument")?));
            }
            "--help" | "-h" => {
                return Err("usage: wmn_lint [--check] [--update-registry] \
                            [--report PATH] [--root DIR]"
                    .to_string());
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(cli)
}

fn print_summary(analysis: &Analysis) {
    for f in &analysis.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if !analysis.waived.is_empty() {
        println!("-- {} waived finding(s):", analysis.waived.len());
        for f in &analysis.waived {
            println!(
                "{}:{}: [{}] waived: {}",
                f.file,
                f.line,
                f.rule,
                f.waive_reason.as_deref().unwrap_or("")
            );
        }
    }
    println!(
        "wmn_lint: {} file(s) scanned, {} finding(s), {} waived, registry {}",
        analysis.files_scanned,
        analysis.findings.len(),
        analysis.waived.len(),
        if analysis.registry_fresh { "fresh" } else { "STALE" }
    );
}

fn run() -> Result<u8, String> {
    let cli = parse_args()?;
    if cli.update_registry {
        // Two passes: write the regenerated registry first, then re-analyse
        // so the staleness finding reflects the tree being committed.
        let pre = analyze_workspace(&cli.root).map_err(|e| format!("scan failed: {e}"))?;
        let path = cli.root.join(REGISTRY_PATH);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        }
        std::fs::write(&path, &pre.registry).map_err(|e| format!("cannot write registry: {e}"))?;
        println!("wmn_lint: wrote {}", path.display());
    }
    let analysis = analyze_workspace(&cli.root).map_err(|e| format!("scan failed: {e}"))?;
    if let Some(report) = &cli.report {
        std::fs::write(report, report_text(&analysis))
            .map_err(|e| format!("cannot write report {report:?}: {e}"))?;
    }
    print_summary(&analysis);
    Ok(if cli.check && !analysis.findings.is_empty() { 1 } else { 0 })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(msg) => {
            eprintln!("wmn_lint: {msg}");
            ExitCode::from(2)
        }
    }
}
