//! A lightweight Rust lexer, just deep enough for determinism linting.
//!
//! The rules in this crate must never fire on text inside comments, doc
//! comments, or string/char literals — a commented-out `map.iter()` or a
//! log message mentioning `Instant::now` is not a finding. This lexer
//! therefore classifies exactly the token shapes that matter:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments;
//! * string-ish literals: `"…"` (with escapes), raw strings `r"…"` /
//!   `r#"…"#` (any number of hashes), byte strings `b"…"` / `br#"…"#`,
//!   C strings `c"…"` / `cr#"…"#`, char literals `'x'` / `'\n'`, and the
//!   char-vs-lifetime ambiguity (`'a'` is a char, `'a` in `&'a str` is a
//!   lifetime);
//! * identifiers (including raw identifiers `r#type`), numbers, and
//!   single-character punctuation (so `::` is two `:` tokens — the rule
//!   matchers join them back up).
//!
//! Line comments are additionally scanned for inline waivers of the form
//! `// lint:allow(<rule>): <reason>`; see [`Waiver`].

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `r#type`, …).
    Ident,
    /// A string-ish literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`). The token
    /// text is the *source* content between the delimiters, escapes
    /// unprocessed.
    Str,
    /// A char literal (`'x'`, `'\n'`). Content is not preserved.
    Char,
    /// A numeric literal (`42`, `0xF00F`, `1.5e-3`, `2u64`).
    Num,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// A single punctuation character.
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token class.
    pub kind: TokKind,
    /// Identifier/number/string-content text (empty for punctuation).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Is this the identifier `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// An inline waiver comment: `// lint:allow(<rule>): <reason>`.
///
/// A waiver suppresses findings of `rule` on its own line and on the line
/// directly below it (so it can sit on the offending line or just above).
/// The reason is mandatory; waivers with an empty reason are reported as
/// `waiver` findings and suppress nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The rule being waived.
    pub rule: String,
    /// The (non-empty) justification.
    pub reason: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens, in source order. Comments are dropped.
    pub tokens: Vec<Token>,
    /// Well-formed waivers found in line comments.
    pub waivers: Vec<Waiver>,
    /// Malformed waivers: `(line, problem)`. Always findings, never
    /// suppressions.
    pub bad_waivers: Vec<(u32, String)>,
}

/// Lexes `src` into tokens and waiver comments. Never fails: unterminated
/// literals or comments simply end at end-of-file.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer { b: src.as_bytes(), src, pos: 0, line: 1, out: Lexed::default() };
    lx.run();
    lx.out
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Lexed,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek(0)?;
        if c == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: &str, line: u32) {
        self.out.tokens.push(Token { kind, text: text.to_string(), line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_string(),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct(c as char), "", line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos + 2;
        while let Some(c) = self.peek(0) {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        let body = &self.src[start.min(self.src.len())..self.pos];
        parse_waiver(body, line, &mut self.out);
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Cooked string starting at the opening quote: `"…"` with `\` escapes.
    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        let start = self.pos;
        loop {
            match self.peek(0) {
                None => break,
                Some(b'"') => break,
                Some(b'\\') => {
                    self.bump();
                    self.bump(); // the escaped char (enough: `\"` and `\\`)
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let content = self.src[start..self.pos].to_string();
        self.bump(); // closing quote
        self.out.tokens.push(Token { kind: TokKind::Str, text: content, line });
    }

    /// Raw string starting at the first `#` or the quote: `#*"…"#*`.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let start = self.pos;
        let end;
        loop {
            match self.peek(0) {
                None => {
                    end = self.pos;
                    break;
                }
                Some(b'"') => {
                    let candidate = self.pos;
                    let tail = &self.b[self.pos + 1..];
                    if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                        self.bump(); // quote
                        for _ in 0..hashes {
                            self.bump();
                        }
                        end = candidate;
                        break;
                    }
                    self.bump();
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let content = self.src[start..end].to_string();
        self.out.tokens.push(Token { kind: TokKind::Str, text: content, line });
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        match self.peek(0) {
            // `'\n'`, `'\u{41}'`: definitely a char literal.
            Some(b'\\') => {
                self.bump();
                self.bump();
                // Consume to the closing quote (covers `\u{…}`).
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == b'\'' {
                        break;
                    }
                }
                self.push(TokKind::Char, "", line);
            }
            // `'a'` is a char; `'a` (no closing quote) is a lifetime.
            Some(c) if is_ident_start(c) => {
                if self.peek(1) == Some(b'\'') && !is_ident_cont(self.peek(2).unwrap_or(b' ')) {
                    self.bump();
                    self.bump();
                    self.push(TokKind::Char, "", line);
                } else {
                    while matches!(self.peek(0), Some(c) if is_ident_cont(c)) {
                        self.bump();
                    }
                    self.push(TokKind::Lifetime, "", line);
                }
            }
            // `'('`, `'9'` and friends.
            Some(_) => {
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::Char, "", line);
            }
            None => self.push(TokKind::Char, "", line),
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                // `1e-3` / `1E+3`: the sign belongs to the number.
                let was_exp =
                    (c == b'e' || c == b'E') && !self.src[start..self.pos].starts_with("0x");
                self.bump();
                if was_exp
                    && matches!(self.peek(0), Some(b'+' | b'-'))
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit())
                {
                    self.bump();
                }
            } else if c == b'.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                self.bump();
            } else {
                break;
            }
        }
        let text = self.src[start..self.pos].to_string();
        self.out.tokens.push(Token { kind: TokKind::Num, text, line });
    }

    fn ident_or_prefixed_string(&mut self) {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(0), Some(c) if is_ident_cont(c)) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        // Raw identifier `r#type`: the `r` was consumed as an ident; a `#`
        // followed by an ident-start continues it.
        if text == "r"
            && self.peek(0) == Some(b'#')
            && matches!(self.peek(1), Some(c) if is_ident_start(c))
        {
            self.bump(); // '#'
            let raw_start = self.pos;
            while matches!(self.peek(0), Some(c) if is_ident_cont(c)) {
                self.bump();
            }
            let name = self.src[raw_start..self.pos].to_string();
            self.out.tokens.push(Token { kind: TokKind::Ident, text: name, line });
            return;
        }
        // String prefixes: r"", r#"", b"", br#"", c"", cr#"".
        match text {
            "r" | "br" | "cr" if matches!(self.peek(0), Some(b'"' | b'#')) => {
                self.raw_string();
                return;
            }
            "b" | "c" if self.peek(0) == Some(b'"') => {
                self.string();
                return;
            }
            _ => {}
        }
        let text = text.to_string();
        self.out.tokens.push(Token { kind: TokKind::Ident, text, line });
    }
}

/// Scans a line-comment body for the waiver grammar.
fn parse_waiver(body: &str, line: u32, out: &mut Lexed) {
    let trimmed = body.trim_start();
    let Some(rest) = trimmed.strip_prefix("lint:allow") else {
        return;
    };
    let Some(rest) = rest.strip_prefix('(') else {
        out.bad_waivers.push((line, "expected `(` after `lint:allow`".to_string()));
        return;
    };
    let Some(close) = rest.find(')') else {
        out.bad_waivers.push((line, "unclosed `lint:allow(` waiver".to_string()));
        return;
    };
    let rule = rest[..close].trim().to_string();
    let tail = &rest[close + 1..];
    let Some(reason) = tail.trim_start().strip_prefix(':') else {
        out.bad_waivers
            .push((line, format!("waiver for `{rule}` is missing the `: <reason>` part")));
        return;
    };
    let reason = reason.trim().to_string();
    if reason.is_empty() {
        out.bad_waivers.push((
            line,
            format!("waiver for `{rule}` has an empty reason — a justification is mandatory"),
        ));
        return;
    }
    out.waivers.push(Waiver { line, rule, reason });
}

/// Removes every item annotated `#[cfg(test)]` (and the annotation itself)
/// from the token stream.
///
/// Test modules exercise nondeterminism freely (temp dirs, duplicate RNG
/// labels, hash-map probes); the determinism contract only binds shipped
/// code, so the rules run on the stripped stream. The scan understands
/// `#[cfg(test)] mod … { … }`, `#[cfg(test)] fn … { … }`, and
/// `#[cfg(test)] use …;` shapes: the attribute, any further attributes, and
/// one following item (up to its matching `}` or a top-level `;`) are
/// dropped. `#![…]` inner attributes are never treated as item annotations.
pub fn strip_test_items(tokens: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (end, is_test) = scan_attr(&tokens, i + 1);
            if is_test {
                i = skip_item(&tokens, end);
                continue;
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Scans the bracketed attribute starting at the `[` at `open`. Returns the
/// index just past the matching `]` and whether the attribute marks a
/// test-only item: `#[cfg(test)]` / `#[cfg(all(test, …))]` (but NOT
/// `#[cfg(not(test))]`, which marks a *shipped* item, nor `#[cfg_attr(test,
/// …)]`, which only conditions other attributes), or a bare `#[test]`.
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut inner = 0usize;
    let mut first_ident = None;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokKind::Punct('[') | TokKind::Punct('(') => depth += 1,
            TokKind::Punct(']') | TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    let bare_test = inner == 1 && first_ident == Some("test");
                    return (i + 1, (saw_cfg && saw_test && !saw_not) || bare_test);
                }
            }
            TokKind::Ident => {
                if inner == 0 {
                    first_ident = Some(tokens[i].text.as_str());
                }
                inner += 1;
                saw_cfg |= t.text == "cfg";
                saw_test |= t.text == "test";
                saw_not |= t.text == "not";
            }
            _ => inner += 1,
        }
        i += 1;
    }
    (i, false)
}

/// Skips one item starting at `i`: leading attributes, then everything up
/// to and including its body `{…}` or terminating `;`.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let (end, _) = scan_attr(tokens, i + 1);
        i = end;
    }
    let mut depth = 0i32;
    while i < tokens.len() {
        match tokens[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') => {
                // The item body: skip to its matching brace.
                let mut braces = 1i32;
                i += 1;
                while i < tokens.len() && braces > 0 {
                    match tokens[i].kind {
                        TokKind::Punct('{') => braces += 1,
                        TokKind::Punct('}') => braces -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            TokKind::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn line_comments_are_dropped() {
        assert_eq!(idents("let x = 1; // map.iter() HashMap"), vec!["let", "x"]);
        assert_eq!(idents("/// doc Instant::now\nfn f() {}"), vec!["fn", "f"]);
        assert_eq!(idents("//! inner doc SystemTime\nfn f() {}"), vec!["fn", "f"]);
    }

    #[test]
    fn block_comments_nest() {
        assert_eq!(idents("/* a /* nested */ still comment */ fn f() {}"), vec!["fn", "f"]);
        // Unterminated comment swallows the rest without panicking.
        assert_eq!(idents("fn f() {} /* open"), vec!["fn", "f"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let lexed = lex(r#"let s = "map.iter() // not a comment";"#);
        let strs: Vec<&Token> = lexed.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "map.iter() // not a comment");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("iter")));
    }

    #[test]
    fn escaped_quotes_do_not_terminate_strings() {
        let lexed = lex(r#"let s = "a\"b\\"; let t = 1;"#);
        assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r###"let s = r#"quote " inside"#; let u = 2;"###);
        let s: Vec<&Token> = lexed.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(s[0].text, "quote \" inside");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("u")));
    }

    #[test]
    fn byte_and_c_strings() {
        assert!(kinds(r#"b"bytes""#).contains(&TokKind::Str));
        assert!(kinds(r##"br#"raw bytes"#"##).contains(&TokKind::Str));
        assert!(kinds(r#"c"cstr""#).contains(&TokKind::Str));
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokKind::Char]);
        assert_eq!(kinds("'\\n'"), vec![TokKind::Char]);
        assert_eq!(kinds("'\\u{41}'"), vec![TokKind::Char]);
        let ks = kinds("&'a str");
        assert!(ks.contains(&TokKind::Lifetime), "{ks:?}");
        assert!(!ks.contains(&TokKind::Char));
        let ks = kinds("&'static str");
        assert!(ks.contains(&TokKind::Lifetime));
        // `'_'` is the underscore char; `'_` alone is a lifetime.
        assert_eq!(kinds("'_'"), vec![TokKind::Char]);
        assert_eq!(kinds("&'_ str")[1], TokKind::Lifetime);
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("r#type"), vec!["type"]);
        // …and `r` alone stays an ident, not a string prefix.
        assert_eq!(idents("r + 1"), vec!["r"]);
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            kinds("1..5"),
            vec![TokKind::Num, TokKind::Punct('.'), TokKind::Punct('.'), TokKind::Num]
        );
        let lexed = lex("1.5e-3 0xF00F 1_000u64");
        let nums: Vec<String> =
            lexed.tokens.into_iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text).collect();
        assert_eq!(nums, vec!["1.5e-3", "0xF00F", "1_000u64"]);
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("fn a() {}\n\nfn b() {}\n");
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn waiver_well_formed() {
        let lexed = lex("let x = 1; // lint:allow(no-hash-iter): stable keyed lookup only\n");
        assert_eq!(lexed.waivers.len(), 1);
        assert_eq!(lexed.waivers[0].rule, "no-hash-iter");
        assert_eq!(lexed.waivers[0].reason, "stable keyed lookup only");
        assert!(lexed.bad_waivers.is_empty());
    }

    #[test]
    fn waiver_missing_reason_is_flagged() {
        let lexed = lex("// lint:allow(no-wall-clock):\nlet t = 1;");
        assert!(lexed.waivers.is_empty());
        assert_eq!(lexed.bad_waivers.len(), 1);
        assert!(lexed.bad_waivers[0].1.contains("empty reason"), "{:?}", lexed.bad_waivers);
        let lexed = lex("// lint:allow(no-wall-clock) missing colon\n");
        assert_eq!(lexed.bad_waivers.len(), 1);
    }

    #[test]
    fn strip_removes_test_modules() {
        let src = "
            fn real() { map.iter(); }
            #[cfg(test)]
            mod tests {
                fn helper() { other.keys(); }
            }
            fn after() {}
        ";
        let toks = strip_test_items(lex(src).tokens);
        let names: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        assert!(names.contains(&"real"));
        assert!(names.contains(&"after"));
        assert!(!names.contains(&"helper"));
        assert!(!names.contains(&"keys"));
    }

    #[test]
    fn strip_handles_attr_stacks_and_semicolon_items() {
        let src = "
            #[cfg(test)]
            #[allow(dead_code)]
            fn gone() {}
            #[cfg(test)]
            use std::collections::HashMap;
            #[cfg(all(test, feature = \"x\"))]
            fn also_gone() {}
            #[derive(Debug)]
            struct Kept;
        ";
        let toks = strip_test_items(lex(src).tokens);
        let names: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        assert!(!names.contains(&"gone"));
        assert!(!names.contains(&"also_gone"));
        assert!(!names.contains(&"HashMap"));
        assert!(names.contains(&"Kept"));
    }

    #[test]
    fn strip_spares_not_test_and_cfg_attr_but_takes_bare_test() {
        let src = "
            #[cfg(not(test))]
            fn shipped() {}
            #[cfg_attr(test, allow(dead_code))]
            fn also_shipped() {}
            #[test]
            fn unit() { assert!(true); }
        ";
        let toks = strip_test_items(lex(src).tokens);
        let names: Vec<&str> =
            toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.as_str()).collect();
        assert!(names.contains(&"shipped"));
        assert!(names.contains(&"also_shipped"));
        assert!(!names.contains(&"unit"));
    }

    #[test]
    fn strip_keeps_inner_attributes() {
        // `#![cfg(test)]` at file top applies to the whole file; stripping
        // "the next item" would be wrong, so inner attrs are left alone.
        let toks = strip_test_items(lex("#![allow(dead_code)] fn kept() {}").tokens);
        assert!(toks.iter().any(|t| t.is_ident("kept")));
    }
}
