//! Workspace source discovery.
//!
//! The linter scans exactly the shipped source set: the root package's
//! `src/` plus every `crates/**/src/` tree. `tests/`, `examples/`,
//! `benches/`, and fixture directories are out of scope — the determinism
//! contract binds what runs inside a simulation, and test code is free to
//! probe nondeterminism on purpose. All directory walks are sorted so the
//! report and the registry come out byte-identical on every filesystem.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file slated for analysis.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Absolute (or root-joined) path for reading.
    pub path: PathBuf,
    /// Repo-relative path with `/` separators, used in findings and reports.
    pub rel: String,
    /// Owning crate: the directory name under `crates/` (`"mac"`,
    /// `"devtools/proptest"`), or `"wmn"` for the root package.
    pub crate_name: String,
}

/// Collects every `.rs` file under the root package's `src/` and each
/// crate's `src/`, sorted by repo-relative path.
///
/// # Errors
///
/// Propagates filesystem errors other than the root simply lacking a `src/`
/// or `crates/` directory.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, root, "wmn", &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for dir in sorted_dirs(&crates)? {
            let name = file_name(&dir);
            if dir.join("src").is_dir() {
                walk_rs(&dir.join("src"), root, &name, &mut out)?;
            } else {
                // One nesting level for grouped crates (crates/devtools/*).
                for sub in sorted_dirs(&dir)? {
                    if sub.join("src").is_dir() {
                        let sub_name = format!("{name}/{}", file_name(&sub));
                        walk_rs(&sub.join("src"), root, &sub_name, &mut out)?;
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn file_name(p: &Path) -> String {
    p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

fn walk_rs(dir: &Path, root: &Path, crate_name: &str, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, root, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile { path, rel, crate_name: crate_name.to_string() });
        }
    }
    Ok(())
}

/// Crates bound by the full determinism contract (their directory names
/// under `crates/`): everything that executes inside a simulated run.
/// `exec`, `bench`, `experiments`, and the devtools shims sit outside the
/// event loop and are exempt from `no-hash-iter` (they still answer to the
/// other rules).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "phy",
    "mac",
    "routing",
    "core",
    "netsim",
    "transport",
    "traffic",
    "topology",
    "metrics",
    "scengen",
];

/// Path prefixes where wall-clock reads are legitimate: the telemetry and
/// harness layer, which reports *about* runs rather than participating in
/// them.
pub const WALL_CLOCK_ALLOWED: &[&str] =
    &["crates/exec/", "crates/bench/", "crates/devtools/", "crates/experiments/src/bin/"];

/// The sharded-engine module: files here answer to the three `shard-*`
/// rules (keyed scheduling, per-entity RNG streams, no write locks outside
/// the seam).
pub const SHARD_MODULE: &str = "crates/netsim/src/stack/shard/";

/// The sharded engine's coordinator seam — the one file where write locks
/// on the replicated shared state are legitimate (mobility/route-refresh
/// barriers run there, between windows, with every worker parked).
pub const SHARD_SEAM: &str = "crates/netsim/src/stack/shard/mod.rs";

/// Per-file rule switches derived from where the file lives.
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleConfig {
    /// Run `no-hash-iter` (deterministic crates only).
    pub deterministic: bool,
    /// Skip `no-wall-clock` (telemetry allowlist).
    pub wall_clock_allowed: bool,
    /// Run the `shard-*` rules (sharded-engine module only).
    pub shard_module: bool,
    /// Skip `shard-state-isolation` (the coordinator seam).
    pub shard_seam: bool,
}

/// Computes the rule switches for a file.
pub fn config_for(rel: &str, crate_name: &str) -> RuleConfig {
    RuleConfig {
        deterministic: DETERMINISTIC_CRATES.contains(&crate_name),
        wall_clock_allowed: WALL_CLOCK_ALLOWED.iter().any(|p| rel.starts_with(p)),
        shard_module: rel.starts_with(SHARD_MODULE),
        shard_seam: rel == SHARD_SEAM,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_classifies_layers() {
        let c = config_for("crates/mac/src/dcf.rs", "mac");
        assert!(c.deterministic);
        assert!(!c.wall_clock_allowed);
        let c = config_for("crates/exec/src/executor.rs", "exec");
        assert!(!c.deterministic);
        assert!(c.wall_clock_allowed);
        // Experiment *binaries* may time themselves; the shared library
        // code in crates/experiments/src/*.rs may not.
        let c = config_for("crates/experiments/src/bin/repro_all.rs", "experiments");
        assert!(c.wall_clock_allowed);
        let c = config_for("crates/experiments/src/common.rs", "experiments");
        assert!(!c.wall_clock_allowed);
        let c = config_for("crates/devtools/criterion/src/lib.rs", "devtools/criterion");
        assert!(c.wall_clock_allowed);
        // The sharded engine: workers get all three shard rules; the
        // coordinator seam keeps them minus the write-lock isolation.
        let c = config_for("crates/netsim/src/stack/shard/worker.rs", "netsim");
        assert!(c.shard_module && !c.shard_seam);
        let c = config_for("crates/netsim/src/stack/shard/mod.rs", "netsim");
        assert!(c.shard_module && c.shard_seam);
        let c = config_for("crates/netsim/src/stack/mod.rs", "netsim");
        assert!(!c.shard_module && !c.shard_seam);
    }

    #[test]
    fn collect_sources_is_sorted_and_scoped_to_src() {
        // The linter's own crate is a convenient self-target.
        let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = collect_sources(manifest.parent().unwrap().parent().unwrap()).unwrap();
        assert!(files.iter().any(|f| f.rel == "crates/lint/src/lexer.rs"));
        assert!(files.iter().all(|f| !f.rel.contains("/tests/")), "tests/ is out of scope");
        assert!(files.iter().all(|f| f.rel.ends_with(".rs")));
        let mut sorted = files.iter().map(|f| f.rel.clone()).collect::<Vec<_>>();
        sorted.sort();
        assert_eq!(sorted, files.iter().map(|f| f.rel.clone()).collect::<Vec<_>>());
        let lint = files.iter().find(|f| f.rel == "crates/lint/src/lexer.rs").unwrap();
        assert_eq!(lint.crate_name, "lint");
        assert!(files.iter().any(|f| f.crate_name == "devtools/proptest"));
    }
}
