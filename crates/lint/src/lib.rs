//! `wmn_lint` — the workspace determinism linter.
//!
//! The repro contract for this repository is *bit-identical results*: the
//! same scenario and seed must produce byte-for-byte the same report on any
//! machine, any worker count, any run. Most of that contract is structural
//! (named RNG streams, an ordered event queue), but three classes of bug
//! can silently break it and still pass every unit test on the machine that
//! introduced them:
//!
//! * observing HashMap/HashSet iteration order (randomised per process),
//! * reading the wall clock or other ambient process state inside a run,
//! * colliding or drifting RNG stream labels.
//!
//! Two further rules guard performance contracts rather than repro ones:
//! `no-frame-deep-clone` keeps the zero-copy receive path honest — a deep
//! frame clone outside the corruption seam reintroduces per-receiver
//! allocations without failing a single functional test — and
//! `hot-path-vec-new` keeps the steady-state allocation budget honest: a
//! `Vec::new()`/`vec![]` inside a `MacEntity` handler or an engine
//! per-event handler reintroduces per-frame churn the pooled-buffer work
//! (`ActionSink`, `SlotPool`) exists to eliminate.
//!
//! This crate enforces those mechanically. It lexes every workspace source
//! file with its own comment/string-aware lexer (no rule ever fires inside
//! a doc comment or a log message), runs the rules in [`rules`], extracts
//! every RNG label into a committed registry (`ci/rng_labels.json`), and
//! emits a machine-readable report. Violations with a genuine reason are
//! waived inline — `// lint:allow(<rule>): <reason>` — and every waiver is
//! listed in the report, so the full set of exceptions is one grep away.
//!
//! The linter is dependency-free by design (the only import is
//! `wmn_exec::json`, the repo's own writer): the tool that guards the
//! workspace must not be breakable by the workspace.

pub mod lexer;
pub mod registry;
pub mod report;
pub mod rules;
pub mod workspace;

use std::fs;
use std::io;
use std::path::Path;

use lexer::{lex, strip_test_items, Waiver};
use registry::{extract_labels, prefix_collisions, registry_text, LabelSite};
use rules::{Finding, RNG_LABEL_REGISTRY, RULES, WAIVER};
use workspace::{collect_sources, config_for, RuleConfig};

/// Where the committed label registry lives, relative to the repo root.
pub const REGISTRY_PATH: &str = "ci/rng_labels.json";

/// The outcome of analysing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Findings that no waiver covered.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a waiver (reason attached).
    pub waived: Vec<Finding>,
    /// RNG label call sites extracted from this file.
    pub labels: Vec<LabelSite>,
}

/// Runs every applicable rule over one file's source text and applies the
/// inline waivers. Registry-level checks (prefix ownership, staleness) need
/// the whole workspace and live in [`analyze_workspace`].
pub fn analyze_source(rel: &str, crate_name: &str, src: &str, cfg: RuleConfig) -> FileAnalysis {
    let lexed = lex(src);
    let tokens = strip_test_items(lexed.tokens);

    let mut findings = Vec::new();
    if cfg.deterministic {
        findings.extend(rules::no_hash_iter(&tokens, rel));
        findings.extend(rules::no_frame_deep_clone(&tokens, rel));
        findings.extend(rules::hot_path_vec_new(&tokens, rel));
    }
    if !cfg.wall_clock_allowed {
        findings.extend(rules::no_wall_clock(&tokens, rel));
    }
    findings.extend(rules::no_nondet_std(&tokens, rel));
    if cfg.shard_module {
        findings.extend(rules::shard_merge_order(&tokens, rel));
        findings.extend(rules::shard_rng_label(&tokens, rel));
        if !cfg.shard_seam {
            findings.extend(rules::shard_state_isolation(&tokens, rel));
        }
    }
    let (labels, label_findings) = extract_labels(&tokens, crate_name, rel);
    findings.extend(label_findings);

    let (mut findings, waived) = apply_waivers(findings, &lexed.waivers, rel);
    for (line, problem) in &lexed.bad_waivers {
        findings.push(Finding::new(WAIVER, rel, *line, problem.clone()));
    }
    sort_findings(&mut findings);
    FileAnalysis { findings, waived, labels }
}

/// Matches findings against waivers. A waiver covers findings of its rule
/// on its own line or the line directly below; unknown rules and unused
/// waivers become `waiver` findings (never suppressible themselves).
fn apply_waivers(
    findings: Vec<Finding>,
    waivers: &[Waiver],
    rel: &str,
) -> (Vec<Finding>, Vec<Finding>) {
    let mut used = vec![false; waivers.len()];
    let mut kept = Vec::new();
    let mut waived = Vec::new();
    for f in findings {
        let slot = waivers
            .iter()
            .position(|w| w.rule == f.rule && (w.line == f.line || w.line + 1 == f.line));
        match slot {
            Some(i) => {
                used[i] = true;
                waived.push(Finding { waive_reason: Some(waivers[i].reason.clone()), ..f });
            }
            None => kept.push(f),
        }
    }
    for (i, w) in waivers.iter().enumerate() {
        if !RULES.contains(&w.rule.as_str()) {
            kept.push(Finding::new(
                WAIVER,
                rel,
                w.line,
                format!("waiver names unknown rule `{}` (known: {})", w.rule, RULES.join(", ")),
            ));
        } else if !used[i] {
            kept.push(Finding::new(
                WAIVER,
                rel,
                w.line,
                format!(
                    "unused waiver for `{}` — nothing to suppress on this line or the next; \
                     delete it so the exception list stays honest",
                    w.rule
                ),
            ));
        }
    }
    (kept, waived)
}

fn sort_findings(findings: &mut [Finding]) {
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
}

/// The outcome of analysing the whole workspace.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Unwaived findings, sorted by (file, line, rule). Any entry here means
    /// `--check` fails.
    pub findings: Vec<Finding>,
    /// Waived findings, sorted likewise, each carrying its reason.
    pub waived: Vec<Finding>,
    /// The regenerated registry text (what `ci/rng_labels.json` should be).
    pub registry: String,
    /// Whether the committed registry matches [`Analysis::registry`] byte
    /// for byte.
    pub registry_fresh: bool,
}

/// Scans the workspace rooted at `root`: every crate's `src/`, the rules,
/// the waivers, label extraction, prefix ownership, and the registry
/// staleness diff against `ci/rng_labels.json`.
///
/// # Errors
///
/// Propagates I/O failures from the source walk (unreadable files are a
/// broken checkout, not a lint finding).
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let files = collect_sources(root)?;
    let mut analysis = Analysis { files_scanned: files.len(), ..Analysis::default() };
    let mut sites: Vec<LabelSite> = Vec::new();
    for file in &files {
        let src = fs::read_to_string(&file.path)?;
        let cfg = config_for(&file.rel, &file.crate_name);
        let mut fa = analyze_source(&file.rel, &file.crate_name, &src, cfg);
        analysis.findings.append(&mut fa.findings);
        analysis.waived.append(&mut fa.waived);
        sites.extend(fa.labels);
    }

    // Workspace-level checks: these cannot be waived — a prefix collision
    // or a stale registry is a repo-state problem, not a call-site call.
    analysis.findings.extend(prefix_collisions(&sites));
    analysis.registry = registry_text(&sites);
    let committed = fs::read_to_string(root.join(REGISTRY_PATH)).ok();
    analysis.registry_fresh = committed.as_deref() == Some(analysis.registry.as_str());
    if !analysis.registry_fresh {
        analysis.findings.push(Finding::new(
            RNG_LABEL_REGISTRY,
            REGISTRY_PATH,
            1,
            if committed.is_none() {
                "RNG label registry is missing — run `cargo run -p wmn_lint -- \
                 --update-registry` and commit it"
                    .to_string()
            } else {
                "RNG label registry is stale: the labels in the source no longer match — \
                 review the diff (label changes reseed streams and invalidate the baseline!) \
                 and run `cargo run -p wmn_lint -- --update-registry`"
                    .to_string()
            },
        ));
    }

    sort_findings(&mut analysis.findings);
    sort_findings(&mut analysis.waived);
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> RuleConfig {
        RuleConfig { deterministic: true, ..RuleConfig::default() }
    }

    #[test]
    fn waiver_on_the_line_above_suppresses_and_is_reported() {
        let src = "
            fn f(m: &HashMap<u32, u32>) {
                // lint:allow(no-hash-iter): keys copied out and sorted below
                for k in m { sorted.push(k); }
                sorted.sort();
            }
        ";
        let fa = analyze_source("x.rs", "mac", src, det());
        assert!(fa.findings.is_empty(), "{:?}", fa.findings);
        assert_eq!(fa.waived.len(), 1);
        assert_eq!(fa.waived[0].waive_reason.as_deref(), Some("keys copied out and sorted below"));
    }

    #[test]
    fn waiver_for_the_wrong_rule_does_not_suppress() {
        let src = "
            fn f(m: &HashMap<u32, u32>) {
                // lint:allow(no-wall-clock): wrong rule on purpose
                for k in m { use_it(k); }
            }
        ";
        let fa = analyze_source("x.rs", "mac", src, det());
        // The hash-iter finding survives AND the waiver is flagged unused.
        assert_eq!(fa.findings.len(), 2, "{:?}", fa.findings);
        assert!(fa.findings.iter().any(|f| f.rule == rules::NO_HASH_ITER));
        assert!(fa.findings.iter().any(|f| f.rule == WAIVER));
    }

    #[test]
    fn unknown_rule_and_missing_reason_are_findings() {
        let src = "
            // lint:allow(no-such-rule): whatever
            fn a() {}
            // lint:allow(no-hash-iter):
            fn b() {}
        ";
        let fa = analyze_source("x.rs", "mac", src, det());
        assert_eq!(fa.findings.len(), 2, "{:?}", fa.findings);
        assert!(fa.findings.iter().all(|f| f.rule == WAIVER));
    }

    #[test]
    fn rule_switches_follow_the_config() {
        let src =
            "fn f(m: &HashMap<u32, u32>) { for k in m { use_it(k); } let t = Instant::now(); }";
        let fa = analyze_source(
            "x.rs",
            "exec",
            src,
            RuleConfig { wall_clock_allowed: true, ..RuleConfig::default() },
        );
        assert!(fa.findings.is_empty(), "exec is exempt from both: {:?}", fa.findings);
        let fa = analyze_source("x.rs", "mac", src, det());
        assert_eq!(fa.findings.len(), 2, "{:?}", fa.findings);
    }
}
