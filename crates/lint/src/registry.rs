//! RNG label extraction and the committed label registry.
//!
//! Every random draw in the workspace flows through a named stream:
//! `StreamRng::derive(seed, "phy/shadowing")` or `dir.stream("medium")`.
//! Labels are load-bearing — renaming one silently reseeds every draw behind
//! it and invalidates the committed baseline — so the linter extracts each
//! label at its call site, checks that label *prefixes* (the first
//! `/`-segment) are claimed by exactly one crate, and diffs the result
//! against the committed `ci/rng_labels.json`. A stale registry is a
//! finding: label changes must be visible in review, not discovered when
//! `check_baseline` explodes.

use std::collections::{BTreeMap, BTreeSet};

use wmn_exec::json::Value;

use crate::lexer::{TokKind, Token};
use crate::rules::{Finding, RNG_LABEL_REGISTRY};

/// How a label is built at its call site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelKind {
    /// A plain string literal: the registry records it verbatim.
    Static,
    /// A `format!` template: recorded as `dynamic:<template>`.
    Dynamic,
}

/// One extracted RNG label call site.
#[derive(Clone, Debug)]
pub struct LabelSite {
    /// Registry key: the literal label, or `dynamic:` + the format template.
    pub key: String,
    /// Static literal or dynamic template.
    pub kind: LabelKind,
    /// The namespace this site claims: the first `/`-segment of the literal
    /// part. `None` for dynamic templates with no literal head (they claim
    /// nothing — and draw a waivable finding at the call site).
    pub prefix: Option<String>,
    /// Crate the call site lives in (directory name under `crates/`).
    pub crate_name: String,
    /// Repo-relative file.
    pub file: String,
    /// 1-based line of the call.
    pub line: u32,
}

/// Scans a token stream for `StreamRng::derive(seed, label)` and
/// `.stream(label)` calls, returning the extracted sites plus findings for
/// labels the linter cannot register (non-literal arguments, dynamic
/// templates with no literal prefix).
pub fn extract_labels(
    tokens: &[Token],
    crate_name: &str,
    file: &str,
) -> (Vec<LabelSite>, Vec<Finding>) {
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    for i in 0..tokens.len() {
        // `StreamRng::derive(seed, <label>)` — label is the second argument.
        if tokens[i].is_ident("StreamRng")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident("derive"))
            && tokens.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            classify_arg(
                tokens,
                i + 4,
                1,
                tokens[i].line,
                crate_name,
                file,
                &mut sites,
                &mut findings,
            );
        }
        // `<dir>.stream(<label>)` — label is the first argument.
        if tokens[i].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("stream"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            classify_arg(
                tokens,
                i + 2,
                0,
                tokens[i + 1].line,
                crate_name,
                file,
                &mut sites,
                &mut findings,
            );
        }
        // `<dir>.indexed_stream(<prefix>, <index>)` — derives the stream
        // family `"{prefix}/{index}"`; the registry records it as the
        // dynamic template it expands to.
        if tokens[i].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_ident("indexed_stream"))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            classify_indexed(
                tokens,
                i + 2,
                tokens[i + 1].line,
                crate_name,
                file,
                &mut sites,
                &mut findings,
            );
        }
    }
    (sites, findings)
}

/// Splits the argument list opened by the `(` at `open` into per-argument
/// token ranges (top-level commas only).
fn split_args(tokens: &[Token], open: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut depth = 1i32;
    let mut start = open + 1;
    let mut i = open + 1;
    while i < tokens.len() && depth > 0 {
        match tokens[i].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 && i > start {
                    args.push((start, i));
                }
            }
            TokKind::Punct(',') if depth == 1 => {
                args.push((start, i));
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    args
}

#[allow(clippy::too_many_arguments)]
fn classify_arg(
    tokens: &[Token],
    open: usize,
    arg_index: usize,
    line: u32,
    crate_name: &str,
    file: &str,
    sites: &mut Vec<LabelSite>,
    findings: &mut Vec<Finding>,
) {
    let args = split_args(tokens, open);
    let Some(&(start, end)) = args.get(arg_index) else {
        return; // malformed call — the compiler will have plenty to say
    };
    let arg: Vec<&Token> = tokens[start..end].iter().filter(|t| !t.is_punct('&')).collect();
    // A bare string literal: `"phy/shadowing"`.
    if arg.len() == 1 && arg[0].kind == TokKind::Str {
        let label = arg[0].text.clone();
        let prefix = label.split('/').next().unwrap_or("").to_string();
        sites.push(LabelSite {
            key: label,
            kind: LabelKind::Static,
            prefix: Some(prefix),
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            line,
        });
        return;
    }
    // A `format!("template", …)` expression: register the template.
    let is_format = arg.windows(2).any(|w| w[0].is_ident("format") && w[1].is_punct('!'));
    if is_format {
        if let Some(template) = arg.iter().find(|t| t.kind == TokKind::Str) {
            let literal_head: &str = template.text.split('{').next().unwrap_or("");
            let prefix = literal_head.split('/').next().unwrap_or("");
            if prefix.is_empty() {
                findings.push(Finding::new(
                    RNG_LABEL_REGISTRY,
                    file,
                    line,
                    format!(
                        "dynamic RNG label {:?} has no literal prefix before the first `{{…}}` \
                         — it claims no namespace the registry can check; waive only if the \
                         interpolated head is itself registry-checked",
                        template.text
                    ),
                ));
            }
            sites.push(LabelSite {
                key: format!("dynamic:{}", template.text),
                kind: LabelKind::Dynamic,
                prefix: (!prefix.is_empty()).then(|| prefix.to_string()),
                crate_name: crate_name.to_string(),
                file: file.to_string(),
                line,
            });
            return;
        }
    }
    // Anything else (a variable, a function call) cannot be registered.
    findings.push(Finding::new(
        RNG_LABEL_REGISTRY,
        file,
        line,
        "RNG label is not a string literal or format! template — the registry cannot record \
         it, so stream collisions here are invisible to review"
            .to_string(),
    ));
}

/// Classifies the prefix argument of an `indexed_stream(prefix, index)`
/// call. A literal prefix registers the whole family as the dynamic
/// template it expands to (`dynamic:<prefix>/{index}`); anything else is a
/// finding — the family's namespace would be invisible to review.
fn classify_indexed(
    tokens: &[Token],
    open: usize,
    line: u32,
    crate_name: &str,
    file: &str,
    sites: &mut Vec<LabelSite>,
    findings: &mut Vec<Finding>,
) {
    let args = split_args(tokens, open);
    let Some(&(start, end)) = args.first() else {
        return; // malformed call — the compiler will have plenty to say
    };
    let arg: Vec<&Token> = tokens[start..end].iter().filter(|t| !t.is_punct('&')).collect();
    if arg.len() == 1 && arg[0].kind == TokKind::Str {
        let prefix = arg[0].text.split('/').next().unwrap_or("").to_string();
        sites.push(LabelSite {
            key: format!("dynamic:{}/{{index}}", arg[0].text),
            kind: LabelKind::Dynamic,
            prefix: Some(prefix),
            crate_name: crate_name.to_string(),
            file: file.to_string(),
            line,
        });
        return;
    }
    findings.push(Finding::new(
        RNG_LABEL_REGISTRY,
        file,
        line,
        "indexed_stream prefix is not a string literal — the registry cannot record the \
         stream family, so collisions here are invisible to review"
            .to_string(),
    ));
}

/// Builds the registry document from every extracted site: one entry per
/// distinct key, with the sorted set of crates using it.
pub fn registry_json(sites: &[LabelSite]) -> Value {
    let mut by_key: BTreeMap<&str, (LabelKind, BTreeSet<&str>)> = BTreeMap::new();
    for s in sites {
        let entry = by_key.entry(&s.key).or_insert((s.kind, BTreeSet::new()));
        entry.1.insert(&s.crate_name);
    }
    let labels: Vec<Value> = by_key
        .into_iter()
        .map(|(key, (kind, crates))| {
            Value::obj()
                .with("label", key)
                .with("kind", if kind == LabelKind::Dynamic { "dynamic" } else { "static" })
                .with("crates", Value::Arr(crates.into_iter().map(Value::from).collect()))
        })
        .collect();
    Value::obj().with("schema", 1u64).with("labels", Value::Arr(labels))
}

/// The canonical on-disk text of the registry (trailing newline included).
pub fn registry_text(sites: &[LabelSite]) -> String {
    format!("{}\n", registry_json(sites))
}

/// Cross-crate prefix ownership check: every claimed prefix must belong to
/// exactly one crate, so two crates can never mint colliding stream names.
/// Returns one (unwaivable) finding per contested prefix, anchored at the
/// first site of each offending crate.
pub fn prefix_collisions(sites: &[LabelSite]) -> Vec<Finding> {
    let mut owners: BTreeMap<&str, BTreeMap<&str, &LabelSite>> = BTreeMap::new();
    for s in sites {
        if let Some(prefix) = &s.prefix {
            owners.entry(prefix).or_default().entry(&s.crate_name).or_insert(s);
        }
    }
    let mut out = Vec::new();
    for (prefix, by_crate) in owners {
        if by_crate.len() < 2 {
            continue;
        }
        let claimants: Vec<String> = by_crate
            .values()
            .map(|s| format!("{} ({}:{})", s.crate_name, s.file, s.line))
            .collect();
        for site in by_crate.values() {
            out.push(Finding::new(
                RNG_LABEL_REGISTRY,
                &site.file,
                site.line,
                format!(
                    "RNG label prefix {prefix:?} is claimed by more than one crate: {} — \
                     prefixes are per-crate namespaces; rename one side",
                    claimants.join(", ")
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn extract(src: &str) -> (Vec<LabelSite>, Vec<Finding>) {
        extract_labels(&lex(src).tokens, "demo", "demo.rs")
    }

    #[test]
    fn static_labels_register_with_prefix() {
        let (sites, findings) = extract(r#"let r = StreamRng::derive(seed, "phy/shadowing");"#);
        assert!(findings.is_empty());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].key, "phy/shadowing");
        assert_eq!(sites[0].kind, LabelKind::Static);
        assert_eq!(sites[0].prefix.as_deref(), Some("phy"));
    }

    #[test]
    fn stream_calls_and_borrowed_literals_register() {
        let (sites, findings) = extract(r#"let r = dir.stream(&"medium");"#);
        assert!(findings.is_empty());
        assert_eq!(sites[0].key, "medium");
        assert_eq!(sites[0].prefix.as_deref(), Some("medium"));
    }

    #[test]
    fn format_labels_register_as_dynamic_templates() {
        let (sites, findings) = extract(r#"let r = dir.stream(&format!("mac/{i}"));"#);
        assert!(findings.is_empty());
        assert_eq!(sites[0].key, "dynamic:mac/{i}");
        assert_eq!(sites[0].kind, LabelKind::Dynamic);
        assert_eq!(sites[0].prefix.as_deref(), Some("mac"));
    }

    #[test]
    fn prefixless_dynamic_labels_are_findings_but_still_registered() {
        let (sites, findings) =
            extract(r#"let r = StreamRng::derive(seed, &format!("{label}/a{n}"));"#);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no literal prefix"));
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].prefix, None);
    }

    #[test]
    fn indexed_streams_register_their_family_template() {
        let (sites, findings) = extract(r#"let r = dir.indexed_stream("shard/medium", i);"#);
        assert!(findings.is_empty());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].key, "dynamic:shard/medium/{index}");
        assert_eq!(sites[0].kind, LabelKind::Dynamic);
        assert_eq!(sites[0].prefix.as_deref(), Some("shard"));
    }

    #[test]
    fn indexed_streams_with_opaque_prefixes_are_findings() {
        let (sites, findings) = extract("let r = dir.indexed_stream(prefix, 3);");
        assert!(sites.is_empty());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("indexed_stream prefix"));
    }

    #[test]
    fn opaque_labels_are_findings_and_not_registered() {
        let (sites, findings) = extract("StreamRng::derive(self.master_seed, label)");
        assert!(sites.is_empty());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("cannot record"));
    }

    #[test]
    fn nested_commas_in_the_seed_argument_do_not_shift_the_label() {
        let (sites, findings) = extract(r#"StreamRng::derive(mix(a, b), "topo/grid")"#);
        assert!(findings.is_empty());
        assert_eq!(sites[0].key, "topo/grid");
    }

    #[test]
    fn collisions_are_per_prefix_and_cross_crate_only() {
        let mk = |key: &str, prefix: &str, krate: &str| LabelSite {
            key: key.to_string(),
            kind: LabelKind::Static,
            prefix: Some(prefix.to_string()),
            crate_name: krate.to_string(),
            file: format!("{krate}.rs"),
            line: 1,
        };
        // Same crate, same prefix: fine.
        let sites = vec![mk("mac/a", "mac", "netsim"), mk("mac/b", "mac", "netsim")];
        assert!(prefix_collisions(&sites).is_empty());
        // Two crates claiming "mac": two findings, one per claimant.
        let sites = vec![mk("mac/a", "mac", "netsim"), mk("mac/b", "mac", "mac")];
        let found = prefix_collisions(&sites);
        assert_eq!(found.len(), 2);
        assert!(found[0].message.contains("more than one crate"));
    }

    #[test]
    fn registry_document_is_sorted_and_deduplicated() {
        let (mut sites, _) = extract(
            r#"
            let a = dir.stream("medium");
            let b = dir.stream("medium");
            let c = dir.stream(&format!("mac/{i}"));
            "#,
        );
        let (more, _) = extract(r#"let d = dir.stream("ber");"#);
        sites.extend(more);
        let text = registry_text(&sites);
        let doc = wmn_exec::json::parse(&text).expect("registry must parse");
        let labels = doc.get("labels").and_then(Value::as_arr).unwrap();
        let keys: Vec<&str> =
            labels.iter().map(|l| l.get("label").and_then(Value::as_str).unwrap()).collect();
        assert_eq!(keys, vec!["ber", "dynamic:mac/{i}", "medium"], "sorted, deduped");
    }
}
