//! Fixture self-tests: each file under `tests/fixtures/` is lexed and
//! analysed, and the findings are compared line-for-line against the
//! trailing `//~ <rule>` / `//~ waived <rule>` markers in the fixture
//! itself. Any new false positive or false negative in a rule shows up here
//! as a concrete diff against the pinned corpus.

use std::fs;
use std::path::Path;

use wmn_lint::rules::{
    HOT_PATH_VEC_NEW, NO_FRAME_DEEP_CLONE, NO_HASH_ITER, NO_WALL_CLOCK, RNG_LABEL_REGISTRY,
    SHARD_MERGE_ORDER, SHARD_RNG_LABEL, SHARD_STATE_ISOLATION, WAIVER,
};
use wmn_lint::workspace::RuleConfig;
use wmn_lint::{analyze_source, FileAnalysis};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read fixture {path:?}: {e}"))
}

fn det() -> RuleConfig {
    RuleConfig { deterministic: true, ..RuleConfig::default() }
}

/// The config of a sharded-engine worker file (`stack/shard/worker.rs`).
fn shard() -> RuleConfig {
    RuleConfig { deterministic: true, shard_module: true, ..RuleConfig::default() }
}

/// Parses the `//~ [waived] <rule>` markers out of a fixture.
/// Returns `(line, rule, waived)` triples.
fn expectations(src: &str) -> Vec<(u32, String, bool)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let Some((_, tail)) = line.split_once("//~") else { continue };
        let mut words = tail.split_whitespace();
        let first = words.next().expect("marker names a rule");
        let (waived, rule) = if first == "waived" {
            (true, words.next().expect("waived marker names a rule").to_string())
        } else {
            (false, first.to_string())
        };
        assert!(words.next().is_none(), "marker has trailing junk on line {}", i + 1);
        out.push((u32::try_from(i + 1).unwrap(), rule, waived));
    }
    assert!(!out.is_empty() || !src.contains("//~"), "marker parse failure");
    out
}

/// Runs one fixture under `cfg` and asserts findings == markers, exactly.
fn check(name: &str, cfg: RuleConfig) -> FileAnalysis {
    let src = fixture(name);
    let fa = analyze_source(name, "fixture", &src, cfg);
    let mut expected = expectations(&src);
    expected.sort();
    let mut actual: Vec<(u32, String, bool)> = fa
        .findings
        .iter()
        .map(|f| (f.line, f.rule.to_string(), false))
        .chain(fa.waived.iter().map(|f| (f.line, f.rule.to_string(), true)))
        .collect();
    actual.sort();
    assert_eq!(actual, expected, "fixture {name}: findings diverge from pinned markers");
    fa
}

#[test]
fn no_hash_iter_fixture_matches_markers() {
    let fa = check("no_hash_iter.rs", det());
    assert!(fa.findings.iter().all(|f| f.rule == NO_HASH_ITER));
    assert_eq!(fa.waived.len(), 1);
    assert_eq!(
        fa.waived[0].waive_reason.as_deref(),
        Some("keys are copied out and sorted before any use")
    );
}

#[test]
fn no_hash_iter_is_off_outside_deterministic_crates() {
    let src = fixture("no_hash_iter.rs");
    let fa = analyze_source(
        "no_hash_iter.rs",
        "exec",
        &src,
        RuleConfig { wall_clock_allowed: true, ..RuleConfig::default() },
    );
    // Without the rule, the inline waiver in the fixture goes unused — that
    // (and only that) surfaces as a waiver finding.
    assert!(fa.findings.iter().all(|f| f.rule == WAIVER), "{:?}", fa.findings);
    assert!(fa.waived.is_empty());
}

#[test]
fn no_wall_clock_fixture_matches_markers() {
    let fa = check("no_wall_clock.rs", det());
    assert!(fa.findings.iter().all(|f| f.rule == NO_WALL_CLOCK));
    // The allowlist switches the rule off entirely.
    let src = fixture("no_wall_clock.rs");
    let fa = analyze_source(
        "no_wall_clock.rs",
        "exec",
        &src,
        RuleConfig { wall_clock_allowed: true, ..RuleConfig::default() },
    );
    assert!(fa.findings.is_empty(), "{:?}", fa.findings);
}

#[test]
fn no_frame_deep_clone_fixture_matches_markers() {
    let fa = check("no_frame_deep_clone.rs", det());
    assert!(fa.findings.iter().all(|f| f.rule == NO_FRAME_DEEP_CLONE));
    assert_eq!(fa.waived.len(), 1);
    assert!(fa.waived[0].waive_reason.as_deref().unwrap().contains("corruption seam"));
}

#[test]
fn no_frame_deep_clone_is_off_outside_deterministic_crates() {
    let src = fixture("no_frame_deep_clone.rs");
    let fa = analyze_source(
        "no_frame_deep_clone.rs",
        "bench",
        &src,
        RuleConfig { wall_clock_allowed: true, ..RuleConfig::default() },
    );
    // Without the rule, only the fixture's now-unused waiver surfaces.
    assert!(fa.findings.iter().all(|f| f.rule == WAIVER), "{:?}", fa.findings);
    assert!(fa.waived.is_empty());
}

#[test]
fn hot_path_vec_new_fixture_matches_markers() {
    let fa = check("hot_path_vec_new.rs", det());
    assert!(fa.findings.iter().all(|f| f.rule == HOT_PATH_VEC_NEW));
    assert_eq!(fa.waived.len(), 1);
    assert!(fa.waived[0].waive_reason.as_deref().unwrap().contains("once per flow"));
}

#[test]
fn hot_path_vec_new_is_off_outside_deterministic_crates() {
    let src = fixture("hot_path_vec_new.rs");
    let fa = analyze_source(
        "hot_path_vec_new.rs",
        "bench",
        &src,
        RuleConfig { wall_clock_allowed: true, ..RuleConfig::default() },
    );
    // Without the rule, only the fixture's now-unused waiver surfaces.
    assert!(fa.findings.iter().all(|f| f.rule == WAIVER), "{:?}", fa.findings);
    assert!(fa.waived.is_empty());
}

#[test]
fn no_nondet_std_fixture_matches_markers() {
    let fa = check("no_nondet_std.rs", det());
    assert_eq!(fa.waived.len(), 1);
    assert!(fa.waived[0].waive_reason.as_deref().unwrap().contains("worker count"));
}

#[test]
fn rng_labels_fixture_matches_markers_and_registers() {
    let fa = check("rng_labels.rs", det());
    let mut keys: Vec<&str> = fa.labels.iter().map(|l| l.key.as_str()).collect();
    keys.sort_unstable();
    assert_eq!(
        keys,
        vec![
            "dynamic:fixture/worker{i}",
            "dynamic:{base}/sub",
            "fixture/nested-seed-args",
            "fixture/static",
            "fixture/stream",
        ],
        "extracted registry keys"
    );
    // Static and anchored-dynamic sites all claim the `fixture` prefix; the
    // prefixless dynamic template claims nothing.
    let prefixes: Vec<Option<&str>> = fa.labels.iter().map(|l| l.prefix.as_deref()).collect();
    assert_eq!(prefixes.iter().filter(|p| **p == Some("fixture")).count(), 4);
    assert_eq!(prefixes.iter().filter(|p| p.is_none()).count(), 1);
}

#[test]
fn shard_merge_order_fixture_matches_markers() {
    let fa = check("shard_merge_order.rs", shard());
    assert!(fa.findings.iter().all(|f| f.rule == SHARD_MERGE_ORDER));
    assert_eq!(fa.waived.len(), 1);
    assert!(fa.waived[0].waive_reason.as_deref().unwrap().contains("bootstrap"));
}

#[test]
fn shard_rng_label_fixture_matches_markers_and_registers_families() {
    let fa = check("shard_rng_label.rs", shard());
    assert!(fa.findings.iter().all(|f| f.rule == SHARD_RNG_LABEL));
    assert_eq!(fa.waived.len(), 1);
    // The indexed_stream sites register their whole family as a dynamic
    // template, claiming the `shard` prefix like any other label.
    let mut keys: Vec<&str> = fa.labels.iter().map(|l| l.key.as_str()).collect();
    keys.sort_unstable();
    keys.dedup();
    assert!(keys.contains(&"dynamic:shard/medium/{index}"), "{keys:?}");
    assert!(keys.contains(&"dynamic:shard/ber/{index}"), "{keys:?}");
    assert!(fa.labels.iter().all(|l| l.prefix.as_deref() == Some("shard")));
}

#[test]
fn shard_state_isolation_fixture_matches_markers_and_seam_is_exempt() {
    let fa = check("shard_state_isolation.rs", shard());
    assert!(fa.findings.iter().all(|f| f.rule == SHARD_STATE_ISOLATION));
    assert_eq!(fa.waived.len(), 1);
    // The coordinator seam config switches the rule off; the fixture's
    // waiver then goes unused, which is the only finding left.
    let src = fixture("shard_state_isolation.rs");
    let seam = RuleConfig {
        deterministic: true,
        shard_module: true,
        shard_seam: true,
        ..RuleConfig::default()
    };
    let fa = analyze_source("shard_state_isolation.rs", "fixture", &src, seam);
    assert!(fa.findings.iter().all(|f| f.rule == WAIVER), "{:?}", fa.findings);
    assert!(fa.waived.is_empty());
}

#[test]
fn shard_rules_are_off_outside_the_shard_module() {
    for name in ["shard_merge_order.rs", "shard_rng_label.rs", "shard_state_isolation.rs"] {
        let src = fixture(name);
        let fa = analyze_source(name, "netsim", &src, det());
        // Only the now-unused waiver surfaces — the shard rules themselves
        // must not leak into ordinary deterministic code.
        assert!(fa.findings.iter().all(|f| f.rule == WAIVER), "{name}: {:?}", fa.findings);
        assert!(fa.waived.is_empty(), "{name}");
    }
}

#[test]
fn waiver_misuse_fixture_reports_each_failure_mode() {
    let src = fixture("waivers.rs");
    let fa = analyze_source("waivers.rs", "fixture", &src, det());
    assert!(fa.waived.is_empty(), "no waiver in this fixture is valid: {:?}", fa.waived);
    let waiver_msgs: Vec<&str> =
        fa.findings.iter().filter(|f| f.rule == WAIVER).map(|f| f.message.as_str()).collect();
    assert_eq!(waiver_msgs.len(), 4, "{waiver_msgs:?}");
    assert!(waiver_msgs.iter().any(|m| m.contains("missing the `: <reason>`")));
    assert!(waiver_msgs.iter().any(|m| m.contains("empty reason")));
    assert!(waiver_msgs.iter().any(|m| m.contains("unknown rule `no-such-rule`")));
    assert!(waiver_msgs.iter().any(|m| m.contains("unused waiver")));
    // …and none of the malformed waivers suppressed anything: both
    // Instant::now() calls and the map iteration still fire.
    assert_eq!(fa.findings.iter().filter(|f| f.rule == NO_WALL_CLOCK).count(), 2);
    assert_eq!(fa.findings.iter().filter(|f| f.rule == NO_HASH_ITER).count(), 1);
    assert_eq!(fa.findings.len(), 7);
}

#[test]
fn rng_label_registry_rule_name_is_reserved_for_sites_and_registry() {
    // Guard the rule-id constants the fixtures rely on — a rename would
    // silently invalidate every inline waiver in the workspace.
    assert_eq!(NO_HASH_ITER, "no-hash-iter");
    assert_eq!(NO_WALL_CLOCK, "no-wall-clock");
    assert_eq!(wmn_lint::rules::NO_NONDET_STD, "no-nondeterministic-std");
    assert_eq!(NO_FRAME_DEEP_CLONE, "no-frame-deep-clone");
    assert_eq!(HOT_PATH_VEC_NEW, "hot-path-vec-new");
    assert_eq!(RNG_LABEL_REGISTRY, "rng-label-registry");
    assert_eq!(SHARD_MERGE_ORDER, "shard-merge-order");
    assert_eq!(SHARD_RNG_LABEL, "shard-rng-label");
    assert_eq!(SHARD_STATE_ISOLATION, "shard-state-isolation");
}
