//! Property tests for the lexer: arbitrary concatenations of rule-trigger
//! fragments, wrapped in comments or string literals, must never produce a
//! finding — the whole point of lexing (rather than regex-grepping) is that
//! commented-out or quoted trigger text is invisible to the rules.

use proptest::prelude::*;
use proptest::{collection, sample};

use wmn_lint::analyze_source;
use wmn_lint::lexer::{lex, TokKind};
use wmn_lint::workspace::RuleConfig;

/// Source fragments that, as live code in a deterministic crate, each
/// produce at least one finding.
const TRIGGERS: &[&str] = &[
    "for v in self.table.values() { drop(v); }",
    "let t = Instant::now();",
    "std::thread::sleep(d);",
    "let v = std::env::var(\"X\");",
    "let s: SystemTime = now;",
    "let h = RandomState::new();",
    "let r = StreamRng::derive(seed, label);",
];

fn det() -> RuleConfig {
    RuleConfig { deterministic: true, ..RuleConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn commented_or_quoted_triggers_never_fire(
        picks in collection::vec((0usize..7, 0usize..4), 1..12),
        with_live_map in any::<bool>(),
    ) {
        let mut src = String::from("struct S { table: HashMap<u64, u32> }\n");
        if with_live_map {
            // Live, rule-clean code interleaved with the disguised triggers:
            // keyed access on a tracked map must stay silent.
            src.push_str("fn live(m: &mut HashMap<u32, u32>) { m.insert(1, 2); }\n");
        }
        for (t, mode) in picks {
            let frag = TRIGGERS[t];
            match mode {
                0 => src.push_str(&format!("// {frag}\n")),
                1 => src.push_str(&format!("/* outer /* {frag} */ still comment */\n")),
                2 => src.push_str(&format!(
                    "fn doc() {{ let _d = \"{}\"; }}\n",
                    frag.replace('\\', "\\\\").replace('"', "\\\"")
                )),
                _ => src.push_str(&format!("fn raw() {{ let _r = r#\"{frag}\"#; }}\n")),
            }
        }
        let fa = analyze_source("prop.rs", "prop", &src, det());
        prop_assert!(fa.findings.is_empty(), "phantom findings in:\n{src}\n{:?}", fa.findings);
        prop_assert!(fa.waived.is_empty());
        prop_assert!(fa.labels.is_empty(), "labels from non-code: {:?}", fa.labels);
    }

    #[test]
    fn lexing_fragments_jointly_equals_lexing_them_separately(
        picks in sample::subsequence(vec![0usize, 1, 2, 3, 4, 5, 6], 1..7),
    ) {
        // Each trigger is a self-contained single line; lexing the
        // concatenation must yield exactly the per-fragment token streams
        // with lines offset — i.e. no literal or comment state leaks across
        // fragment boundaries.
        let joined: String =
            picks.iter().map(|&i| format!("{}\n", TRIGGERS[i])).collect();
        let got: Vec<(TokKind, String, u32)> =
            lex(&joined).tokens.into_iter().map(|t| (t.kind, t.text, t.line)).collect();
        let mut want = Vec::new();
        for (line0, &i) in picks.iter().enumerate() {
            for t in lex(TRIGGERS[i]).tokens {
                want.push((t.kind, t.text, u32::try_from(line0 + 1).unwrap()));
            }
        }
        prop_assert_eq!(got, want);
    }
}
