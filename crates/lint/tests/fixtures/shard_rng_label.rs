//! Fixture: `shard-rng-label` true/false positives (lexed only).
//! Runs under the sharded-engine config (`shard_module: true`). Every
//! label here is a literal, so the sites register cleanly — the rule fires
//! on the derivation *shape*, not the label.

fn true_positives(dir: &RngDirectory) {
    let shared = dir.stream("shard/medium"); //~ shard-rng-label
    let raw = StreamRng::derive(seed, "shard/ber"); //~ shard-rng-label
    drop((shared, raw));
}

fn waived(dir: &RngDirectory) {
    // lint:allow(shard-rng-label): scenario-level stream consumed before partitioning, shard-count invariant
    let setup = dir.stream("shard/setup"); //~ waived shard-rng-label
    drop(setup);
}

fn true_negatives(dir: &RngDirectory) {
    let per_entity = dir.indexed_stream("shard/medium", node_index); // one stream per entity
    let another = dir.indexed_stream("shard/ber", rx_index);
    // dir.stream("medium") — commented out, must not fire
    let msg = "prose may say stream( and StreamRng::derive";
    drop((per_entity, another, msg));
}
