//! Fixture: `rng-label-registry` extraction (lexed, never compiled).

fn registered(dir: &RngDirectory, seed: u64) {
    let a = StreamRng::derive(seed, "fixture/static");
    let b = dir.stream("fixture/stream");
    for i in 0..3 {
        let c = dir.stream(&format!("fixture/worker{i}"));
        drop(c);
    }
    drop((a, b));
}

fn prefixless_dynamic(base: &str, seed: u64) {
    let d = StreamRng::derive(seed, &format!("{base}/sub")); //~ rng-label-registry
    drop(d);
}

fn opaque(label: &str, seed: u64) {
    let r = StreamRng::derive(seed, label); //~ rng-label-registry
    drop(r);
}

fn waived_forwarder(label: &str, seed: u64) {
    // lint:allow(rng-label-registry): forwarding shim — callers register their own literal labels
    let r = StreamRng::derive(seed, label); //~ waived rng-label-registry
    drop(r);
}

fn true_negatives(seed: u64) {
    // StreamRng::derive(seed, "commented/out") must not register anything
    let msg = "derive(seed, \"quoted/label\") in a string is not a call";
    let nested = StreamRng::derive(mix(seed, 7), "fixture/nested-seed-args");
    drop((msg, nested));
}
