//! Fixture: `no-frame-deep-clone` true/false positives (lexed only).
//! Runs under a deterministic-crate config; the bench/exec layers are
//! exempt, and the corruption seam carries the one legitimate waiver.

fn true_positives(frame: &Frame, sf: &Subframe) -> Frame {
    match frame {
        Frame::Data(d) => relay(d.clone()), //~ no-frame-deep-clone
        Frame::Ack(a) => echo(a.clone()), //~ no-frame-deep-clone
    }
    stash(sf.clone()); //~ no-frame-deep-clone
    frame.clone() //~ no-frame-deep-clone
}

fn waived(d: &DataFrame) -> DataFrame {
    // lint:allow(no-frame-deep-clone): corruption seam fixture — this receiver needs private corrupted flags
    let mut owned = d.clone(); //~ waived no-frame-deep-clone
    owned.subframes.truncate(1);
    owned
}

fn true_negatives(af: &Arc<Frame>, sf: &Subframe, route: &RouteInfo) {
    let shared = Arc::clone(af); // refcount bump, not a copy
    let handle = af.clone(); // Arc handle — also just a refcount bump
    let p = sf.packet.clone(); // Packet is shallow by design (header + Arc body)
    let r = route.clone(); // not a frame type
    // frame.clone() — commented out, must not fire
    drop((shared, handle, p, r));
}
