//! Fixture: `no-hash-iter` true/false positives.
//!
//! This file is never compiled — it lives under `tests/fixtures/` so cargo
//! ignores it, and `selftest.rs` lexes it directly. Lines expecting a
//! finding carry a trailing tilde-marker comment naming the rule (with a
//! leading `waived` for suppressed findings); the self-test fails on any
//! missing or extra finding, pinning the rule's behaviour.

use std::collections::{BTreeMap, HashMap, HashSet};

struct State {
    table: HashMap<u64, u32>,
    seen: HashSet<u32>,
    order: BTreeMap<u64, u32>,
    backlog: Vec<u32>,
}

impl State {
    fn true_positives(&mut self, m: &mut HashMap<u32, u32>) {
        for v in self.table.values() { drop(v); } //~ no-hash-iter
        for x in &self.seen { drop(x); } //~ no-hash-iter
        let ks: Vec<u32> = m.keys().copied().collect(); //~ no-hash-iter
        m.retain(|_, v| *v > 0); //~ no-hash-iter
        let gone: Vec<(u64, u32)> = self.table.drain().collect(); //~ no-hash-iter
        drop((ks, gone));
    }

    fn true_negatives(&mut self) {
        self.table.insert(1, 2);
        let _ = self.table.get(&1);
        self.table.remove(&1);
        let _ = self.seen.contains(&7);
        self.table.entry(3).or_insert(0);
        for (k, v) in self.order.iter() { drop((k, v)); } // BTreeMap: sorted order
        for b in self.backlog.drain(..) { drop(b); } // Vec::drain: insertion order
        for i in 0..self.backlog.len() { drop(i); } // index loop: no order observed
        // for v in self.table.values() { drop(v); } — commented out, must not fire
        let msg = "docs may say table.values() without tripping the rule";
        drop(msg);
    }

    fn constructor_bindings() {
        let mut fresh = std::collections::HashSet::new();
        fresh.insert(1u32);
        for f in &fresh { drop(f); } //~ no-hash-iter
    }

    fn waived(&mut self) {
        // lint:allow(no-hash-iter): keys are copied out and sorted before any use
        let mut ks: Vec<u64> = self.table.keys().copied().collect(); //~ waived no-hash-iter
        ks.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_code_is_out_of_scope(t: &HashMap<u32, u32>) {
        for v in t.values() { drop(v); } // fine here: tests probe freely
    }
}
