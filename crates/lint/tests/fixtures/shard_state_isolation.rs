//! Fixture: `shard-state-isolation` true/false positives (lexed only).
//! Runs under the sharded-engine *worker* config (`shard_module: true`,
//! `shard_seam: false`); the selftest re-runs it under the seam config,
//! where the rule is off entirely.

fn true_positives(medium: &RwLock<Medium>, net: &RwLock<NetLayer>) {
    let m = medium.write().expect("poisoned"); //~ shard-state-isolation
    net.write().unwrap().refresh_routes(&graph); //~ shard-state-isolation
    drop(m);
}

fn waived(medium: &RwLock<Medium>) {
    // lint:allow(shard-state-isolation): single-shard fallback path, no concurrent readers exist
    let m = medium.write().expect("poisoned"); //~ waived shard-state-isolation
    drop(m);
}

fn true_negatives(medium: &RwLock<Medium>, mailbox: &Mutex<Vec<Arrival>>) {
    let snapshot = medium.read().expect("poisoned"); // reads are the worker contract
    let mut inbox = mailbox.lock().expect("poisoned"); // mailboxes are Mutex-owned
    let file = std::fs::File::create(path); // io::Write is not a lock
    writer.write_all(b"bytes"); // write_all is not .write(
    // medium.write() — commented out, must not fire
    drop((snapshot, inbox, file));
}
