//! Fixture: `shard-merge-order` true/false positives (lexed only).
//! Runs under the sharded-engine config (`shard_module: true`).

fn true_positives(q: &mut KeyedEventQueue<Event>) {
    q.schedule(t, Event::TxEnd(node)); //~ shard-merge-order
    q.schedule_in(delay, Event::MacTimer(node)); //~ shard-merge-order
    self.queue.schedule(now, ev); //~ shard-merge-order
}

fn waived(q: &mut KeyedEventQueue<Event>) {
    // lint:allow(shard-merge-order): bootstrap event before any worker runs, total order not yet observable
    q.schedule(SimTime::ZERO, Event::Boot); //~ waived shard-merge-order
}

fn true_negatives(q: &mut KeyedEventQueue<Event>) {
    q.schedule_keyed(t, key, Event::TxEnd(node)); // keyed: carries the tiebreak
    q.schedule_keyed_in(delay, key, Event::MacTimer(node));
    let plan = self.reschedule(t); // not an event-queue call
    // q.schedule(t, ev) — commented out, must not fire
    let msg = "docs may mention schedule( freely";
    drop((plan, msg));
}
