//! Fixture: `no-nondeterministic-std` true/false positives (lexed only).

fn true_positives() {
    std::thread::sleep(std::time::Duration::from_millis(1)); //~ no-nondeterministic-std
    let pid = std::process::id(); //~ no-nondeterministic-std
    let hasher = std::collections::hash_map::RandomState::new(); //~ no-nondeterministic-std
    let home = std::env::var("HOME"); //~ no-nondeterministic-std
    let all: Vec<(String, String)> = std::env::vars().collect(); //~ no-nondeterministic-std
    drop((pid, hasher, home, all));
}

struct ExpConfig {
    repro: Option<String>,
}

impl ExpConfig {
    // The one sanctioned boundary: a fn literally named `from_env` may read
    // the environment — that is where ambient state becomes explicit config.
    pub fn from_env() -> Self {
        let repro = std::env::var("RIPPLE_REPRO").ok();
        let _jobs = std::env::var_os("RIPPLE_JOBS"); // still inside from_env
        Self { repro }
    }
}

fn waived() {
    // lint:allow(no-nondeterministic-std): worker count changes the schedule, never the results
    let jobs = std::env::var("RIPPLE_JOBS"); //~ waived no-nondeterministic-std
    drop(jobs);
}

fn true_negatives() {
    let d = std::time::Duration::from_millis(5); // Duration math is pure
    // std::thread::sleep(d) — commented out, must not fire
    let msg = "help text may mention env::var and RandomState";
    drop((d, msg));
}
