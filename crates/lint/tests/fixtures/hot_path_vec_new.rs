//! Fixture: `hot-path-vec-new` true/false positives (lexed only).
//! Runs under a deterministic-crate config; constructors and cold helpers
//! may allocate freely — only MacEntity impl bodies and the named engine
//! per-event handlers are hot.

impl MacEntity for FixtureMac {
    fn on_enqueue(&mut self, now: SimTime, packet: Packet, sink: &mut ActionSink) {
        let mut staged = Vec::new(); //~ hot-path-vec-new
        staged.push(packet);
        self.queue.extend(staged);
        sink.push(MacAction::None);
    }

    fn on_frame_rx(&mut self, now: SimTime, rx: &RxFrame, sink: &mut ActionSink) {
        let acked = vec![rx.seq()]; //~ hot-path-vec-new
        self.note(acked);
        drop((now, sink));
    }

    fn helper_inside_hot_impl(&mut self) {
        // The whole MacEntity impl body is hot — helpers called from the
        // handlers churn per frame just the same.
        self.scratch = Vec::new(); //~ hot-path-vec-new
    }
}

impl Runner {
    fn handle_delivery(&mut self, node: NodeId, packet: Packet) {
        if packet.is_last() {
            let tail = vec![node]; //~ hot-path-vec-new
            self.finish(tail);
        }
    }

    fn dispatch(&mut self, event: Event) {
        // lint:allow(hot-path-vec-new): bootstrap branch — runs once per flow, not per frame
        let once = Vec::new(); //~ waived hot-path-vec-new
        self.seed(once, event);
    }

    fn results(&self) -> Vec<u32> {
        // Cold path: result collection runs after the loop exits.
        let mut out = Vec::new();
        out.extend(self.counts.iter().copied());
        out
    }
}

impl FixtureMac {
    pub fn new(cfg: Config) -> FixtureMac {
        // Constructors are the sanctioned place to allocate what the
        // handlers later recycle.
        FixtureMac { queue: Vec::new(), scratch: vec![], cfg }
    }
}

trait MacEntity {
    // A bodyless trait declaration must not mark the next brace hot.
    fn on_idle(&mut self, now: SimTime, sink: &mut ActionSink);
}

fn cold_free_fn() -> Vec<u32> {
    vec![1, 2, 3]
}
