//! Fixture: waiver misuse. Expectations are asserted explicitly in
//! `selftest.rs` (a trailing marker comment cannot tag a malformed waiver
//! line without changing the waiver text itself).

fn unparseable() {
    // lint:allow(no-wall-clock) missing the colon-and-reason part
    let t = Instant::now();
    drop(t);
}

fn empty_reason(m: &HashMap<u32, u32>) {
    // lint:allow(no-hash-iter):
    for k in m { drop(k); }
}

fn unknown_rule() {
    // lint:allow(no-such-rule): the rule name has a typo
    let t = Instant::now();
    drop(t);
}

fn unused() {
    // lint:allow(no-wall-clock): nothing on this line or the next needs it
    let x = 1;
    drop(x);
}
