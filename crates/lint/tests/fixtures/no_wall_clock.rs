//! Fixture: `no-wall-clock` true/false positives (lexed, never compiled).

use std::time::{Duration, Instant};

fn true_positives() {
    let t0 = Instant::now(); //~ no-wall-clock
    let wall = std::time::SystemTime::now(); //~ no-wall-clock
    drop((t0, wall));
}

fn true_negatives(deadline: Instant, dt: Duration) {
    // Instant::now() in a comment must not fire.
    let msg = "Instant::now() in a string must not fire either";
    let later = deadline.checked_add(dt); // storing/combining Instants is fine
    drop((msg, later));
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_probe() {
        let t = std::time::Instant::now(); // test code may time itself
        drop(t);
    }
}
