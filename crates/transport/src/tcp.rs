//! TCP Reno endpoints.
//!
//! Segments are counted in MSS-sized units (Table I's 1000-byte packets);
//! acknowledgements are 40-byte packets flowing back through the same mesh,
//! which is exactly the two-way traffic RIPPLE's bidirectional aggregation
//! exploits.
//!
//! The sender implements slow start, congestion avoidance, fast
//! retransmit/recovery on three duplicate ACKs (NewReno-style partial-ACK
//! handling kept deliberately simple), and an RFC-6298-style RTO with Karn's
//! rule. The receiver acknowledges every segment, buffers out-of-order
//! arrivals, and *counts re-ordered arrivals* — the statistic Section II of
//! the paper reports (26.58 % under preExOR, 27.9 % under MCExOR).

use wmn_sim::{SimDuration, SimTime};

/// Configuration for both endpoint halves.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Wire size of a data segment (Table I: 1000 bytes).
    pub mss_wire_bytes: u32,
    /// Wire size of a pure acknowledgement.
    pub ack_wire_bytes: u32,
    /// Initial congestion window, segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, segments.
    pub initial_ssthresh: f64,
    /// Receiver advertised window, segments.
    pub advertised_window: u32,
    /// Duplicate-ACK threshold for fast retransmit.
    pub dupack_threshold: u32,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// RTO before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Upper bound on the (exponentially backed-off) RTO.
    pub max_rto: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss_wire_bytes: 1000,
            ack_wire_bytes: 40,
            initial_cwnd: 2.0,
            initial_ssthresh: 64.0,
            advertised_window: 40,
            dupack_threshold: 3,
            min_rto: SimDuration::from_millis(200),
            initial_rto: SimDuration::from_millis(1000),
            max_rto: SimDuration::from_secs_f64(60.0),
        }
    }
}

/// A TCP segment as carried (encoded) in a network packet body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpSegment {
    /// A data segment: one MSS worth of payload.
    Data {
        /// Segment sequence number (counted in segments).
        seq: u64,
        /// Sender timestamp, nanoseconds (echoed by the receiver for RTT).
        ts: u64,
        /// Whether this is a retransmission. Receivers exclude
        /// retransmissions from the re-ordering count: a late-arriving
        /// *copy* is recovery, not network re-ordering.
        retx: bool,
    },
    /// A cumulative acknowledgement.
    Ack {
        /// Next in-order segment the receiver expects.
        cum_ack: u64,
        /// Echo of the timestamp of the segment that triggered this ACK.
        ts_echo: u64,
    },
}

impl TcpSegment {
    const TAG_DATA: u8 = 1;
    const TAG_ACK: u8 = 2;

    /// Serialises the segment into a packet body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18);
        self.encode_into(&mut out);
        out
    }

    /// Serialises the segment into a caller-provided buffer — the
    /// allocation-free variant the engines use with pooled frame bodies.
    /// Appends without clearing, so a recycled buffer must arrive empty.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(18);
        match self {
            TcpSegment::Data { seq, ts, retx } => {
                out.push(Self::TAG_DATA);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&ts.to_le_bytes());
                out.push(u8::from(*retx));
            }
            TcpSegment::Ack { cum_ack, ts_echo } => {
                out.push(Self::TAG_ACK);
                out.extend_from_slice(&cum_ack.to_le_bytes());
                out.extend_from_slice(&ts_echo.to_le_bytes());
                out.push(0);
            }
        }
    }

    /// Parses a segment from a packet body.
    ///
    /// Returns `None` for malformed bodies (never panics on wire data).
    pub fn decode(body: &[u8]) -> Option<Self> {
        if body.len() != 18 {
            return None;
        }
        let a = u64::from_le_bytes(body[1..9].try_into().ok()?);
        let b = u64::from_le_bytes(body[9..17].try_into().ok()?);
        match (body[0], body[17]) {
            (Self::TAG_DATA, f @ (0 | 1)) => Some(TcpSegment::Data { seq: a, ts: b, retx: f == 1 }),
            (Self::TAG_ACK, 0) => Some(TcpSegment::Ack { cum_ack: a, ts_echo: b }),
            _ => None,
        }
    }
}

/// Output of a TCP endpoint, interpreted by the simulation runner.
#[derive(Clone, Debug)]
pub enum TcpAction {
    /// Transmit a segment (the runner wraps it in a network packet and
    /// routes it).
    Send {
        /// The segment to encode and send.
        segment: TcpSegment,
        /// Its simulated wire size.
        wire_bytes: u32,
    },
    /// Arm the retransmission timer; only the most recent `generation` is
    /// live.
    SetRtoTimer {
        /// Delay from now.
        delay: SimDuration,
        /// Generation for stale-fire filtering.
        generation: u64,
    },
    /// Sender-side: everything requested so far has been acknowledged
    /// (drives the web workload's transfer/think cycle).
    SendComplete,
}

/// Sender-side statistics.
#[derive(Clone, Copy, Default, Debug)]
pub struct TcpSenderStats {
    /// Data segments transmitted, including retransmissions.
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Fast-retransmit events (three duplicate ACKs).
    pub fast_retransmits: u64,
    /// RTO expirations.
    pub timeouts: u64,
}

/// The sending half of a TCP connection.
#[derive(Debug)]
pub struct TcpSender {
    cfg: TcpConfig,
    next_seq: u64,
    snd_una: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    recover: u64,
    /// Highest sequence ever retransmitted (Karn's rule: no RTT samples at
    /// or below it).
    highest_retx: Option<u64>,
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    rto_backoff: u32,
    timer_generation: u64,
    /// Total segments the application wants sent; `None` = unlimited (FTP).
    app_limit: Option<u64>,
    complete_reported: bool,
    stats: TcpSenderStats,
}

impl TcpSender {
    /// Creates a sender with nothing to send yet.
    pub fn new(cfg: TcpConfig) -> Self {
        let rto = cfg.initial_rto;
        TcpSender {
            cfg,
            next_seq: 0,
            snd_una: 0,
            cwnd: 0.0,
            ssthresh: 0.0,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            highest_retx: None,
            srtt: None,
            rttvar: 0.0,
            rto,
            rto_backoff: 0,
            timer_generation: 0,
            app_limit: Some(0),
            complete_reported: false,
            stats: TcpSenderStats::default(),
        }
    }

    /// Marks the connection as having unlimited data (a long-lived FTP
    /// transfer) and returns the initial burst.
    pub fn start_unlimited(&mut self, now: SimTime) -> Vec<TcpAction> {
        self.app_limit = None;
        self.ensure_started();
        self.pump(now)
    }

    /// Adds `segments` more data to send (web workload transfers) and
    /// returns whatever can be transmitted immediately.
    pub fn request_send(&mut self, segments: u64, now: SimTime) -> Vec<TcpAction> {
        if let Some(limit) = self.app_limit.as_mut() {
            *limit += segments;
        }
        self.complete_reported = false;
        self.ensure_started();
        self.pump(now)
    }

    fn ensure_started(&mut self) {
        if self.cwnd == 0.0 {
            self.cwnd = self.cfg.initial_cwnd;
            self.ssthresh = self.cfg.initial_ssthresh;
        }
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Lowest unacknowledged sequence.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Running statistics.
    pub fn stats(&self) -> TcpSenderStats {
        self.stats
    }

    fn effective_window(&self) -> u64 {
        (self.cwnd.floor() as u64).clamp(1, u64::from(self.cfg.advertised_window))
    }

    fn send_limit(&self) -> u64 {
        self.app_limit.unwrap_or(u64::MAX)
    }

    fn emit_data(&mut self, seq: u64, now: SimTime, retx: bool, out: &mut Vec<TcpAction>) {
        self.stats.segments_sent += 1;
        out.push(TcpAction::Send {
            segment: TcpSegment::Data { seq, ts: now.as_nanos(), retx },
            wire_bytes: self.cfg.mss_wire_bytes,
        });
    }

    fn arm_rto(&mut self, out: &mut Vec<TcpAction>) {
        self.timer_generation += 1;
        let scaled = SimDuration::from_nanos(
            self.rto.as_nanos().saturating_mul(1u64 << self.rto_backoff.min(16)),
        );
        let delay = scaled.min(self.cfg.max_rto);
        out.push(TcpAction::SetRtoTimer { delay, generation: self.timer_generation });
    }

    /// Sends as much new data as the window allows.
    fn pump(&mut self, now: SimTime) -> Vec<TcpAction> {
        let mut out = Vec::new();
        let window_edge = self.snd_una + self.effective_window();
        let limit = self.send_limit();
        let mut sent_any = false;
        while self.next_seq < window_edge && self.next_seq < limit {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.emit_data(seq, now, false, &mut out);
            sent_any = true;
        }
        if sent_any {
            self.arm_rto(&mut out);
        }
        self.maybe_report_complete(&mut out);
        out
    }

    fn maybe_report_complete(&mut self, out: &mut Vec<TcpAction>) {
        if let Some(limit) = self.app_limit {
            if !self.complete_reported && limit > 0 && self.snd_una >= limit {
                self.complete_reported = true;
                out.push(TcpAction::SendComplete);
            }
        }
    }

    /// Processes an incoming cumulative ACK.
    pub fn on_ack(&mut self, cum_ack: u64, ts_echo: u64, now: SimTime) -> Vec<TcpAction> {
        let mut out = Vec::new();
        if cum_ack > self.next_seq {
            return out; // corrupt/stale: acknowledges unsent data
        }
        if cum_ack > self.snd_una {
            let newly_acked = cum_ack - self.snd_una;
            self.snd_una = cum_ack;
            self.dupacks = 0;
            self.rto_backoff = 0;
            // Karn: only sample RTT if nothing at/below the acked range was
            // ever retransmitted.
            let sample_ok = self.highest_retx.map(|h| cum_ack > h + 1).unwrap_or(true);
            if sample_ok && ts_echo > 0 && now.as_nanos() >= ts_echo {
                self.update_rtt((now.as_nanos() - ts_echo) as f64);
            }
            if self.in_recovery {
                if cum_ack >= self.recover {
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                } else {
                    // NewReno partial ACK: retransmit the next hole.
                    self.stats.retransmits += 1;
                    self.highest_retx = Some(self.highest_retx.map_or(cum_ack, |h| h.max(cum_ack)));
                    self.emit_data(cum_ack, now, true, &mut out);
                }
            } else if self.cwnd < self.ssthresh {
                self.cwnd += newly_acked as f64; // slow start
            } else {
                self.cwnd += newly_acked as f64 / self.cwnd; // congestion avoidance
            }
            if self.snd_una < self.next_seq {
                self.arm_rto(&mut out);
            }
            out.extend(self.pump(now));
            self.maybe_report_complete(&mut out);
        } else if cum_ack == self.snd_una && self.snd_una < self.next_seq {
            self.dupacks += 1;
            if self.in_recovery {
                self.cwnd += 1.0; // window inflation per extra dupack
                out.extend(self.pump(now));
            } else if self.dupacks == self.cfg.dupack_threshold {
                // Fast retransmit + fast recovery.
                self.stats.fast_retransmits += 1;
                self.stats.retransmits += 1;
                let flight = (self.next_seq - self.snd_una) as f64;
                self.ssthresh = (flight / 2.0).max(2.0);
                self.cwnd = self.ssthresh + self.cfg.dupack_threshold as f64;
                self.in_recovery = true;
                self.recover = self.next_seq;
                self.highest_retx =
                    Some(self.highest_retx.map_or(self.snd_una, |h| h.max(self.snd_una)));
                self.emit_data(self.snd_una, now, true, &mut out);
                self.arm_rto(&mut out);
            }
        }
        out
    }

    /// Handles an RTO timer fire; stale generations are ignored.
    pub fn on_rto(&mut self, generation: u64, now: SimTime) -> Vec<TcpAction> {
        let mut out = Vec::new();
        if generation != self.timer_generation || self.snd_una >= self.next_seq {
            return out;
        }
        self.stats.timeouts += 1;
        let flight = (self.next_seq - self.snd_una) as f64;
        self.ssthresh = (flight / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dupacks = 0;
        self.in_recovery = false;
        self.rto_backoff += 1;
        self.stats.retransmits += 1;
        self.highest_retx = Some(self.highest_retx.map_or(self.snd_una, |h| h.max(self.snd_una)));
        self.emit_data(self.snd_una, now, true, &mut out);
        self.arm_rto(&mut out);
        out
    }

    fn update_rtt(&mut self, sample_ns: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample_ns);
                self.rttvar = sample_ns / 2.0;
            }
            Some(srtt) => {
                let err = (sample_ns - srtt).abs();
                self.rttvar = 0.75 * self.rttvar + 0.25 * err;
                self.srtt = Some(0.875 * srtt + 0.125 * sample_ns);
            }
        }
        let rto_ns = self.srtt.expect("just set") + 4.0 * self.rttvar;
        self.rto = SimDuration::from_nanos(rto_ns as u64).max(self.cfg.min_rto);
    }
}

/// Receiver-side statistics (the paper's re-ordering measurements come from
/// here).
#[derive(Clone, Copy, Default, Debug)]
pub struct TcpReceiverStats {
    /// Data segments that arrived (including duplicates).
    pub segments_arrived: u64,
    /// Arrivals with a sequence lower than one already seen — the paper's
    /// "out of order" count.
    pub reordered_arrivals: u64,
    /// Duplicate arrivals.
    pub duplicates: u64,
}

/// The receiving half of a TCP connection.
#[derive(Debug)]
pub struct TcpReceiver {
    cfg: TcpConfig,
    rcv_next: u64,
    out_of_order: std::collections::BTreeSet<u64>,
    max_seq_seen: Option<u64>,
    stats: TcpReceiverStats,
}

impl TcpReceiver {
    /// Creates a receiver expecting sequence 0.
    pub fn new(cfg: TcpConfig) -> Self {
        TcpReceiver {
            cfg,
            rcv_next: 0,
            out_of_order: std::collections::BTreeSet::new(),
            max_seq_seen: None,
            stats: TcpReceiverStats::default(),
        }
    }

    /// Segments delivered in order to the application so far.
    pub fn delivered_segments(&self) -> u64 {
        self.rcv_next
    }

    /// Running statistics.
    pub fn stats(&self) -> TcpReceiverStats {
        self.stats
    }

    /// Processes an arriving data segment and returns the ACK to send.
    /// `retx` marks sender retransmissions, which do not count as network
    /// re-ordering.
    pub fn on_data(&mut self, seq: u64, ts: u64, retx: bool) -> Vec<TcpAction> {
        self.stats.segments_arrived += 1;
        if let Some(max_seen) = self.max_seq_seen {
            if !retx && seq < max_seen && seq >= self.rcv_next {
                self.stats.reordered_arrivals += 1;
            }
        }
        self.max_seq_seen = Some(self.max_seq_seen.map_or(seq, |m| m.max(seq)));
        if seq < self.rcv_next || self.out_of_order.contains(&seq) {
            self.stats.duplicates += 1;
        } else if seq == self.rcv_next {
            self.rcv_next += 1;
            while self.out_of_order.remove(&self.rcv_next) {
                self.rcv_next += 1;
            }
        } else {
            self.out_of_order.insert(seq);
        }
        vec![TcpAction::Send {
            segment: TcpSegment::Ack { cum_ack: self.rcv_next, ts_echo: ts },
            wire_bytes: self.cfg.ack_wire_bytes,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn data_seqs(actions: &[TcpAction]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                TcpAction::Send { segment: TcpSegment::Data { seq, .. }, .. } => Some(*seq),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn initial_window_is_two_segments() {
        let mut tx = TcpSender::new(TcpConfig::default());
        let actions = tx.start_unlimited(t(0));
        assert_eq!(data_seqs(&actions), vec![0, 1]);
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut tx = TcpSender::new(TcpConfig::default());
        tx.start_unlimited(t(0));
        // ACK both initial segments: cwnd 2 -> 4, two new per ACK.
        let a1 = tx.on_ack(1, t(0).as_nanos(), t(10));
        let a2 = tx.on_ack(2, t(0).as_nanos(), t(11));
        assert_eq!(data_seqs(&a1).len() + data_seqs(&a2).len(), 4);
        assert!((tx.cwnd() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_avoidance_grows_linearly() {
        // Start directly in congestion avoidance.
        let cfg = TcpConfig { initial_ssthresh: 2.0, ..TcpConfig::default() };
        let mut tx = TcpSender::new(cfg);
        tx.start_unlimited(t(0));
        tx.on_ack(1, 0, t(10));
        let cwnd_after_one = tx.cwnd();
        assert!(cwnd_after_one > 2.0 && cwnd_after_one < 3.0, "+1/cwnd per ACK");
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit() {
        let mut tx = TcpSender::new(TcpConfig::default());
        tx.start_unlimited(t(0));
        // Grow the window a little.
        tx.on_ack(2, 0, t(5));
        let cwnd_before = tx.cwnd();
        // Segment 2 lost: three dupacks for 2.
        assert!(data_seqs(&tx.on_ack(2, 0, t(6))).is_empty());
        assert!(data_seqs(&tx.on_ack(2, 0, t(7))).is_empty());
        let acts = tx.on_ack(2, 0, t(8));
        assert_eq!(data_seqs(&acts), vec![2], "fast retransmit of the hole");
        assert_eq!(tx.stats().fast_retransmits, 1);
        assert!(
            tx.ssthresh <= cwnd_before / 2.0 + 1e-9,
            "slow-start threshold halved to {} from window {}",
            tx.ssthresh,
            cwnd_before
        );
    }

    #[test]
    fn reordering_causes_spurious_fast_retransmit() {
        // The behaviour the paper exploits: mere re-ordering (no loss)
        // still halves the sender's window.
        let mut tx = TcpSender::new(TcpConfig::default());
        tx.start_unlimited(t(0));
        tx.on_ack(2, 0, t(5));
        let before = tx.cwnd();
        for _ in 0..3 {
            tx.on_ack(2, 0, t(6)); // dupacks caused by late segment 2
        }
        assert_eq!(tx.stats().fast_retransmits, 1);
        assert!(tx.ssthresh <= before / 2.0 + 1e-9, "sending rate halved by mere re-ordering");
    }

    #[test]
    fn recovery_exits_on_full_ack() {
        let mut tx = TcpSender::new(TcpConfig::default());
        tx.start_unlimited(t(0));
        tx.on_ack(2, 0, t(5));
        for _ in 0..3 {
            tx.on_ack(2, 0, t(6));
        }
        assert!(tx.in_recovery);
        let recover = tx.recover;
        tx.on_ack(recover, 0, t(50));
        assert!(!tx.in_recovery);
        assert!((tx.cwnd() - tx.ssthresh).abs() < 1e-9, "cwnd deflates to ssthresh");
    }

    #[test]
    fn rto_resets_window_to_one() {
        let mut tx = TcpSender::new(TcpConfig::default());
        let acts = tx.start_unlimited(t(0));
        let generation = acts
            .iter()
            .find_map(|a| match a {
                TcpAction::SetRtoTimer { generation, .. } => Some(*generation),
                _ => None,
            })
            .expect("RTO armed");
        let acts = tx.on_rto(generation, t(1000));
        assert_eq!(data_seqs(&acts), vec![0], "head-of-line retransmitted");
        assert_eq!(tx.cwnd(), 1.0);
        assert_eq!(tx.stats().timeouts, 1);
        // Stale generation is ignored.
        assert!(tx.on_rto(generation, t(2000)).is_empty());
    }

    #[test]
    fn rto_backoff_doubles_delay() {
        let mut tx = TcpSender::new(TcpConfig::default());
        let acts = tx.start_unlimited(t(0));
        let first_delay = acts
            .iter()
            .find_map(|a| match a {
                TcpAction::SetRtoTimer { delay, .. } => Some(*delay),
                _ => None,
            })
            .unwrap();
        let acts = tx.on_rto(1, t(1000));
        let second_delay = acts
            .iter()
            .find_map(|a| match a {
                TcpAction::SetRtoTimer { delay, .. } => Some(*delay),
                _ => None,
            })
            .unwrap();
        assert_eq!(second_delay, first_delay * 2);
    }

    #[test]
    fn limited_transfer_reports_completion() {
        let mut tx = TcpSender::new(TcpConfig::default());
        let acts = tx.request_send(2, t(0));
        assert_eq!(data_seqs(&acts), vec![0, 1]);
        let acts = tx.on_ack(2, 0, t(10));
        assert!(
            acts.iter().any(|a| matches!(a, TcpAction::SendComplete)),
            "transfer completion reported once fully acked"
        );
    }

    #[test]
    fn receiver_acks_cumulatively_and_buffers_gaps() {
        let mut rx = TcpReceiver::new(TcpConfig::default());
        let a0 = rx.on_data(0, 1, false);
        assert!(matches!(
            a0[0],
            TcpAction::Send { segment: TcpSegment::Ack { cum_ack: 1, .. }, .. }
        ));
        // Gap: 2 arrives before 1.
        let a2 = rx.on_data(2, 2, false);
        assert!(matches!(
            a2[0],
            TcpAction::Send { segment: TcpSegment::Ack { cum_ack: 1, .. }, .. }
        ));
        let a1 = rx.on_data(1, 3, false);
        assert!(matches!(
            a1[0],
            TcpAction::Send { segment: TcpSegment::Ack { cum_ack: 3, .. }, .. }
        ));
        assert_eq!(rx.delivered_segments(), 3);
    }

    #[test]
    fn receiver_counts_reordered_arrivals() {
        let mut rx = TcpReceiver::new(TcpConfig::default());
        rx.on_data(0, 1, false);
        rx.on_data(2, 2, false); // ahead
        rx.on_data(1, 3, false); // late: re-ordered
        assert_eq!(rx.stats().reordered_arrivals, 1);
        // A duplicate of an old segment is not re-ordering.
        rx.on_data(0, 4, false);
        assert_eq!(rx.stats().duplicates, 1);
    }

    #[test]
    fn ack_wire_bytes_are_small() {
        let mut rx = TcpReceiver::new(TcpConfig::default());
        let acts = rx.on_data(0, 1, false);
        match acts[0] {
            TcpAction::Send { wire_bytes, .. } => assert_eq!(wire_bytes, 40),
            _ => panic!(),
        }
    }

    proptest! {
        /// Segment codec round-trips.
        #[test]
        fn prop_codec_roundtrip(seq in any::<u64>(), ts in any::<u64>(), ack in any::<bool>()) {
            let seg = if ack {
                TcpSegment::Ack { cum_ack: seq, ts_echo: ts }
            } else {
                TcpSegment::Data { seq, ts, retx: seq % 2 == 0 }
            };
            prop_assert_eq!(TcpSegment::decode(&seg.encode()), Some(seg));
        }

        /// Decoder never panics on arbitrary bytes.
        #[test]
        fn prop_decode_total(body in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = TcpSegment::decode(&body);
        }

        /// The sender never has more than the advertised window in flight,
        /// whatever ACK pattern it observes.
        #[test]
        fn prop_flight_bounded(acks in proptest::collection::vec(0u64..2000, 1..200)) {
            let cfg = TcpConfig::default();
            let awnd = u64::from(cfg.advertised_window);
            let mut tx = TcpSender::new(cfg);
            tx.start_unlimited(SimTime::ZERO);
            for (i, cum) in acks.into_iter().enumerate() {
                let now = SimTime::from_millis(i as u64 + 1);
                let _ = tx.on_ack(cum, 0, now);
                prop_assert!(tx.next_seq - tx.snd_una <= awnd + 1);
            }
        }

        /// In-order delivery count never exceeds distinct arrivals, and the
        /// receiver's rcv_next is monotone.
        #[test]
        fn prop_receiver_monotone(seqs in proptest::collection::vec(0u64..50, 1..200)) {
            let mut rx = TcpReceiver::new(TcpConfig::default());
            let mut last = 0;
            for (i, s) in seqs.iter().enumerate() {
                rx.on_data(*s, i as u64 + 1, false);
                prop_assert!(rx.delivered_segments() >= last);
                last = rx.delivered_segments();
            }
            let distinct: std::collections::BTreeSet<_> = seqs.iter().collect();
            prop_assert!(rx.delivered_segments() as usize <= distinct.len());
        }
    }
}
