//! Transport endpoints for the RIPPLE reproduction.
//!
//! The paper's interactive workloads are TCP (long/short transfers, web
//! traffic) and VoIP over UDP. This crate provides both as passive state
//! machines, mirroring the MAC layer's style:
//!
//! * [`tcp`] — a Reno TCP with the two behaviours the paper's results hinge
//!   on: congestion response to loss, and **spurious fast retransmits under
//!   packet re-ordering** (three duplicate ACKs halve the window — which is
//!   why preExOR's/MCExOR's 26–28 % re-ordering wrecks TCP throughput and
//!   RIPPLE's in-order mTXOPs do not);
//! * [`udp`] — sequence- and timestamp-carrying datagrams for the VoIP and
//!   saturated cross-traffic workloads.
//!
//! Segments travel through the simulator as encoded byte bodies inside
//! network packets; the codecs live next to the endpoint logic and are
//! round-trip property-tested. Each codec offers an `encode_into` variant
//! that appends to a caller-supplied buffer, which is how the engines mint
//! packet bodies straight into recycled `wmn_mac` pool buffers instead of
//! allocating a fresh `Vec` per segment.

pub mod tcp;
pub mod udp;

pub use tcp::{TcpAction, TcpConfig, TcpReceiver, TcpSegment, TcpSender};
pub use udp::{UdpDatagram, UdpSink};
