//! UDP datagrams and the receiving sink used by the VoIP workload.
//!
//! Each datagram carries a sequence number and its send timestamp so the
//! sink can measure one-way delay and loss — the two inputs of the paper's
//! R-factor/MoS computation (Section IV-E).

use wmn_sim::{SimDuration, SimTime};

/// A UDP datagram body: sequence number + send timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UdpDatagram {
    /// Per-flow sequence number.
    pub seq: u64,
    /// Send time in nanoseconds.
    pub sent_at_ns: u64,
}

impl UdpDatagram {
    /// Serialises the datagram into a packet body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    /// Serialises the datagram into a caller-provided buffer — the
    /// allocation-free variant the engines use with pooled frame bodies.
    /// Appends without clearing, so a recycled buffer must arrive empty.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.reserve(16);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.sent_at_ns.to_le_bytes());
    }

    /// Parses a datagram from a packet body; `None` if malformed.
    pub fn decode(body: &[u8]) -> Option<Self> {
        if body.len() != 16 {
            return None;
        }
        Some(UdpDatagram {
            seq: u64::from_le_bytes(body[0..8].try_into().ok()?),
            sent_at_ns: u64::from_le_bytes(body[8..16].try_into().ok()?),
        })
    }
}

/// Receiving endpoint that accumulates per-datagram delays for one flow.
#[derive(Debug, Default)]
pub struct UdpSink {
    delays: Vec<SimDuration>,
    received: u64,
    duplicates: u64,
    seen_max: Option<u64>,
    bytes_received: u64,
}

impl UdpSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        UdpSink::default()
    }

    /// Records an arriving datagram of `wire_bytes` at time `now`.
    pub fn on_datagram(&mut self, dg: UdpDatagram, wire_bytes: u32, now: SimTime) {
        if let Some(max) = self.seen_max {
            if dg.seq <= max {
                // Heuristic duplicate detection is enough: UDP flows here
                // are send-once, so an old seq can only be a MAC duplicate.
            }
        }
        if Some(dg.seq) <= self.seen_max {
            self.duplicates += 1;
            return;
        }
        self.seen_max = Some(self.seen_max.map_or(dg.seq, |m| m.max(dg.seq)));
        self.received += 1;
        self.bytes_received += u64::from(wire_bytes);
        self.delays.push(now.saturating_since(SimTime::from_nanos(dg.sent_at_ns)));
    }

    /// Number of distinct datagrams received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Total payload bytes received (distinct datagrams).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Duplicate arrivals discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// One-way delays of all received datagrams.
    pub fn delays(&self) -> &[SimDuration] {
        &self.delays
    }

    /// Fraction of received datagrams with one-way delay above `budget`
    /// (the paper treats >52 ms wireless delay as a VoIP loss).
    pub fn late_fraction(&self, budget: SimDuration) -> f64 {
        if self.delays.is_empty() {
            return 0.0;
        }
        self.delays.iter().filter(|d| **d > budget).count() as f64 / self.delays.len() as f64
    }

    /// Mean one-way delay of datagrams within `budget` (late ones count as
    /// losses, not delay contributors). `None` if nothing qualified.
    pub fn mean_ontime_delay(&self, budget: SimDuration) -> Option<SimDuration> {
        let ontime: Vec<_> = self.delays.iter().filter(|d| **d <= budget).collect();
        if ontime.is_empty() {
            return None;
        }
        let total: u64 = ontime.iter().map(|d| d.as_nanos()).sum();
        Some(SimDuration::from_nanos(total / ontime.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sink_measures_delay() {
        let mut sink = UdpSink::new();
        let dg = UdpDatagram { seq: 0, sent_at_ns: 1_000_000 };
        sink.on_datagram(dg, 240, SimTime::from_nanos(5_000_000));
        assert_eq!(sink.received(), 1);
        assert_eq!(sink.delays()[0], SimDuration::from_millis(4));
    }

    #[test]
    fn duplicates_discarded() {
        let mut sink = UdpSink::new();
        let dg = UdpDatagram { seq: 3, sent_at_ns: 0 };
        sink.on_datagram(dg, 240, SimTime::from_millis(1));
        sink.on_datagram(dg, 240, SimTime::from_millis(2));
        assert_eq!(sink.received(), 1);
        assert_eq!(sink.duplicates(), 1);
    }

    #[test]
    fn late_fraction_uses_budget() {
        let mut sink = UdpSink::new();
        for (seq, ms) in [(0u64, 10u64), (1, 60), (2, 20)] {
            let dg = UdpDatagram { seq, sent_at_ns: 0 };
            sink.on_datagram(dg, 240, SimTime::from_millis(ms));
        }
        let budget = SimDuration::from_millis(52);
        assert!((sink.late_fraction(budget) - 1.0 / 3.0).abs() < 1e-9);
        let mean = sink.mean_ontime_delay(budget).unwrap();
        assert_eq!(mean, SimDuration::from_millis(15));
    }

    #[test]
    fn empty_sink_is_well_behaved() {
        let sink = UdpSink::new();
        assert_eq!(sink.late_fraction(SimDuration::from_millis(52)), 0.0);
        assert!(sink.mean_ontime_delay(SimDuration::from_millis(52)).is_none());
    }

    proptest! {
        /// Datagram codec round-trips and never panics on junk.
        #[test]
        fn prop_codec_roundtrip(seq in any::<u64>(), ts in any::<u64>()) {
            let dg = UdpDatagram { seq, sent_at_ns: ts };
            prop_assert_eq!(UdpDatagram::decode(&dg.encode()), Some(dg));
        }

        #[test]
        fn prop_decode_total(body in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = UdpDatagram::decode(&body);
        }
    }
}
