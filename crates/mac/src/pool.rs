//! Generation-tagged buffer pool for the zero-copy frame path.
//!
//! A frame's heap state — the encoded transport bytes behind each packet and
//! the subframe vector of a data frame — is allocated **once**, when the
//! transmitter mints it from a [`FramePool`], and from then on travels by
//! reference: cloning a [`Body`] bumps a reference count, broadcasting a
//! frame shares one `Arc<Frame>` across every receiver, and a clean-channel
//! decode never touches the allocator at all. When the last handle drops,
//! the buffer is cleared and parked back in its home pool, so steady-state
//! traffic recycles a bounded working set instead of paying one
//! malloc/free pair per packet per hop.
//!
//! Recycling is **generation-tagged**, mirroring the arrival slab: every
//! mint stamps the buffer with a fresh generation from the pool's counter.
//! The tag is how the property tests pin the invariant that matters — a
//! recycled buffer starts life empty (no stale body bytes, no stale
//! `corrupted` subframes), and two successive occupants of one buffer are
//! distinguishable even though they share an address.
//!
//! The pool is deliberately invisible to simulation results: which buffer a
//! mint returns affects addresses only, never values, so pooling cannot
//! perturb the bit-identical repro contract — including across shard
//! counts, where frames (and thus their buffers) migrate between threads
//! and are reclaimed by whoever drops them last (`FramePool` is
//! `Send + Sync`; parking is a mutex push).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::frame::Subframe;

/// Shared free lists + the generation counter behind a [`FramePool`] handle.
#[derive(Default)]
struct PoolInner {
    /// Parked payload buffers, each uniquely owned (strong count 1).
    bodies: Mutex<Vec<Arc<Vec<u8>>>>,
    /// Parked subframe vectors, each uniquely owned and empty.
    subframes: Mutex<Vec<Arc<Vec<Subframe>>>>,
    /// Monotonic mint counter; every minted buffer carries one value.
    generation: AtomicU64,
}

/// A cloneable handle to a recyclable frame-buffer pool.
///
/// Clones share the same free lists (`Arc` inside), so a MAC entity, the
/// runner, and every in-flight [`Body`] can all return buffers to the same
/// home. Dropping the last handle frees whatever is parked.
#[derive(Clone, Default)]
pub struct FramePool {
    inner: Arc<PoolInner>,
}

impl FramePool {
    /// A fresh pool with empty free lists.
    pub fn new() -> Self {
        FramePool::default()
    }

    /// Locks a free list, recovering from poisoning: the pool is an
    /// allocation cache, so a panic on another thread cannot leave it in a
    /// state worth propagating.
    fn lock<T>(list: &Mutex<Vec<T>>) -> std::sync::MutexGuard<'_, Vec<T>> {
        list.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Stamps and returns the next generation.
    fn next_generation(&self) -> u64 {
        self.inner.generation.fetch_add(1, Ordering::Relaxed)
    }

    /// Mints a payload buffer and fills it via `fill`, reusing a parked
    /// buffer (and its capacity) when one is available. The buffer `fill`
    /// sees is always empty.
    pub fn mint_body_with(&self, fill: impl FnOnce(&mut Vec<u8>)) -> Body {
        let mut arc = Self::lock(&self.inner.bodies).pop().unwrap_or_default();
        let buf = Arc::get_mut(&mut arc).expect("parked body buffers are uniquely owned");
        buf.clear();
        fill(buf);
        Body { buf: Some(arc), home: Some(self.clone()), generation: self.next_generation() }
    }

    /// Mints a payload buffer holding a copy of `contents`.
    pub fn mint_body(&self, contents: &[u8]) -> Body {
        self.mint_body_with(|buf| buf.extend_from_slice(contents))
    }

    /// Mints an empty subframe vector, reusing a parked one (and its
    /// capacity) when available.
    pub fn mint_subframes(&self) -> SubframeVec {
        let arc = Self::lock(&self.inner.subframes).pop().unwrap_or_default();
        debug_assert!(arc.is_empty(), "parked subframe vectors are cleared before parking");
        SubframeVec { buf: Some(arc), home: Some(self.clone()) }
    }

    /// The number of generations minted so far (test/diagnostic surface).
    pub fn generations_minted(&self) -> u64 {
        self.inner.generation.load(Ordering::Relaxed)
    }

    /// Buffers currently parked, `(bodies, subframe vectors)` — the pool's
    /// steady-state working set (test/diagnostic surface).
    pub fn parked(&self) -> (usize, usize) {
        (Self::lock(&self.inner.bodies).len(), Self::lock(&self.inner.subframes).len())
    }

    /// Parks a payload buffer if the caller held the last reference.
    fn park_body(&self, mut arc: Arc<Vec<u8>>) {
        if let Some(buf) = Arc::get_mut(&mut arc) {
            buf.clear();
            Self::lock(&self.inner.bodies).push(arc);
        }
        // Otherwise another Body clone is still alive; its final drop parks.
    }

    /// Parks a subframe vector if the caller held the last reference.
    /// Clearing here drops the contained packets, releasing their bodies
    /// back to *their* pools before this vector is reused.
    fn park_subframes(&self, mut arc: Arc<Vec<Subframe>>) {
        if let Some(buf) = Arc::get_mut(&mut arc) {
            buf.clear();
            Self::lock(&self.inner.subframes).push(arc);
        }
    }
}

impl fmt::Debug for FramePool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (bodies, subframes) = self.parked();
        f.debug_struct("FramePool")
            .field("parked_bodies", &bodies)
            .field("parked_subframes", &subframes)
            .field("generations_minted", &self.generations_minted())
            .finish()
    }
}

/// A packet body: reference-counted, possibly pool-recycled bytes.
///
/// Cloning a `Body` is a reference-count bump — the bytes are shared, never
/// copied — which is what makes `Packet::clone` cheap enough for the MAC
/// retransmission paths to use freely. Bodies are immutable after minting;
/// dropping the last handle of a pooled body clears it and parks the buffer
/// in its home pool.
pub struct Body {
    /// The shared bytes. `Some` until drop (the `Option` exists so `Drop`
    /// can move the `Arc` out for parking).
    buf: Option<Arc<Vec<u8>>>,
    /// The pool to park in, if pool-minted.
    home: Option<FramePool>,
    /// Mint generation (0 for unpooled bodies).
    generation: u64,
}

impl Body {
    /// An empty, unpooled body.
    pub fn empty() -> Body {
        Body::from(Vec::new())
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        self.buf.as_deref().map_or(&[], |v| v.as_slice())
    }

    /// The generation stamped at mint time (0 for unpooled bodies). Two
    /// bodies minted from the same pool never share a generation, even when
    /// they recycled the same buffer.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether this body came from a pool (and will be parked on last drop).
    pub fn is_pooled(&self) -> bool {
        self.home.is_some()
    }
}

impl From<Vec<u8>> for Body {
    fn from(bytes: Vec<u8>) -> Self {
        Body { buf: Some(Arc::new(bytes)), home: None, generation: 0 }
    }
}

impl Clone for Body {
    fn clone(&self) -> Self {
        Body { buf: self.buf.clone(), home: self.home.clone(), generation: self.generation }
    }
}

impl Drop for Body {
    fn drop(&mut self) {
        if let (Some(arc), Some(home)) = (self.buf.take(), self.home.take()) {
            home.park_body(arc);
        }
    }
}

impl Deref for Body {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Body {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Body {}

impl fmt::Debug for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Body({} bytes)", self.as_slice().len())
    }
}

/// A data frame's subframe storage: reference-counted, possibly
/// pool-recycled.
///
/// Cloning shares the storage (a `DataFrame` clone is shallow here); the
/// first mutation of a *shared* vector — `DerefMut` goes through
/// [`Arc::make_mut`] — copies it, which is exactly the copy-on-write the
/// corruption seam relies on. An unshared vector mutates in place, so
/// build-then-transmit never pays the copy.
pub struct SubframeVec {
    /// The shared storage. `Some` until drop (see [`Body::buf`]).
    buf: Option<Arc<Vec<Subframe>>>,
    /// The pool to park in, if pool-minted.
    home: Option<FramePool>,
}

impl SubframeVec {
    /// An empty, unpooled vector.
    pub fn new() -> SubframeVec {
        SubframeVec::from(Vec::new())
    }

    /// Appends a subframe (copy-on-write when the storage is shared).
    pub fn push(&mut self, subframe: Subframe) {
        self.vec_mut().push(subframe);
    }

    /// The subframes as a slice.
    pub fn as_slice(&self) -> &[Subframe] {
        self.buf.as_deref().map_or(&[], |v| v.as_slice())
    }

    /// Mutable access with copy-on-write sharing semantics.
    fn vec_mut(&mut self) -> &mut Vec<Subframe> {
        Arc::make_mut(self.buf.as_mut().expect("live SubframeVec has storage"))
    }
}

impl Default for SubframeVec {
    fn default() -> Self {
        SubframeVec::new()
    }
}

impl From<Vec<Subframe>> for SubframeVec {
    fn from(subframes: Vec<Subframe>) -> Self {
        SubframeVec { buf: Some(Arc::new(subframes)), home: None }
    }
}

impl FromIterator<Subframe> for SubframeVec {
    fn from_iter<I: IntoIterator<Item = Subframe>>(iter: I) -> Self {
        SubframeVec::from(iter.into_iter().collect::<Vec<_>>())
    }
}

impl Clone for SubframeVec {
    fn clone(&self) -> Self {
        SubframeVec { buf: self.buf.clone(), home: self.home.clone() }
    }
}

impl Drop for SubframeVec {
    fn drop(&mut self) {
        if let (Some(arc), Some(home)) = (self.buf.take(), self.home.take()) {
            home.park_subframes(arc);
        }
    }
}

impl Deref for SubframeVec {
    type Target = [Subframe];

    fn deref(&self) -> &[Subframe] {
        self.as_slice()
    }
}

impl DerefMut for SubframeVec {
    fn deref_mut(&mut self) -> &mut [Subframe] {
        self.vec_mut().as_mut_slice()
    }
}

impl<'a> IntoIterator for &'a SubframeVec {
    type Item = &'a Subframe;
    type IntoIter = std::slice::Iter<'a, Subframe>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a mut SubframeVec {
    type Item = &'a mut Subframe;
    type IntoIter = std::slice::IterMut<'a, Subframe>;

    fn into_iter(self) -> Self::IntoIter {
        (**self).iter_mut()
    }
}

impl fmt::Debug for SubframeVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Shared free list + generation counter behind a [`SlotPool`] handle.
struct SlotPoolInner<T> {
    /// Parked slot buffers, each cleared before parking.
    slots: Mutex<Vec<Vec<T>>>,
    /// Monotonic mint counter; every minted slot carries one value.
    generation: AtomicU64,
}

/// A recyclable pool of uniquely-owned scratch buffers ("slots") — the
/// [`FramePool`] sibling for the MAC's queue and reorder entries.
///
/// Where [`FramePool`] recycles *shared* frame state (reference-counted
/// bodies and subframe vectors), a `SlotPool` recycles plain `Vec<T>`
/// buffers that one owner fills, drains, and drops: the batch a saturated
/// interface queue hands to the aggregator, the contiguous run a reorder
/// buffer releases. Minting pops a parked buffer (or allocates the first
/// time), dropping a [`Slot`] clears it and parks it back, and every mint
/// stamps a fresh generation so the property tests can pin that no stale
/// entry ever leaks across reuse.
///
/// Like its sibling, the pool is invisible to simulation results: which
/// buffer a mint returns affects addresses only, never values.
pub struct SlotPool<T> {
    inner: Arc<SlotPoolInner<T>>,
}

impl<T> SlotPool<T> {
    /// A fresh pool with an empty free list.
    pub fn new() -> Self {
        SlotPool {
            inner: Arc::new(SlotPoolInner {
                slots: Mutex::new(Vec::new()),
                generation: AtomicU64::new(0),
            }),
        }
    }

    /// Mints an empty slot, reusing a parked buffer (and its capacity)
    /// when one is available.
    pub fn mint(&self) -> Slot<T> {
        let buf = FramePool::lock(&self.inner.slots).pop().unwrap_or_default();
        debug_assert!(buf.is_empty(), "parked slots are cleared before parking");
        let generation = self.inner.generation.fetch_add(1, Ordering::Relaxed);
        Slot { buf: Some(buf), home: Some(self.clone()), generation }
    }

    /// The number of generations minted so far (test/diagnostic surface).
    pub fn generations_minted(&self) -> u64 {
        self.inner.generation.load(Ordering::Relaxed)
    }

    /// Buffers currently parked (test/diagnostic surface).
    pub fn parked(&self) -> usize {
        FramePool::lock(&self.inner.slots).len()
    }

    /// Parks a drained buffer for reuse.
    fn park(&self, mut buf: Vec<T>) {
        buf.clear();
        FramePool::lock(&self.inner.slots).push(buf);
    }
}

impl<T> Default for SlotPool<T> {
    fn default() -> Self {
        SlotPool::new()
    }
}

impl<T> Clone for SlotPool<T> {
    fn clone(&self) -> Self {
        SlotPool { inner: Arc::clone(&self.inner) }
    }
}

impl<T> fmt::Debug for SlotPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotPool")
            .field("parked", &self.parked())
            .field("generations_minted", &self.generations_minted())
            .finish()
    }
}

/// A pool-minted scratch buffer: a `Vec<T>` that clears itself and parks
/// back in its home [`SlotPool`] on drop. Derefs to the `Vec`, so filling
/// (`push`) and draining (`drain(..)`) read like plain vector code.
pub struct Slot<T> {
    /// The buffer. `Some` until drop (the `Option` exists so `Drop` can
    /// move it out for parking).
    buf: Option<Vec<T>>,
    /// The pool to park in, if pool-minted.
    home: Option<SlotPool<T>>,
    /// Mint generation (0 for detached slots).
    generation: u64,
}

impl<T> Slot<T> {
    /// An empty slot with no home pool (tests, unpooled callers): behaves
    /// like a plain `Vec` and is simply dropped.
    pub fn detached() -> Slot<T> {
        Slot { buf: Some(Vec::new()), home: None, generation: 0 }
    }

    /// The generation stamped at mint time (0 for detached slots). Two
    /// slots minted from the same pool never share a generation, even when
    /// they recycled the same buffer.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn vec(&self) -> &Vec<T> {
        self.buf.as_ref().expect("live slot has storage")
    }

    fn vec_mut(&mut self) -> &mut Vec<T> {
        self.buf.as_mut().expect("live slot has storage")
    }
}

impl<T> Drop for Slot<T> {
    fn drop(&mut self) {
        if let (Some(buf), Some(home)) = (self.buf.take(), self.home.take()) {
            home.park(buf);
        }
    }
}

impl<T> Deref for Slot<T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        self.vec()
    }
}

impl<T> DerefMut for Slot<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        self.vec_mut()
    }
}

impl<'a, T> IntoIterator for &'a Slot<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.vec().iter()
    }
}

impl<T: fmt::Debug> fmt::Debug for Slot<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.vec().iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{NetHeader, Packet, Proto};
    use wmn_sim::{FlowId, NodeId};

    fn packet(pool: &FramePool, payload: &[u8]) -> Packet {
        Packet::new(
            NetHeader {
                flow: FlowId::new(0),
                src: NodeId::new(0),
                dst: NodeId::new(1),
                proto: Proto::Udp,
                wire_bytes: 100,
            },
            pool.mint_body(payload),
        )
    }

    #[test]
    fn recycled_body_is_empty_with_a_fresh_generation() {
        let pool = FramePool::new();
        let first = pool.mint_body(b"stale contents");
        let first_gen = first.generation();
        drop(first);
        assert_eq!(pool.parked().0, 1, "last drop parks the buffer");
        let second = pool.mint_body_with(|_| {});
        assert_ne!(second.generation(), first_gen, "recycling mints a fresh generation");
        assert!(second.as_slice().is_empty(), "no stale bytes survive recycling");
        assert_eq!(pool.parked().0, 0, "the parked buffer was reused");
    }

    #[test]
    fn clones_share_bytes_and_only_the_last_drop_parks() {
        let pool = FramePool::new();
        let a = pool.mint_body(b"shared");
        let b = a.clone();
        drop(a);
        assert_eq!(pool.parked().0, 0, "a live clone keeps the buffer out");
        assert_eq!(&*b, b"shared");
        drop(b);
        assert_eq!(pool.parked().0, 1);
    }

    #[test]
    fn subframe_vec_clears_on_recycle_and_releases_bodies() {
        let pool = FramePool::new();
        let mut sfs = pool.mint_subframes();
        sfs.push(Subframe { seq: 0, packet: packet(&pool, b"xyz"), corrupted: true });
        drop(sfs);
        let (bodies, vecs) = pool.parked();
        assert_eq!(vecs, 1, "subframe vector parked");
        assert_eq!(bodies, 1, "clearing released the packet body too");
        let recycled = pool.mint_subframes();
        assert!(recycled.is_empty(), "no stale subframes (or corrupted flags) survive");
    }

    #[test]
    fn shared_subframes_copy_on_write() {
        let pool = FramePool::new();
        let mut original = pool.mint_subframes();
        original.push(Subframe { seq: 7, packet: packet(&pool, b""), corrupted: false });
        let mut copy = original.clone();
        copy[0].corrupted = true;
        assert!(!original[0].corrupted, "mutating a shared copy must not leak back");
        assert!(copy[0].corrupted);
    }

    proptest::proptest! {
        /// Whatever the mint/clone/drop interleaving, recycling never leaks
        /// state between a buffer's successive occupants: every minted body
        /// holds exactly its own contents under a never-before-seen
        /// generation, and every minted subframe vector starts empty — no
        /// stale bytes, no stale `corrupted` flags — even though the
        /// underlying allocations are reused.
        #[test]
        fn prop_recycling_never_leaks_stale_state(
            ops in proptest::collection::vec(
                (0u8..4, 0usize..8, proptest::collection::vec(proptest::prelude::any::<u8>(), 0..16)),
                1..64,
            ),
        ) {
            let pool = FramePool::new();
            let mut live_bodies: Vec<Body> = Vec::new();
            let mut live_vecs: Vec<SubframeVec> = Vec::new();
            let mut seen_generations = std::collections::BTreeSet::new();
            for (op, slot, payload) in ops {
                match op {
                    // Mint a body: its contents and generation are its own.
                    0 => {
                        let body = pool.mint_body(&payload);
                        proptest::prop_assert_eq!(
                            body.as_slice(), payload.as_slice(),
                            "a minted body holds exactly what it was filled with"
                        );
                        proptest::prop_assert!(
                            seen_generations.insert(body.generation()),
                            "generation tags are never reused"
                        );
                        live_bodies.push(body);
                    }
                    // Mint a subframe vector and dirty it with a corrupted
                    // subframe — the stale state a later occupant must not see.
                    1 => {
                        let mut sfs = pool.mint_subframes();
                        proptest::prop_assert!(
                            sfs.is_empty(),
                            "a recycled subframe vector starts life empty"
                        );
                        let seq = u32::try_from(slot).unwrap();
                        sfs.push(Subframe { seq, packet: packet(&pool, &payload), corrupted: true });
                        live_vecs.push(sfs);
                    }
                    // Clone a live handle: sharing, not copying.
                    2 => {
                        if let Some(b) = live_bodies.get(slot % live_bodies.len().max(1)) {
                            live_bodies.push(b.clone());
                        }
                        if let Some(v) = live_vecs.get(slot % live_vecs.len().max(1)) {
                            live_vecs.push(v.clone());
                        }
                    }
                    // Drop a live handle; the last one parks its buffer.
                    _ => {
                        if !live_bodies.is_empty() {
                            live_bodies.swap_remove(slot % live_bodies.len());
                        } else if !live_vecs.is_empty() {
                            live_vecs.swap_remove(slot % live_vecs.len());
                        }
                    }
                }
            }
            // Drain everything, then remint every parked buffer: each must
            // come back empty and freshly tagged regardless of its history.
            drop((live_bodies, live_vecs));
            let (parked_bodies, parked_vecs) = pool.parked();
            for _ in 0..parked_bodies {
                let b = pool.mint_body_with(|_| {});
                proptest::prop_assert!(b.as_slice().is_empty(), "no stale bytes survive recycling");
                proptest::prop_assert!(seen_generations.insert(b.generation()));
            }
            for _ in 0..parked_vecs {
                proptest::prop_assert!(
                    pool.mint_subframes().is_empty(),
                    "no stale subframes (or corrupted flags) survive recycling"
                );
            }
        }
    }

    #[test]
    fn slot_pool_recycles_capacity_across_mints() {
        let pool: SlotPool<u32> = SlotPool::new();
        let mut slot = pool.mint();
        slot.extend(0..100);
        let capacity = slot.capacity();
        assert!(capacity >= 100);
        drop(slot);
        assert_eq!(pool.parked(), 1);
        let recycled = pool.mint();
        assert!(recycled.is_empty(), "a recycled slot starts life empty");
        assert_eq!(recycled.capacity(), capacity, "recycling keeps the grown capacity");
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn detached_slots_work_without_a_pool() {
        let mut slot: Slot<u8> = Slot::detached();
        slot.push(7);
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.as_slice(), &[7]);
    }

    proptest::proptest! {
        /// Mirror of the `FramePool` pin above, for [`SlotPool`]: whatever
        /// the mint/fill/drop interleaving, a reminted slot is always empty
        /// and carries a never-before-seen generation — no stale entries
        /// leak across reuse even though the buffers themselves recycle.
        #[test]
        fn prop_slot_remint_is_empty_with_fresh_generation(
            ops in proptest::collection::vec(
                (proptest::prelude::any::<bool>(), 0usize..8, 0u32..1000),
                1..64,
            ),
        ) {
            let pool: SlotPool<u32> = SlotPool::new();
            let mut live: Vec<Slot<u32>> = Vec::new();
            let mut seen_generations = std::collections::BTreeSet::new();
            for (mint, slot_idx, fill) in ops {
                if mint || live.is_empty() {
                    let mut s = pool.mint();
                    proptest::prop_assert!(s.is_empty(), "a reminted slot starts life empty");
                    proptest::prop_assert!(
                        seen_generations.insert(s.generation()),
                        "generation tags are never reused"
                    );
                    // Dirty the buffer — the stale state a later occupant
                    // must not see.
                    s.extend(std::iter::repeat_n(fill, slot_idx + 1));
                    live.push(s);
                } else {
                    live.swap_remove(slot_idx % live.len());
                }
            }
            // Drain everything, then remint every parked buffer.
            drop(live);
            for _ in 0..pool.parked() {
                let s = pool.mint();
                proptest::prop_assert!(s.is_empty(), "no stale entries survive recycling");
                proptest::prop_assert!(seen_generations.insert(s.generation()));
            }
        }
    }

    #[test]
    fn unpooled_fallbacks_work_without_a_pool() {
        let body = Body::from(b"plain".to_vec());
        assert_eq!(body.generation(), 0);
        assert!(!body.is_pooled());
        let header = NetHeader {
            flow: FlowId::new(0),
            src: NodeId::new(0),
            dst: NodeId::new(1),
            proto: Proto::Udp,
            wire_bytes: 40,
        };
        let mut sfs = SubframeVec::new();
        sfs.push(Subframe { seq: 1, packet: Packet::new(header, Body::empty()), corrupted: false });
        assert_eq!(sfs.len(), 1);
    }
}
