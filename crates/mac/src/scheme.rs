//! [`MacScheme`]: the factory interface a forwarding scheme exposes to the
//! simulation runner.
//!
//! A *scheme* is what a scenario selects (DCF, AFR, preExOR, MCExOR,
//! RIPPLE, …); a [`MacEntity`] is the per-node state
//! machine a scheme instantiates. Before this trait the runner hardwired a
//! `match` over every known scheme; now it builds the whole node stack
//! through this interface, so adding a MAC means implementing the trait in
//! the crate that owns the state machine (`wmn_mac` for DCF/AFR,
//! `wmn_routing` for the ExOR variants, `ripple` for RIPPLE itself) — no
//! runner change required. Scenario-level scheme enums stay copyable and
//! allocation-free by *enum-dispatching* to these implementations.

use wmn_phy::PhyParams;
use wmn_sim::{NodeId, StreamRng};

use crate::MacEntity;

/// A forwarding scheme: per-node MAC factory plus the routing-shape
/// metadata the scenario layer needs before any node exists.
pub trait MacScheme {
    /// The label the paper's figures use for this scheme.
    fn label(&self) -> &'static str;

    /// Whether routes must be expressed as opportunistic priority lists
    /// (forwarder candidates) rather than per-hop next-hop tables.
    fn is_opportunistic(&self) -> bool;

    /// Builds the MAC state machine for one station. `rng` is the node's
    /// private stream (derived as `mac/<index>` by the runner); `params`
    /// carries the PHY timing the MAC derives its protocol constants from.
    fn build_mac(&self, params: &PhyParams, node: NodeId, rng: StreamRng) -> Box<dyn MacEntity>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcf::DcfScheme;

    #[test]
    fn dcf_scheme_builds_entities_and_reports_metadata() {
        let plain = DcfScheme { aggregation: 1 };
        assert_eq!(plain.label(), "DCF");
        assert!(!plain.is_opportunistic());
        assert_eq!(DcfScheme { aggregation: 16 }.label(), "AFR");
        let params = PhyParams::paper_216();
        let mut mac = plain.build_mac(&params, NodeId::new(0), StreamRng::derive(1, "mac/test"));
        assert_eq!(mac.stats(), crate::MacStats::default());
        // The built entity is live: an idle notification is accepted.
        let _ = crate::MacEntityExt::on_idle_vec(&mut *mac, wmn_sim::SimTime::ZERO);
    }
}
