//! Section II's closed-form signaling-overhead model — the analytic
//! counterpart of the Fig. 2 transmission timeline.
//!
//! For a packet relayed over `n` transmissions (source → n−1 forwarders →
//! destination), with `T_ack` the *complete* MAC-ACK transmission time
//! (PHY header included) and `T_data` the complete data payload time after
//! its PHY header:
//!
//! * **PRR** (predetermined route):
//!   `n·(T_bo + T_DIFS + T_phy + T_data + T_SIFS + T_ack)`
//! * **preExOR**: every potential receiver ACKs in its own slot, so hop `k`
//!   (with `n−k+1` downstream list members) costs `n−k+1` ACK slots:
//!   `n·(T_bo + T_DIFS + T_phy + T_data) + [n(n+1)/2]·(T_SIFS + T_ack)`
//! * **MCExOR** (compressed ACKs — one ACK, rank-scaled SIFS waits):
//!   `n·(T_bo + T_DIFS + T_phy + T_data + T_ack) + [n(n+1)/2]·T_SIFS`
//! * **RIPPLE**: one contention for the whole multi-hop TXOP; forwarder of
//!   rank `i` relays data after `i·T_slot + T_SIFS` idle and relays the ACK
//!   after `(i−1)·T_slot + T_SIFS`; with `k`-packet aggregation the data
//!   time grows sub-linearly and the whole mTXOP is amortised over `k`.
//!
//! The paper's worked example (two packets over the 3-hop route
//! 0→1→2→3) is verified in the tests: preExOR is `6·(T_ACK + T_SIFS)`
//! slower than PRR, MCExOR is `6·T_ACK` faster than preExOR yet `6·T_SIFS`
//! slower than PRR.

use wmn_phy::PhyParams;
use wmn_sim::SimDuration;

use crate::frame::{
    ACK_BITMAP_BYTES, ACK_BYTES, FORWARDER_ENTRY_BYTES, MAC_HEADER_BYTES, SUBFRAME_OVERHEAD_BYTES,
};

/// Closed-form per-packet delivery-time model for each forwarding scheme.
///
/// # Example
///
/// ```
/// use wmn_mac::OverheadModel;
/// use wmn_phy::PhyParams;
///
/// let m = OverheadModel::new(PhyParams::paper_216());
/// // On a 3-hop path RIPPLE's expedited mTXOP beats per-hop contention.
/// assert!(m.ripple(3, 1) < m.prr(3));
/// ```
#[derive(Clone, Debug)]
pub struct OverheadModel {
    params: PhyParams,
    /// Expected backoff before a transmission opportunity, in slots
    /// (CWmin/2 by default).
    pub mean_backoff_slots: f64,
}

impl OverheadModel {
    /// Builds the model with the default mean backoff of CWmin/2 slots.
    pub fn new(params: PhyParams) -> Self {
        let mean_backoff_slots = f64::from(params.cw_min) / 2.0;
        OverheadModel { params, mean_backoff_slots }
    }

    fn t_bo(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.mean_backoff_slots * self.params.slot.as_micros_f64())
    }

    /// Complete ACK transmission time (PHY header + ACK payload at the
    /// basic rate).
    pub fn t_ack(&self) -> SimDuration {
        self.params.airtime(self.params.basic_rate, ACK_BYTES)
    }

    fn t_ack_bitmap(&self) -> SimDuration {
        self.params.airtime(self.params.basic_rate, ACK_BYTES + ACK_BITMAP_BYTES)
    }

    /// Complete data-frame transmission time for `k` aggregated packets
    /// (PHY header + MAC header + k subframes), at the data rate.
    pub fn t_data(&self, k: u32, forwarder_entries: u32) -> SimDuration {
        let bytes = MAC_HEADER_BYTES
            + FORWARDER_ENTRY_BYTES * forwarder_entries
            + k * (SUBFRAME_OVERHEAD_BYTES + self.params.packet_size);
        self.params.airtime(self.params.data_rate, bytes)
    }

    /// Per-packet delivery time under predetermined routing (PRR) over `n`
    /// transmissions.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn prr(&self, n: u32) -> SimDuration {
        assert!(n > 0, "at least one transmission required");
        let per_hop =
            self.t_bo() + self.params.difs() + self.t_data(1, 0) + self.params.sifs + self.t_ack();
        per_hop * u64::from(n)
    }

    /// Per-packet delivery time under preExOR over `n` transmissions: hop
    /// `k` is followed by `n−k+1` sequential ACK slots.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pre_exor(&self, n: u32) -> SimDuration {
        assert!(n > 0, "at least one transmission required");
        let data_part = (self.t_bo() + self.params.difs() + self.t_data(1, n)) * u64::from(n);
        let ack_slots = u64::from(n) * u64::from(n + 1) / 2;
        data_part + (self.params.sifs + self.t_ack()) * ack_slots
    }

    /// Per-packet delivery time under MCExOR over `n` transmissions: one
    /// compressed ACK per hop plus rank-scaled SIFS waits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn mc_exor(&self, n: u32) -> SimDuration {
        assert!(n > 0, "at least one transmission required");
        let per_hop = self.t_bo() + self.params.difs() + self.t_data(1, n) + self.t_ack();
        let sifs_slots = u64::from(n) * u64::from(n + 1) / 2;
        per_hop * u64::from(n) + self.params.sifs * sifs_slots
    }

    /// Per-packet delivery time under RIPPLE with `agg`-packet aggregation
    /// over `n` transmissions (`n−1` forwarders), amortised per packet.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `agg` is zero.
    pub fn ripple(&self, n: u32, agg: u32) -> SimDuration {
        assert!(n > 0, "at least one transmission required");
        assert!(agg > 0, "aggregation must be at least 1");
        let p = &self.params;
        // One contention for the whole multi-hop TXOP.
        let mut total = self.t_bo() + p.difs();
        // Data path: source sends, forwarder of rank i relays after
        // i·slot + SIFS. Ranks run n−1 … 1 toward the destination.
        total += self.t_data(agg, n) * u64::from(n);
        for rank in 1..n {
            total += p.slot * u64::from(rank) + p.sifs;
        }
        // ACK path: destination after SIFS, forwarder of rank i relays the
        // ACK after (i−1)·slot + SIFS.
        total += (self.t_ack_bitmap() + p.sifs) * u64::from(n);
        for rank in 1..n {
            total += p.slot * u64::from(rank - 1);
        }
        total / u64::from(agg)
    }

    /// Per-packet delivery time under AFR (per-hop DCF with `agg`-packet
    /// aggregation) over `n` transmissions, amortised per packet.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `agg` is zero.
    pub fn afr(&self, n: u32, agg: u32) -> SimDuration {
        assert!(n > 0, "at least one transmission required");
        assert!(agg > 0, "aggregation must be at least 1");
        let per_hop = self.t_bo()
            + self.params.difs()
            + self.t_data(agg, 0)
            + self.params.sifs
            + self.t_ack_bitmap();
        per_hop * u64::from(n) / u64::from(agg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OverheadModel {
        OverheadModel::new(PhyParams::paper_216())
    }

    /// The paper's Fig.-2 example: two packets over the 3-hop route
    /// 0→1→2→3; "preExOR takes 6·(T_ACK + T_SIFS) longer than PRR".
    #[test]
    fn pre_exor_costs_six_ack_slots_over_prr() {
        let m = model();
        let two_packets_extra = (m.pre_exor(3) - m.prr_with_list_data(3)) * 2;
        let expected = (m.t_ack() + m.params.sifs) * 6;
        assert_eq!(two_packets_extra, expected);
    }

    /// "MCExOR takes 6·T_ACK less time than preExOR".
    #[test]
    fn mc_exor_saves_six_acks_over_pre_exor() {
        let m = model();
        let saving = (m.pre_exor(3) - m.mc_exor(3)) * 2;
        assert_eq!(saving, m.t_ack() * 6);
    }

    /// "…but still 6·T_SIFS longer than PRR".
    #[test]
    fn mc_exor_costs_six_sifs_over_prr() {
        let m = model();
        let extra = (m.mc_exor(3) - m.prr_with_list_data(3)) * 2;
        assert_eq!(extra, m.params.sifs * 6);
    }

    /// RIPPLE without aggregation already beats PRR on multi-hop paths (it
    /// contends once instead of n times).
    #[test]
    fn ripple_beats_prr_on_multihop() {
        let m = model();
        for n in 2..=7 {
            assert!(m.ripple(n, 1) < m.prr(n), "ripple(n={n}) should beat PRR");
        }
    }

    /// Aggregation amortises contention: RIPPLE-16 is far cheaper per packet
    /// than RIPPLE-1, and AFR-16 far cheaper than DCF.
    #[test]
    fn aggregation_amortises_overhead() {
        let m = model();
        assert!(m.ripple(3, 16) * 2 < m.ripple(3, 1));
        assert!(m.afr(3, 16) * 2 < m.afr(3, 1));
    }

    /// The full ordering the paper's Fig. 2 illustrates, for the most
    /// probable transmission sequence: RIPPLE16 < RIPPLE1 < PRR < MCExOR <
    /// preExOR.
    #[test]
    fn fig2_ordering() {
        let m = model();
        let n = 3;
        let r16 = m.ripple(n, 16);
        let r1 = m.ripple(n, 1);
        let prr = m.prr(n);
        let mce = m.mc_exor(n);
        let pre = m.pre_exor(n);
        assert!(r16 < r1, "{r16:?} < {r1:?}");
        assert!(r1 < prr, "{r1:?} < {prr:?}");
        assert!(prr < mce, "{prr:?} < {mce:?}");
        assert!(mce < pre, "{mce:?} < {pre:?}");
    }

    /// Single-transmission degenerate case: opportunistic schemes reduce to
    /// roughly PRR plus nothing pathological.
    #[test]
    fn single_hop_sane() {
        let m = model();
        assert!(m.pre_exor(1) >= m.prr_with_list_data(1));
        assert!(m.mc_exor(1) >= m.prr_with_list_data(1));
    }

    impl OverheadModel {
        /// PRR with the same forwarder-list bytes as the opportunistic
        /// schemes carry, isolating pure signaling differences (the paper's
        /// identities compare equal data payloads).
        fn prr_with_list_data(&self, n: u32) -> SimDuration {
            let per_hop = self.t_bo()
                + self.params.difs()
                + self.t_data(1, n)
                + self.params.sifs
                + self.t_ack();
            per_hop * u64::from(n)
        }
    }
}
