//! Network packets and MAC frames.
//!
//! Terminology follows the paper: a *packet* is what the upper layer hands
//! to the MAC; a *frame* is what the MAC hands to the PHY. Under aggregation
//! a frame carries up to 16 packets as subframes, each protected by its own
//! CRC, so the channel can corrupt subframes individually while the frame
//! header survives.
//!
//! Simulated wire sizes are computed from the declared packet size plus
//! fixed header costs; the in-memory [`Body`] bytes are metadata (an encoded
//! transport segment) and do not influence airtime.
//!
//! Since the zero-copy rework, frame state is built to be *shared*, not
//! copied: packet bodies are reference-counted [`Body`] buffers (cloning a
//! [`Packet`] bumps a count, it does not copy bytes), subframe storage is a
//! copy-on-write [`SubframeVec`], and forwarder/relay/ACK lists are inline
//! [`SmallList`]s ([`NodeList`], [`AckList`]) that never touch the heap at
//! their in-protocol sizes. A received frame reaches the MAC as an
//! [`RxFrame`]: the shared broadcast `Arc` on the clean-channel fast path,
//! an owned diverged copy only when the channel actually corrupted
//! something.

use std::ops::Deref;
use std::sync::Arc;

use wmn_sim::{FlowId, NodeId};

pub use crate::pool::{Body, SubframeVec};
use crate::smalllist::SmallList;

/// MAC header + FCS cost of a data frame, bytes.
pub const MAC_HEADER_BYTES: u32 = 28;
/// Per-subframe cost: subframe header (8) + per-subframe CRC (4), bytes.
pub const SUBFRAME_OVERHEAD_BYTES: u32 = 12;
/// Base size of a MAC ACK frame, bytes.
pub const ACK_BYTES: u32 = 14;
/// Extra bytes an aggregation-aware (bitmap) ACK carries.
pub const ACK_BITMAP_BYTES: u32 = 4;
/// Bytes consumed per entry of an in-frame forwarder list.
pub const FORWARDER_ENTRY_BYTES: u32 = 6;

/// A forwarder/relay priority list: inline up to 8 entries (the paper's
/// lists stay well under the default `max_forwarders = 5`), heap-spilled
/// beyond that so oversized scenarios still work.
pub type NodeList = SmallList<NodeId, 8>;

/// An ACK bitmap as `(flow, seq)` entries: inline up to the aggregation cap
/// of 16 subframes per frame.
pub type AckList = SmallList<(FlowId, u32), 16>;

/// Transport protocol selector for a network packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Proto {
    /// TCP segment (data or acknowledgement).
    Tcp,
    /// UDP datagram (VoIP, CBR cross traffic).
    Udp,
}

/// End-to-end network header carried by every packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NetHeader {
    /// The conversation this packet belongs to.
    pub flow: FlowId,
    /// Originating station (end-to-end, not the current hop).
    pub src: NodeId,
    /// Final destination station.
    pub dst: NodeId,
    /// Transport protocol of the body.
    pub proto: Proto,
    /// Simulated on-the-wire size of this packet in bytes (network header +
    /// transport header + application payload). Drives airtime and BER.
    pub wire_bytes: u32,
}

/// An upper-layer packet queued at, carried by, and delivered from the MAC.
///
/// Cloning is cheap by construction: the header is `Copy` and the body is a
/// shared [`Body`] (reference-count bump, no byte copy) — which is why the
/// MAC retransmission paths may clone packets freely while the
/// `no-frame-deep-clone` lint forbids cloning whole frames.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// End-to-end header.
    pub header: NetHeader,
    /// Encoded transport segment (metadata; see module docs).
    pub body: Body,
}

impl Packet {
    /// Convenience constructor; accepts a plain `Vec<u8>` (tests, unpooled
    /// callers) or a pool-minted [`Body`].
    pub fn new(header: NetHeader, body: impl Into<Body>) -> Self {
        Packet { header, body: body.into() }
    }
}

/// Routing decision attached to a packet when the upper layer enqueues it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RouteInfo {
    /// Predetermined forwarding: transmit to exactly this neighbour.
    NextHop(NodeId),
    /// Opportunistic forwarding: a priority-ordered candidate list. Position
    /// 0 is the destination (highest priority, "closest to the MAC header"
    /// in the paper's framing), followed by forwarders in decreasing
    /// priority.
    Opportunistic {
        /// Priority list; `list[0]` must be the packet's destination.
        list: NodeList,
    },
}

impl RouteInfo {
    /// The priority rank of `node` in an opportunistic list: 0 for the
    /// destination, 1 for the highest-priority forwarder, … `None` if the
    /// node is not on the list or the route is predetermined.
    pub fn rank_of(&self, node: NodeId) -> Option<usize> {
        match self {
            RouteInfo::NextHop(_) => None,
            RouteInfo::Opportunistic { list } => list.iter().position(|&n| n == node),
        }
    }
}

/// One aggregated packet inside a data frame, with its channel fate.
#[derive(Clone, Debug)]
pub struct Subframe {
    /// Link-level sequence number, per (flow, end-to-end source). Under
    /// RIPPLE this is the end-to-end sequence the Sq/Rq operate on.
    pub seq: u32,
    /// The carried packet.
    pub packet: Packet,
    /// Set by the channel on the receiver's copy when this subframe's CRC
    /// fails (i.i.d. BER model). Transmitted copies always start clean.
    pub corrupted: bool,
}

/// Who a data frame is addressed to at the link layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LinkDst {
    /// Conventional unicast to one neighbour.
    Unicast(NodeId),
    /// Opportunistic: any station on the priority list may act on it.
    Opportunistic {
        /// Priority list; position 0 is the end-to-end destination.
        list: NodeList,
    },
}

/// A MAC data frame: header, addressing, and up to 16 subframes.
///
/// `Clone` is shallow — the subframe storage is shared copy-on-write (see
/// [`SubframeVec`]) — and outside the channel-corruption seam nothing should
/// clone frames at all; the `no-frame-deep-clone` lint enforces that.
#[derive(Clone, Debug)]
pub struct DataFrame {
    /// Station whose radio emitted this copy (changes as relays forward it).
    pub transmitter: NodeId,
    /// Link-layer addressing.
    pub link_dst: LinkDst,
    /// The flow whose packets dominate this frame (frames never mix flows in
    /// this implementation; see DESIGN.md).
    pub flow: FlowId,
    /// End-to-end source of the carried packets.
    pub src: NodeId,
    /// End-to-end destination of the carried packets.
    pub dst: NodeId,
    /// Identifies one transmission attempt; retransmissions get fresh
    /// values, relays keep the value so duplicates can be suppressed.
    pub frame_seq: u64,
    /// Aggregated packets (1 for plain DCF, up to 16 under AFR/RIPPLE).
    pub subframes: SubframeVec,
    /// Retry counter of the attempt that produced this frame (diagnostic).
    pub retry: u8,
}

impl DataFrame {
    /// Simulated wire size: MAC header + forwarder list + per-subframe
    /// overhead + payload bytes.
    pub fn wire_bytes(&self) -> u32 {
        let list_cost = match &self.link_dst {
            LinkDst::Unicast(_) => 0,
            LinkDst::Opportunistic { list } => FORWARDER_ENTRY_BYTES * list.len() as u32,
        };
        MAC_HEADER_BYTES
            + list_cost
            + self
                .subframes
                .iter()
                .map(|s| SUBFRAME_OVERHEAD_BYTES + s.packet.header.wire_bytes)
                .sum::<u32>()
    }

    /// Sequence numbers of the subframes that survived the channel on this
    /// copy.
    pub fn clean_seqs(&self) -> Vec<u32> {
        self.subframes.iter().filter(|s| !s.corrupted).map(|s| s.seq).collect()
    }
}

/// A MAC acknowledgement, possibly carrying an aggregation bitmap and — for
/// RIPPLE's two-way opportunistic forwarding — a relay priority list.
///
/// Both lists are inline [`SmallList`]s: cloning an ACK never allocates at
/// in-protocol sizes.
#[derive(Clone, Debug)]
pub struct AckFrame {
    /// Station whose radio emitted this copy.
    pub transmitter: NodeId,
    /// The station being acknowledged (the data frame's origin for this
    /// link; under RIPPLE, the end-to-end source).
    pub to: NodeId,
    /// Flow the acknowledged frame belonged to.
    pub flow: FlowId,
    /// `frame_seq` of the acknowledged data frame.
    pub frame_seq: u64,
    /// Subframes received correctly, identified by (flow, sequence) — the
    /// flow id disambiguates frames that aggregate packets of several flows
    /// sharing a route (bitmap ACK). Plain DCF ACKs carry one entry.
    pub acked_seqs: AckList,
    /// For RIPPLE: the priority list the ACK travels back along (position 0
    /// = the end-to-end destination that generated the ACK). Empty for
    /// single-hop ACKs.
    pub relay_list: NodeList,
}

impl AckFrame {
    /// Simulated wire size of the ACK.
    pub fn wire_bytes(&self) -> u32 {
        let bitmap = if self.acked_seqs.len() > 1 { ACK_BITMAP_BYTES } else { 0 };
        ACK_BYTES + bitmap + FORWARDER_ENTRY_BYTES * self.relay_list.len() as u32
    }
}

/// Anything a radio can put on the air.
#[derive(Clone, Debug)]
pub enum Frame {
    /// A data frame.
    Data(DataFrame),
    /// A MAC acknowledgement.
    Ack(AckFrame),
}

impl Frame {
    /// Simulated wire size in bytes.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            Frame::Data(d) => d.wire_bytes(),
            Frame::Ack(a) => a.wire_bytes(),
        }
    }

    /// The station that transmitted this copy.
    pub fn transmitter(&self) -> NodeId {
        match self {
            Frame::Data(d) => d.transmitter,
            Frame::Ack(a) => a.transmitter,
        }
    }

    /// Header bytes protected by the frame-level CRC: if these are hit by
    /// bit errors the whole frame is undecodable.
    pub fn header_bytes(&self) -> u32 {
        match self {
            Frame::Data(d) => match &d.link_dst {
                LinkDst::Unicast(_) => MAC_HEADER_BYTES,
                LinkDst::Opportunistic { list } => {
                    MAC_HEADER_BYTES + FORWARDER_ENTRY_BYTES * list.len() as u32
                }
            },
            Frame::Ack(a) => a.wire_bytes(),
        }
    }
}

/// A frame as it reaches a receiving MAC: shared on the clean-channel fast
/// path, owned only when the channel corrupted this receiver's copy.
///
/// A broadcast fans one `Arc<Frame>` out to every receiver; the channel
/// decode (`wmn_netsim`'s shared seam) hands each MAC a `Shared` handle when
/// every CRC survived — zero allocations, zero copies — and materialises an
/// `Owned` diverged copy only on the corruption branch. MACs read through
/// `Deref` and clone out the (cheap, reference-counted) pieces they keep.
///
/// Both variants are one pointer wide: the diverged copy is boxed so that
/// moving an `RxFrame` through the receive path never copies a whole
/// `Frame` by value — the box is one more allocation on the corruption
/// branch, which already allocates, and zero on the fast path.
#[derive(Clone, Debug)]
pub enum RxFrame {
    /// The transmitter's copy, shared by every clean receiver.
    Shared(Arc<Frame>),
    /// This receiver's diverged copy (some subframe corrupted in transit).
    Owned(Box<Frame>),
}

impl Deref for RxFrame {
    type Target = Frame;

    fn deref(&self) -> &Frame {
        match self {
            RxFrame::Shared(frame) => frame,
            RxFrame::Owned(frame) => frame,
        }
    }
}

impl From<Frame> for RxFrame {
    fn from(frame: Frame) -> Self {
        RxFrame::Owned(Box::new(frame))
    }
}

impl From<Arc<Frame>> for RxFrame {
    fn from(frame: Arc<Frame>) -> Self {
        RxFrame::Shared(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hdr(bytes: u32) -> NetHeader {
        NetHeader {
            flow: FlowId::new(0),
            src: NodeId::new(0),
            dst: NodeId::new(3),
            proto: Proto::Tcp,
            wire_bytes: bytes,
        }
    }

    fn frame_with(n: usize, list: Option<Vec<NodeId>>) -> DataFrame {
        DataFrame {
            transmitter: NodeId::new(0),
            link_dst: match list {
                Some(list) => LinkDst::Opportunistic { list: list.into() },
                None => LinkDst::Unicast(NodeId::new(1)),
            },
            flow: FlowId::new(0),
            src: NodeId::new(0),
            dst: NodeId::new(3),
            frame_seq: 1,
            subframes: (0..n)
                .map(|i| Subframe {
                    seq: i as u32,
                    packet: Packet::new(hdr(1000), vec![]),
                    corrupted: false,
                })
                .collect(),
            retry: 0,
        }
    }

    #[test]
    fn unicast_single_packet_wire_size() {
        let f = frame_with(1, None);
        assert_eq!(f.wire_bytes(), 28 + 12 + 1000);
    }

    #[test]
    fn aggregated_wire_size_scales_per_subframe() {
        let f16 = frame_with(16, None);
        assert_eq!(f16.wire_bytes(), 28 + 16 * (12 + 1000));
    }

    #[test]
    fn forwarder_list_costs_bytes() {
        let list = vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)];
        let f = frame_with(1, Some(list));
        assert_eq!(f.wire_bytes(), 28 + 3 * 6 + 12 + 1000);
    }

    #[test]
    fn ack_wire_sizes() {
        let mut a = AckFrame {
            transmitter: NodeId::new(3),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: 9,
            acked_seqs: vec![(FlowId::new(0), 4)].into(),
            relay_list: NodeList::new(),
        };
        assert_eq!(a.wire_bytes(), 14);
        a.acked_seqs = (4u32..7).map(|q| (FlowId::new(0), q)).collect();
        assert_eq!(a.wire_bytes(), 18);
        a.relay_list = vec![NodeId::new(3), NodeId::new(2)].into();
        assert_eq!(a.wire_bytes(), 18 + 12);
    }

    #[test]
    fn clean_seqs_skips_corrupted() {
        let mut f = frame_with(3, None);
        f.subframes[1].corrupted = true;
        assert_eq!(f.clean_seqs(), vec![0, 2]);
    }

    #[test]
    fn rank_of_positions() {
        let route = RouteInfo::Opportunistic {
            list: vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)].into(),
        };
        assert_eq!(route.rank_of(NodeId::new(3)), Some(0));
        assert_eq!(route.rank_of(NodeId::new(1)), Some(2));
        assert_eq!(route.rank_of(NodeId::new(9)), None);
        assert_eq!(RouteInfo::NextHop(NodeId::new(1)).rank_of(NodeId::new(1)), None);
    }

    #[test]
    fn rx_frame_derefs_to_either_representation() {
        let frame = Frame::Data(frame_with(2, None));
        let shared = RxFrame::from(Arc::new(frame.clone()));
        let owned = RxFrame::from(frame);
        assert_eq!(shared.wire_bytes(), owned.wire_bytes());
        assert_eq!(shared.transmitter(), NodeId::new(0));
    }

    #[test]
    fn packet_clone_shares_the_body() {
        let p = Packet::new(hdr(1000), b"segment".to_vec());
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(&*q.body, b"segment");
    }

    proptest! {
        /// Wire size is additive in subframes: one n-subframe frame costs
        /// exactly the header once plus n subframe costs.
        #[test]
        fn prop_wire_size_additive(n in 1usize..16, payload in 40u32..1500) {
            let mut f = frame_with(n, None);
            for s in &mut f.subframes {
                s.packet.header.wire_bytes = payload;
            }
            let expected = MAC_HEADER_BYTES + n as u32 * (SUBFRAME_OVERHEAD_BYTES + payload);
            prop_assert_eq!(f.wire_bytes(), expected);
        }
    }
}
