//! [`ActionSink`]: the reusable output buffer of the [`crate::MacEntity`]
//! interface.
//!
//! Until the steady-state allocation rework every `on_*` handler returned a
//! fresh `Vec<MacAction>` — one heap allocation per event that produced any
//! action at all, several per transmitted frame. An [`ActionSink`] inverts
//! the flow: the *engine* owns the buffer, hands it to the handler to fill,
//! drains it in FIFO order, and reuses it for the next event. The buffer is
//! drained, never dropped, so after warm-up the action path touches the
//! allocator not at all; and like [`SmallList`](crate::SmallList) it keeps
//! the first few actions inline, so even a cold sink does not allocate for
//! the common one-to-three-action bursts.
//!
//! The fill/drain discipline is strict on purpose: a handler only ever
//! [`push`](ActionSink::push)es, the engine only ever
//! [`pop`](ActionSink::pop)s after the handler returned, and a fully
//! drained sink resets itself for the next fill. Re-entrant dispatch
//! (applying a popped action triggers another handler) uses a *different*
//! sink from the engine's free list — never the one mid-drain.

use crate::MacAction;

/// Actions kept inline before spilling to the heap. MAC handlers emit one
/// to three actions for almost every event (a timer, a transmission, a
/// handful of deliveries); bulk release runs (reorder-buffer drains) spill.
const INLINE_ACTIONS: usize = 4;

/// A reusable FIFO buffer of [`MacAction`]s: filled by a MAC handler,
/// drained by the engine, then reused for the next event.
///
/// # Example
///
/// ```
/// use wmn_mac::{ActionSink, MacAction, TimerToken};
/// use wmn_sim::SimDuration;
///
/// let mut sink = ActionSink::new();
/// sink.push(MacAction::SetTimer { delay: SimDuration::from_micros(34), token: TimerToken(1) });
/// assert_eq!(sink.len(), 1);
/// let action = sink.pop().expect("one action queued");
/// assert!(matches!(action, MacAction::SetTimer { .. }));
/// assert!(sink.pop().is_none());
/// // Drained, not dropped: the sink is ready for the next fill.
/// assert!(sink.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ActionSink {
    /// Inline slots for the common small bursts; `inline[popped..pushed]`
    /// (clamped to `INLINE_ACTIONS`) holds the live prefix.
    inline: [Option<MacAction>; INLINE_ACTIONS],
    /// Overflow beyond the inline slots. Cleared on every full drain but
    /// never shrunk, so a sink that spilled once never spills-allocates
    /// again at that burst size.
    spill: Vec<Option<MacAction>>,
    /// Actions pushed during the current fill.
    pushed: usize,
    /// Actions already popped from the current fill.
    popped: usize,
}

impl ActionSink {
    /// An empty sink (no heap allocation).
    pub fn new() -> Self {
        ActionSink::default()
    }

    /// Appends an action. Handlers are push-only; the engine drains.
    pub fn push(&mut self, action: MacAction) {
        if self.pushed < INLINE_ACTIONS {
            self.inline[self.pushed] = Some(action);
        } else {
            self.spill.push(Some(action));
        }
        self.pushed += 1;
    }

    /// Removes and returns the oldest undrained action, or `None` when the
    /// fill is exhausted — at which point the sink resets itself (keeping
    /// its spill capacity) so the next handler starts on a clean buffer.
    pub fn pop(&mut self) -> Option<MacAction> {
        if self.popped == self.pushed {
            self.clear();
            return None;
        }
        let action = if self.popped < INLINE_ACTIONS {
            self.inline[self.popped].take()
        } else {
            self.spill[self.popped - INLINE_ACTIONS].take()
        };
        self.popped += 1;
        debug_assert!(action.is_some(), "push/pop counters out of sync");
        action
    }

    /// Actions pushed and not yet popped.
    pub fn len(&self) -> usize {
        self.pushed - self.popped
    }

    /// Whether no actions are waiting to be drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards any undrained actions and resets the sink for the next
    /// fill, keeping the spill capacity.
    pub fn clear(&mut self) {
        for slot in &mut self.inline[..self.pushed.min(INLINE_ACTIONS)] {
            *slot = None;
        }
        self.spill.clear();
        self.pushed = 0;
        self.popped = 0;
    }

    /// Drains every remaining action into a fresh `Vec`, in FIFO order.
    /// This is the Vec-returning reference surface tests drive MACs
    /// through (see [`MacEntityExt`](crate::MacEntityExt)); engines use
    /// [`pop`](ActionSink::pop) and never allocate.
    pub fn drain_to_vec(&mut self) -> Vec<MacAction> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(action) = self.pop() {
            out.push(action);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimerToken;
    use proptest::prelude::*;
    use wmn_sim::SimDuration;

    fn timer(id: u64) -> MacAction {
        MacAction::SetTimer { delay: SimDuration::from_nanos(id), token: TimerToken(id) }
    }

    fn token_of(action: &MacAction) -> u64 {
        match action {
            MacAction::SetTimer { token, .. } => token.0,
            other => panic!("test pushes timers only, got {other:?}"),
        }
    }

    #[test]
    fn fifo_across_the_inline_spill_boundary() {
        let mut sink = ActionSink::new();
        for id in 0..10 {
            sink.push(timer(id));
        }
        assert_eq!(sink.len(), 10);
        let order: Vec<u64> = std::iter::from_fn(|| sink.pop().map(|a| token_of(&a))).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
        assert!(sink.is_empty());
    }

    #[test]
    fn drained_sink_resets_for_the_next_fill() {
        let mut sink = ActionSink::new();
        for id in 0..7 {
            sink.push(timer(id));
        }
        while sink.pop().is_some() {}
        // Second fill starts from a clean buffer.
        sink.push(timer(99));
        assert_eq!(sink.len(), 1);
        assert_eq!(token_of(&sink.pop().expect("refilled")), 99);
        assert!(sink.pop().is_none());
    }

    #[test]
    fn clear_discards_undrained_actions() {
        let mut sink = ActionSink::new();
        for id in 0..6 {
            sink.push(timer(id));
        }
        assert_eq!(token_of(&sink.pop().expect("first")), 0);
        sink.clear();
        assert!(sink.is_empty());
        assert!(sink.pop().is_none());
        sink.push(timer(42));
        assert_eq!(token_of(&sink.pop().expect("post-clear fill")), 42);
    }

    #[test]
    fn drain_to_vec_preserves_order() {
        let mut sink = ActionSink::new();
        for id in [3u64, 1, 4, 1, 5, 9] {
            sink.push(timer(id));
        }
        let drained: Vec<u64> = sink.drain_to_vec().iter().map(token_of).collect();
        assert_eq!(drained, vec![3, 1, 4, 1, 5, 9]);
        assert!(sink.is_empty());
    }

    proptest! {
        /// Reuse leaks nothing: any sequence of fill/drain cycles on ONE
        /// reused sink yields, cycle for cycle, exactly what a fresh `Vec`
        /// filled by the same pushes would hold.
        #[test]
        fn prop_reused_sink_matches_fresh_vec_reference(
            cycles in proptest::collection::vec(
                proptest::collection::vec(0u64..1000, 0..12), 1..8),
        ) {
            let mut sink = ActionSink::new();
            for cycle in &cycles {
                // The fresh-Vec reference: what the pre-sink interface
                // would have returned for this event.
                let reference: Vec<u64> = cycle.clone();
                for &id in cycle {
                    sink.push(timer(id));
                }
                let drained: Vec<u64> =
                    std::iter::from_fn(|| sink.pop().map(|a| token_of(&a))).collect();
                prop_assert_eq!(&drained, &reference, "reused sink diverged from fresh Vec");
                prop_assert!(sink.is_empty());
            }
        }
    }
}
