//! The IEEE 802.11 DCF MAC, which doubles as the paper's AFR baseline.
//!
//! With `max_aggregation = 1` this is the classic DCF used by the "D"
//! (predetermined route) and "S" (direct/SPR) baselines: DIFS deference,
//! binary-exponential backoff, per-hop unicast data + SIFS-spaced MAC ACK,
//! retry with CW doubling.
//!
//! With `max_aggregation = 16` it becomes the AFR scheme of reference \[19\] ("A" in the
//! figures): up to 16 packets aggregated per frame, each with its own CRC,
//! bitmap ACKs, partial retransmission of only the corrupted subframes
//! (topped up with fresh packets, zero waiting time), and a receiver-side
//! reorder buffer so partial loss does not re-order the flow.
//!
//! The state machine is passive — see the crate docs for the driving
//! contract.

use std::collections::BTreeMap;

use wmn_phy::PhyParams;
use wmn_sim::{FlowId, NodeId, SimDuration, SimTime, StreamRng};

use crate::backoff::Backoff;
use crate::frame::{
    AckFrame, AckList, DataFrame, Frame, LinkDst, NodeList, Packet, RouteInfo, RxFrame, Subframe,
    ACK_BITMAP_BYTES, ACK_BYTES,
};
use crate::pool::{FramePool, Slot, SlotPool};
use crate::queue::IfQueue;
use crate::reorder::{AcceptOutcome, ReorderBuffer};
use crate::sink::ActionSink;
use crate::{DropReason, MacAction, MacEntity, MacStats, RateClass, TimerToken};

/// Configuration of a [`DcfMac`], derived from the scenario's PHY parameters.
#[derive(Clone, Debug)]
pub struct DcfConfig {
    /// Short interframe space.
    pub sifs: SimDuration,
    /// Slot time.
    pub slot: SimDuration,
    /// DIFS = SIFS + 2·slot.
    pub difs: SimDuration,
    /// Minimum contention window.
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// Per-frame retry limit.
    pub retry_limit: u8,
    /// Packets aggregated per frame: 1 = DCF, 16 = AFR.
    pub max_aggregation: usize,
    /// Interface queue capacity.
    pub ifq_capacity: usize,
    /// How long after a data transmission ends to wait for the MAC ACK.
    pub ack_timeout: SimDuration,
    /// Receiver-side reorder buffer capacity per flow-direction.
    pub reorder_capacity: usize,
    /// Byte budget per aggregated frame, derived from a 6 ms airtime cap at
    /// the data rate (802.11n bounds A-MPDU duration the same way). Keeps
    /// low-rate frames from monopolising the channel for tens of ms.
    pub max_frame_payload_bytes: u32,
}

impl DcfConfig {
    /// Builds the configuration from PHY parameters and an aggregation
    /// limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_aggregation` is zero.
    pub fn from_phy(params: &PhyParams, max_aggregation: usize) -> Self {
        assert!(max_aggregation > 0, "aggregation limit must be at least 1");
        let ack_air = params.airtime(params.basic_rate, ACK_BYTES + ACK_BITMAP_BYTES);
        DcfConfig {
            sifs: params.sifs,
            slot: params.slot,
            difs: params.difs(),
            cw_min: params.cw_min,
            cw_max: params.cw_max,
            retry_limit: params.retry_limit,
            max_aggregation,
            ifq_capacity: params.ifq_capacity,
            // SIFS + ACK airtime + propagation/turnaround slack.
            ack_timeout: params.sifs + ack_air + SimDuration::from_micros(10),
            reorder_capacity: 64,
            max_frame_payload_bytes: frame_payload_budget(params),
        }
    }
}

/// Payload bytes that fit a 6 ms frame at the data rate.
pub(crate) fn frame_payload_budget(params: &PhyParams) -> u32 {
    (params.data_rate.as_mbps() * 6_000.0 / 8.0) as u32
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DataState {
    /// No transmission in flight; the backoff countdown may be pending.
    Idle,
    /// Our data frame is on the air.
    Transmitting,
    /// Waiting for the MAC ACK of the frame we just sent.
    WaitAck,
}

#[derive(Debug)]
struct Inflight {
    /// The (seq, packet) pairs awaiting acknowledgement, in a recycled
    /// slot so starting a new frame never allocates at steady state.
    subframes: Slot<(u32, Packet)>,
    route: RouteInfo,
    next_hop: NodeId,
    flow: FlowId,
    retries: u8,
    frame_seq: u64,
}

#[derive(Clone, Copy, Debug)]
enum TimerRole {
    BackoffDone,
    AckTimeout,
    SendAck,
}

/// The DCF/AFR MAC state machine for one station.
pub struct DcfMac {
    cfg: DcfConfig,
    node: NodeId,
    q: IfQueue,
    inflight: Option<Inflight>,
    data_state: DataState,
    ack_tx_in_progress: bool,
    pending_ack: Option<AckFrame>,
    channel_busy: bool,
    idle_since: SimTime,
    backoff: Backoff,
    armed_backoff: Option<TimerToken>,
    countdown_anchor: SimTime,
    armed_ack_timeout: Option<TimerToken>,
    armed_send_ack: Option<TimerToken>,
    /// Live timer tokens and what they mean. A handful are outstanding at
    /// any instant, so a linear-scan `Vec` beats a node-allocating map —
    /// and its capacity is retained, keeping timer churn off the allocator.
    timer_roles: Vec<(u64, TimerRole)>,
    next_token: u64,
    seq_counters: BTreeMap<(FlowId, NodeId), u32>,
    frame_seq_counter: u64,
    rq: BTreeMap<(FlowId, NodeId), ReorderBuffer>,
    /// Recycled buffers for [`Inflight::subframes`].
    inflight_slots: SlotPool<(u32, Packet)>,
    pool: FramePool,
    rng: StreamRng,
    stats: MacStats,
}

impl std::fmt::Debug for DcfMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DcfMac")
            .field("node", &self.node)
            .field("state", &self.data_state)
            .field("queued", &self.q.len())
            .field("inflight", &self.inflight.is_some())
            .finish()
    }
}

impl DcfMac {
    /// Creates the MAC for `node` with its own backoff RNG stream.
    pub fn new(cfg: DcfConfig, node: NodeId, rng: StreamRng) -> Self {
        let ifq_capacity = cfg.ifq_capacity;
        let (cw_min, cw_max) = (cfg.cw_min, cfg.cw_max);
        DcfMac {
            cfg,
            node,
            q: IfQueue::new(ifq_capacity),
            inflight: None,
            data_state: DataState::Idle,
            ack_tx_in_progress: false,
            pending_ack: None,
            channel_busy: false,
            idle_since: SimTime::ZERO,
            backoff: Backoff::new(cw_min, cw_max),
            armed_backoff: None,
            countdown_anchor: SimTime::ZERO,
            armed_ack_timeout: None,
            armed_send_ack: None,
            timer_roles: Vec::new(),
            next_token: 0,
            seq_counters: BTreeMap::new(),
            frame_seq_counter: 0,
            rq: BTreeMap::new(),
            inflight_slots: SlotPool::new(),
            pool: FramePool::default(),
            rng,
            stats: MacStats::default(),
        }
    }

    /// The station this MAC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Packets currently waiting in the interface queue.
    pub fn queue_len(&self) -> usize {
        self.q.len()
    }

    fn mint(&mut self, role: TimerRole) -> TimerToken {
        let token = TimerToken(self.next_token);
        self.next_token += 1;
        self.timer_roles.push((token.0, role));
        token
    }

    /// Removes and returns the role of a live token (`None` = cancelled or
    /// superseded).
    fn take_role(&mut self, token: TimerToken) -> Option<TimerRole> {
        let idx = self.timer_roles.iter().position(|(t, _)| *t == token.0)?;
        Some(self.timer_roles.swap_remove(idx).1)
    }

    fn next_seq(&mut self, flow: FlowId, src: NodeId) -> u32 {
        let c = self.seq_counters.entry((flow, src)).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    fn radio_free(&self) -> bool {
        self.data_state != DataState::Transmitting && !self.ack_tx_in_progress
    }

    fn has_work(&self) -> bool {
        self.inflight.is_some() || !self.q.is_empty()
    }

    /// Attempts to move the data pipeline forward: transmit immediately if
    /// the channel has been idle past DIFS with no pending backoff,
    /// otherwise (re)arm the backoff countdown.
    fn try_progress(&mut self, now: SimTime, out: &mut ActionSink) {
        if self.data_state != DataState::Idle || !self.radio_free() || !self.has_work() {
            return;
        }
        if self.channel_busy {
            return; // on_idle will call us again
        }
        let idle_for = now.saturating_since(self.idle_since);
        if self.backoff.remaining().is_none() && idle_for >= self.cfg.difs {
            self.transmit_data(now, out);
            return;
        }
        self.arm_backoff(now, out);
    }

    fn arm_backoff(&mut self, now: SimTime, out: &mut ActionSink) {
        if self.armed_backoff.is_some() || self.channel_busy {
            return;
        }
        let remaining = self.backoff.ensure_drawn(&mut self.rng);
        let start = {
            let boundary = self.idle_since + self.cfg.difs;
            if boundary > now {
                boundary
            } else {
                now
            }
        };
        self.countdown_anchor = start;
        let fire_at = start + self.cfg.slot * u64::from(remaining);
        let token = self.mint(TimerRole::BackoffDone);
        self.armed_backoff = Some(token);
        out.push(MacAction::SetTimer { delay: fire_at.saturating_since(now), token });
    }

    fn disarm_backoff(&mut self, now: SimTime) {
        if let Some(token) = self.armed_backoff.take() {
            self.take_role(token);
            let idle = now.saturating_since(self.countdown_anchor);
            self.backoff.consume_idle(idle, self.cfg.slot);
        }
    }

    fn transmit_data(&mut self, _now: SimTime, out: &mut ActionSink) {
        self.backoff.clear();
        if self.inflight.is_none() {
            let mut batch = self.q.pop_batch_matching_head(
                self.cfg.max_aggregation,
                self.cfg.max_frame_payload_bytes,
            );
            if batch.is_empty() {
                return;
            }
            let route = batch[0].route.clone();
            let RouteInfo::NextHop(next_hop) = route else {
                panic!("DCF requires predetermined next-hop routes");
            };
            let flow = batch[0].packet.header.flow;
            let mut subframes = self.inflight_slots.mint();
            for qp in batch.drain(..) {
                let seq = self.next_seq(qp.packet.header.flow, qp.packet.header.src);
                subframes.push((seq, qp.packet));
            }
            drop(batch);
            self.frame_seq_counter += 1;
            self.inflight = Some(Inflight {
                subframes,
                route: RouteInfo::NextHop(next_hop),
                next_hop,
                flow,
                retries: 0,
                frame_seq: self.frame_seq_counter,
            });
        } else {
            // Partial retransmission: top up with fresh packets for the same
            // link destination (AFR's zero-waiting aggregation).
            let inflight = self.inflight.as_mut().expect("checked above");
            let space = self.cfg.max_aggregation - inflight.subframes.len();
            if space > 0 {
                let route = inflight.route.clone();
                let spent: u32 = inflight.subframes.iter().map(|(_, p)| p.header.wire_bytes).sum();
                let byte_budget = self.cfg.max_frame_payload_bytes.saturating_sub(spent).max(1);
                let mut extra = self.q.pop_matching(&route, space, byte_budget);
                for qp in extra.drain(..) {
                    let seq = self.next_seq(qp.packet.header.flow, qp.packet.header.src);
                    self.inflight.as_mut().unwrap().subframes.push((seq, qp.packet));
                }
            }
            self.frame_seq_counter += 1;
            self.inflight.as_mut().unwrap().frame_seq = self.frame_seq_counter;
        }

        // The subframe vector comes from this MAC's pool and the packet
        // clones share their bodies by reference, so building a
        // (re)transmission attempt allocates nothing at steady state.
        let mut subframes = self.pool.mint_subframes();
        let inflight = self.inflight.as_ref().expect("just set");
        for (seq, p) in &inflight.subframes {
            subframes.push(Subframe { seq: *seq, packet: p.clone(), corrupted: false });
        }
        let first = &inflight.subframes[0].1.header;
        let frame = DataFrame {
            transmitter: self.node,
            link_dst: LinkDst::Unicast(inflight.next_hop),
            flow: inflight.flow,
            src: first.src,
            dst: first.dst,
            frame_seq: inflight.frame_seq,
            subframes,
            retry: inflight.retries,
        };
        self.data_state = DataState::Transmitting;
        self.stats.data_frames_sent += 1;
        out.push(MacAction::StartTx { frame: Frame::Data(frame), rate: RateClass::Data });
    }

    fn handle_data_frame(&mut self, d: &DataFrame, now: SimTime, out: &mut ActionSink) {
        match &d.link_dst {
            LinkDst::Unicast(to) if *to == self.node => {}
            _ => return, // overheard or opportunistic: plain DCF ignores it
        }
        self.stats.data_frames_received += 1;
        let acked_seqs: AckList = d
            .subframes
            .iter()
            .filter(|s| !s.corrupted)
            .map(|s| (s.packet.header.flow, s.seq))
            .collect();
        // Deliver clean, non-duplicate subframes in order through the Rq.
        // The frame is borrowed (it may be the shared broadcast copy), so
        // kept packets are cloned — a header copy plus a body refcount bump.
        for sf in d.subframes.iter().filter(|s| !s.corrupted) {
            let key = (sf.packet.header.flow, sf.packet.header.src);
            let cap = self.cfg.reorder_capacity;
            let rq = self.rq.entry(key).or_insert_with(|| ReorderBuffer::new(cap));
            let (outcome, mut released) = rq.accept(sf.seq, sf.packet.clone());
            if outcome == AcceptOutcome::Accepted || outcome == AcceptOutcome::Duplicate {
                for p in released.drain(..) {
                    self.stats.delivered_up += 1;
                    out.push(MacAction::Deliver { packet: p });
                }
            }
        }
        // Schedule the MAC ACK one SIFS after the frame ended (now).
        let ack = AckFrame {
            transmitter: self.node,
            to: d.transmitter,
            flow: d.flow,
            frame_seq: d.frame_seq,
            acked_seqs,
            relay_list: NodeList::new(),
        };
        self.pending_ack = Some(ack);
        let token = self.mint(TimerRole::SendAck);
        self.armed_send_ack = Some(token);
        out.push(MacAction::SetTimer { delay: self.cfg.sifs, token });
        let _ = now;
    }

    fn handle_ack_frame(&mut self, a: &AckFrame, now: SimTime, out: &mut ActionSink) {
        if a.to != self.node || self.data_state != DataState::WaitAck {
            return;
        }
        let Some(inflight) = self.inflight.as_mut() else { return };
        if a.frame_seq != inflight.frame_seq {
            return;
        }
        self.stats.acks_received += 1;
        if let Some(token) = self.armed_ack_timeout.take() {
            // Field access, not `take_role`: `inflight` still borrows self.
            if let Some(idx) = self.timer_roles.iter().position(|(t, _)| *t == token.0) {
                self.timer_roles.swap_remove(idx);
            }
        }
        let before = inflight.subframes.len();
        inflight.subframes.retain(|(seq, p)| !a.acked_seqs.contains(&(p.header.flow, *seq)));
        let progressed = inflight.subframes.len() < before;
        self.data_state = DataState::Idle;
        // An ACK means the channel worked: reset the contention window. Any
        // remaining subframes were lost to bit errors and will be
        // retransmitted (partial retransmission).
        self.backoff.on_success();
        if self.inflight.as_ref().map(|i| i.subframes.is_empty()).unwrap_or(false) {
            self.inflight = None;
        } else if let Some(inflight) = self.inflight.as_mut() {
            // Fragment-retransmission semantics: progress resets the retry
            // budget (the channel works; only individual subframes were
            // lost). Only a completely fruitless ACK consumes a retry.
            if progressed {
                inflight.retries = 0;
            } else {
                inflight.retries += 1;
            }
            if inflight.retries > self.cfg.retry_limit {
                let mut dead = self.inflight.take().expect("present");
                for (_, packet) in dead.subframes.drain(..) {
                    self.stats.drops_retry_limit += 1;
                    out.push(MacAction::Drop { packet, reason: DropReason::RetryLimit });
                }
            }
        }
        // Post-transmission backoff before the next frame.
        self.backoff.draw(&mut self.rng);
        self.try_progress(now, out);
    }

    fn handle_ack_timeout(&mut self, now: SimTime, out: &mut ActionSink) {
        self.armed_ack_timeout = None;
        if self.data_state != DataState::WaitAck {
            return;
        }
        self.stats.timeouts += 1;
        self.data_state = DataState::Idle;
        self.backoff.on_failure();
        let drop_all = {
            let inflight = self.inflight.as_mut().expect("timeout without inflight frame");
            inflight.retries += 1;
            inflight.retries > self.cfg.retry_limit
        };
        if drop_all {
            let mut dead = self.inflight.take().expect("present");
            for (_, packet) in dead.subframes.drain(..) {
                self.stats.drops_retry_limit += 1;
                out.push(MacAction::Drop { packet, reason: DropReason::RetryLimit });
            }
            self.backoff.on_success(); // window resets after abandoning a frame
        }
        self.backoff.draw(&mut self.rng);
        self.try_progress(now, out);
    }

    fn handle_send_ack(&mut self, _now: SimTime, out: &mut ActionSink) {
        self.armed_send_ack = None;
        let Some(ack) = self.pending_ack.take() else { return };
        if !self.radio_free() {
            // Radio occupied at SIFS boundary (pathological); the ACK is lost
            // and the sender will time out.
            return;
        }
        self.ack_tx_in_progress = true;
        self.stats.ack_frames_sent += 1;
        out.push(MacAction::StartTx { frame: Frame::Ack(ack), rate: RateClass::Basic });
    }
}

impl MacEntity for DcfMac {
    fn on_enqueue(&mut self, packet: Packet, route: RouteInfo, now: SimTime, out: &mut ActionSink) {
        if let Some(rejected) = self.q.push(packet, route) {
            self.stats.drops_queue_full += 1;
            out.push(MacAction::Drop { packet: rejected, reason: DropReason::QueueFull });
            return;
        }
        self.try_progress(now, out);
    }

    fn on_busy(&mut self, now: SimTime, _out: &mut ActionSink) {
        self.channel_busy = true;
        self.disarm_backoff(now);
    }

    fn on_idle(&mut self, now: SimTime, out: &mut ActionSink) {
        self.channel_busy = false;
        self.idle_since = now;
        if self.data_state == DataState::Idle && self.radio_free() && self.has_work() {
            self.arm_backoff(now, out);
        }
    }

    fn on_frame_rx(&mut self, frame: RxFrame, now: SimTime, out: &mut ActionSink) {
        match &*frame {
            Frame::Data(d) => self.handle_data_frame(d, now, out),
            Frame::Ack(a) => self.handle_ack_frame(a, now, out),
        }
    }

    fn on_tx_end(&mut self, now: SimTime, out: &mut ActionSink) {
        if self.ack_tx_in_progress {
            self.ack_tx_in_progress = false;
            self.try_progress(now, out);
        } else if self.data_state == DataState::Transmitting {
            self.data_state = DataState::WaitAck;
            let token = self.mint(TimerRole::AckTimeout);
            self.armed_ack_timeout = Some(token);
            out.push(MacAction::SetTimer { delay: self.cfg.ack_timeout, token });
        }
    }

    fn on_timer(&mut self, token: TimerToken, now: SimTime, out: &mut ActionSink) {
        let Some(role) = self.take_role(token) else {
            return; // cancelled or superseded
        };
        match role {
            TimerRole::BackoffDone => {
                if self.armed_backoff == Some(token) {
                    self.armed_backoff = None;
                    if !self.channel_busy
                        && self.radio_free()
                        && self.data_state == DataState::Idle
                        && self.has_work()
                    {
                        self.backoff.clear();
                        self.transmit_data(now, out);
                    }
                }
            }
            TimerRole::AckTimeout => {
                if self.armed_ack_timeout == Some(token) {
                    self.handle_ack_timeout(now, out);
                }
            }
            TimerRole::SendAck => {
                if self.armed_send_ack == Some(token) {
                    self.handle_send_ack(now, out);
                }
            }
        }
    }

    fn stats(&self) -> MacStats {
        self.stats
    }
}

/// The DCF/AFR forwarding scheme, as a [`MacScheme`](crate::MacScheme)
/// factory: `aggregation = 1` is plain DCF, anything larger is AFR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DcfScheme {
    /// Packets per frame (1 or 16 in the paper).
    pub aggregation: usize,
}

impl crate::MacScheme for DcfScheme {
    fn label(&self) -> &'static str {
        if self.aggregation == 1 {
            "DCF"
        } else {
            "AFR"
        }
    }

    fn is_opportunistic(&self) -> bool {
        false
    }

    fn build_mac(&self, params: &PhyParams, node: NodeId, rng: StreamRng) -> Box<dyn MacEntity> {
        Box::new(DcfMac::new(DcfConfig::from_phy(params, self.aggregation), node, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{NetHeader, Proto};
    use crate::MacEntityExt;

    fn cfg(max_agg: usize) -> DcfConfig {
        DcfConfig::from_phy(&PhyParams::paper_216(), max_agg)
    }

    fn mac(node: u32, max_agg: usize) -> DcfMac {
        DcfMac::new(cfg(max_agg), NodeId::new(node), StreamRng::derive(7, "test-mac"))
    }

    fn packet(flow: u32, src: u32, dst: u32) -> Packet {
        Packet::new(
            NetHeader {
                flow: FlowId::new(flow),
                src: NodeId::new(src),
                dst: NodeId::new(dst),
                proto: Proto::Tcp,
                wire_bytes: 1000,
            },
            vec![],
        )
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn find_tx(actions: &[MacAction]) -> Option<&Frame> {
        actions.iter().find_map(|a| match a {
            MacAction::StartTx { frame, .. } => Some(frame),
            _ => None,
        })
    }

    fn find_timer(actions: &[MacAction]) -> Option<(SimDuration, TimerToken)> {
        actions.iter().find_map(|a| match a {
            MacAction::SetTimer { delay, token } => Some((*delay, *token)),
            _ => None,
        })
    }

    #[test]
    fn immediate_tx_when_idle_past_difs() {
        let mut m = mac(0, 1);
        // Channel idle since time zero; enqueue at t=100us >> DIFS.
        let actions = m.on_enqueue_vec(packet(0, 0, 3), RouteInfo::NextHop(NodeId::new(1)), t(100));
        let frame = find_tx(&actions).expect("should transmit immediately");
        match frame {
            Frame::Data(d) => {
                assert_eq!(d.transmitter, NodeId::new(0));
                assert_eq!(d.link_dst, LinkDst::Unicast(NodeId::new(1)));
                assert_eq!(d.subframes.len(), 1);
            }
            _ => panic!("expected data frame"),
        }
    }

    #[test]
    fn backoff_armed_when_enqueue_follows_busy() {
        let mut m = mac(0, 1);
        m.on_busy_vec(t(0));
        m.on_idle_vec(t(50));
        // Only 5us of idle so far: must arm a backoff, not transmit.
        let actions = m.on_enqueue_vec(packet(0, 0, 3), RouteInfo::NextHop(NodeId::new(1)), t(55));
        assert!(find_tx(&actions).is_none());
        let (delay, token) = find_timer(&actions).expect("backoff timer armed");
        // Fire time ≥ DIFS boundary (50 + 34 = 84us) relative to 55us.
        assert!(delay >= SimDuration::from_micros(29));
        // Fire the timer: transmission starts.
        let fire_at = t(55) + delay;
        let actions = m.on_timer_vec(token, fire_at);
        assert!(find_tx(&actions).is_some(), "tx after backoff completes");
    }

    #[test]
    fn busy_freezes_and_idle_resumes_backoff() {
        let mut m = mac(0, 1);
        m.on_busy_vec(t(0));
        m.on_idle_vec(t(10));
        let actions = m.on_enqueue_vec(packet(0, 0, 3), RouteInfo::NextHop(NodeId::new(1)), t(11));
        let (_, token1) = find_timer(&actions).expect("armed");
        let before = m.backoff.remaining().unwrap();
        // Channel turns busy mid-countdown: timer token1 becomes stale.
        m.on_busy_vec(t(60));
        let after = m.backoff.remaining().unwrap();
        assert!(after <= before, "some slots may have been consumed");
        // Stale timer fire is ignored.
        let actions = m.on_timer_vec(token1, t(70));
        assert!(find_tx(&actions).is_none());
        // Idle again: new timer, eventually transmits.
        let actions = m.on_idle_vec(t(80));
        let (delay, token2) = find_timer(&actions).expect("re-armed");
        let actions = m.on_timer_vec(token2, t(80) + delay);
        assert!(find_tx(&actions).is_some());
    }

    #[test]
    fn receiver_acks_and_delivers() {
        let mut sender = mac(0, 1);
        let actions =
            sender.on_enqueue_vec(packet(0, 0, 1), RouteInfo::NextHop(NodeId::new(1)), t(100));
        let frame = find_tx(&actions).unwrap().clone();

        let mut receiver = mac(1, 1);
        let actions = receiver.on_frame_rx_vec(frame.into(), t(200));
        // Delivered upward…
        assert!(actions.iter().any(|a| matches!(a, MacAction::Deliver { .. })));
        // …and an ACK scheduled at SIFS.
        let (delay, token) = find_timer(&actions).expect("SIFS ack timer");
        assert_eq!(delay, SimDuration::from_micros(16));
        let actions = receiver.on_timer_vec(token, t(216));
        match find_tx(&actions) {
            Some(Frame::Ack(a)) => {
                assert_eq!(a.to, NodeId::new(0));
                assert_eq!(a.acked_seqs.as_slice(), &[(FlowId::new(0), 0)]);
            }
            _ => panic!("expected ACK"),
        }
    }

    #[test]
    fn ack_completes_transfer() {
        let mut sender = mac(0, 1);
        let actions =
            sender.on_enqueue_vec(packet(0, 0, 1), RouteInfo::NextHop(NodeId::new(1)), t(100));
        let Frame::Data(d) = find_tx(&actions).unwrap().clone() else { panic!() };
        sender.on_tx_end_vec(t(160));
        let ack = AckFrame {
            transmitter: NodeId::new(1),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: d.frame_seq,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: NodeList::new(),
        };
        sender.on_frame_rx_vec(Frame::Ack(ack).into(), t(180));
        assert!(sender.inflight.is_none(), "frame acknowledged");
        assert_eq!(sender.stats().acks_received, 1);
    }

    #[test]
    fn timeout_retries_then_drops() {
        let mut m = mac(0, 1);
        let actions = m.on_enqueue_vec(packet(0, 0, 1), RouteInfo::NextHop(NodeId::new(1)), t(100));
        assert!(find_tx(&actions).is_some());
        let mut now = t(160);
        let mut drops = 0;
        // Drive through all retries via ACK timeouts.
        for _ in 0..20 {
            let actions = m.on_tx_end_vec(now);
            let Some((delay, token)) = find_timer(&actions) else { break };
            now += delay;
            let actions = m.on_timer_vec(token, now);
            drops += actions
                .iter()
                .filter(|a| matches!(a, MacAction::Drop { reason: DropReason::RetryLimit, .. }))
                .count();
            if drops > 0 {
                break;
            }
            // Find the retransmission backoff timer and fire it.
            if let Some((d2, tok2)) = find_timer(&actions) {
                now += d2;
                let acts = m.on_timer_vec(tok2, now);
                if find_tx(&acts).is_none() {
                    break;
                }
            }
        }
        assert_eq!(drops, 1, "packet dropped after retry limit");
        assert!(m.stats().timeouts >= 8);
    }

    #[test]
    fn aggregation_packs_up_to_16() {
        let mut m = mac(0, 16);
        let mut last = Vec::new();
        for i in 0..20 {
            last =
                m.on_enqueue_vec(packet(0, 0, 1), RouteInfo::NextHop(NodeId::new(1)), t(100 + i));
        }
        // First enqueue triggered an immediate tx with 1 subframe; the rest
        // queued. Complete the exchange and check the next frame carries 16.
        let Frame::Data(first) = find_tx(&last).cloned().unwrap_or_else(|| {
            // The first enqueue transmitted; reconstruct: inflight exists.
            Frame::Data(DataFrame {
                transmitter: NodeId::new(0),
                link_dst: LinkDst::Unicast(NodeId::new(1)),
                flow: FlowId::new(0),
                src: NodeId::new(0),
                dst: NodeId::new(1),
                frame_seq: m.inflight.as_ref().unwrap().frame_seq,
                subframes: vec![].into(),
                retry: 0,
            })
        }) else {
            panic!()
        };
        m.on_tx_end_vec(t(200));
        let ack = AckFrame {
            transmitter: NodeId::new(1),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: first.frame_seq,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: NodeList::new(),
        };
        let actions = m.on_frame_rx_vec(Frame::Ack(ack).into(), t(220));
        // Post-backoff timer armed; fire it.
        let (delay, token) = find_timer(&actions).expect("post backoff");
        let actions = m.on_timer_vec(token, t(220) + delay);
        match find_tx(&actions) {
            Some(Frame::Data(d)) => {
                assert_eq!(d.subframes.len(), 16, "AFR aggregates 16 packets");
            }
            _ => panic!("expected aggregated data frame"),
        }
    }

    #[test]
    fn partial_retransmission_keeps_only_lost_subframes() {
        let mut m = mac(0, 16);
        for i in 0..4 {
            m.on_enqueue_vec(packet(0, 0, 1), RouteInfo::NextHop(NodeId::new(1)), t(100 + i));
        }
        // The first enqueue transmitted a 1-subframe frame (queue was empty).
        m.on_tx_end_vec(t(150));
        let fs = m.inflight.as_ref().unwrap().frame_seq;
        let ack = AckFrame {
            transmitter: NodeId::new(1),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: fs,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: NodeList::new(),
        };
        let actions = m.on_frame_rx_vec(Frame::Ack(ack).into(), t(170));
        let (delay, token) = find_timer(&actions).unwrap();
        let actions = m.on_timer_vec(token, t(170) + delay);
        let Some(Frame::Data(d2)) = find_tx(&actions) else { panic!() };
        assert_eq!(d2.subframes.len(), 3, "remaining queued packets aggregated");
        m.on_tx_end_vec(t(400));
        // ACK only two of the three (one subframe corrupted by BER).
        let acked: Vec<(FlowId, u32)> =
            d2.subframes.iter().map(|s| (s.packet.header.flow, s.seq)).take(2).collect();
        let lost_seq = d2.subframes[2].seq;
        let ack2 = AckFrame {
            transmitter: NodeId::new(1),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: d2.frame_seq,
            acked_seqs: acked.into(),
            relay_list: NodeList::new(),
        };
        let actions = m.on_frame_rx_vec(Frame::Ack(ack2).into(), t(420));
        let (delay, token) = find_timer(&actions).unwrap();
        let actions = m.on_timer_vec(token, t(420) + delay);
        let Some(Frame::Data(d3)) = find_tx(&actions) else { panic!() };
        assert_eq!(d3.subframes.len(), 1, "only the lost subframe retransmits");
        assert_eq!(d3.subframes[0].seq, lost_seq);
    }

    #[test]
    fn receiver_reorders_partial_loss() {
        let mut rx = mac(1, 16);
        // Frame with seqs 0,1,2 where 1 is corrupted.
        let mk = |seqs: Vec<(u32, bool)>, frame_seq| {
            Frame::Data(DataFrame {
                transmitter: NodeId::new(0),
                link_dst: LinkDst::Unicast(NodeId::new(1)),
                flow: FlowId::new(0),
                src: NodeId::new(0),
                dst: NodeId::new(1),
                frame_seq,
                subframes: seqs
                    .into_iter()
                    .map(|(seq, corrupted)| Subframe { seq, packet: packet(0, 0, 1), corrupted })
                    .collect(),
                retry: 0,
            })
        };
        let actions =
            rx.on_frame_rx_vec(mk(vec![(0, false), (1, true), (2, false)], 1).into(), t(100));
        let delivered = actions.iter().filter(|a| matches!(a, MacAction::Deliver { .. })).count();
        assert_eq!(delivered, 1, "seq 0 delivered, seq 2 held for seq 1");
        // Retransmission of seq 1 releases 1 and 2 in order.
        let actions = rx.on_frame_rx_vec(mk(vec![(1, false)], 2).into(), t(500));
        let delivered: Vec<u32> = actions
            .iter()
            .filter_map(|a| match a {
                MacAction::Deliver { .. } => Some(()),
                _ => None,
            })
            .map(|_| 0)
            .collect();
        assert_eq!(delivered.len(), 2, "held subframe released in order");
    }

    #[test]
    fn queue_overflow_drops() {
        let mut m = mac(0, 1);
        m.on_busy_vec(t(0)); // keep the channel busy so nothing drains
        let mut dropped = 0;
        for i in 0..60 {
            let actions =
                m.on_enqueue_vec(packet(0, 0, 1), RouteInfo::NextHop(NodeId::new(1)), t(1 + i));
            dropped += actions
                .iter()
                .filter(|a| matches!(a, MacAction::Drop { reason: DropReason::QueueFull, .. }))
                .count();
        }
        assert_eq!(dropped, 10, "50-packet queue drops the excess");
        assert_eq!(m.stats().drops_queue_full, 10);
    }

    #[test]
    fn overheard_unicast_is_ignored() {
        let mut m = mac(5, 1);
        let frame = Frame::Data(DataFrame {
            transmitter: NodeId::new(0),
            link_dst: LinkDst::Unicast(NodeId::new(1)),
            flow: FlowId::new(0),
            src: NodeId::new(0),
            dst: NodeId::new(3),
            frame_seq: 1,
            subframes: vec![Subframe { seq: 0, packet: packet(0, 0, 3), corrupted: false }].into(),
            retry: 0,
        });
        let actions = m.on_frame_rx_vec(frame.into(), t(100));
        assert!(actions.is_empty(), "not addressed to us");
    }

    #[test]
    fn duplicate_data_is_acked_but_not_redelivered() {
        let mut rx = mac(1, 1);
        let frame = Frame::Data(DataFrame {
            transmitter: NodeId::new(0),
            link_dst: LinkDst::Unicast(NodeId::new(1)),
            flow: FlowId::new(0),
            src: NodeId::new(0),
            dst: NodeId::new(1),
            frame_seq: 1,
            subframes: vec![Subframe { seq: 0, packet: packet(0, 0, 1), corrupted: false }].into(),
            retry: 0,
        });
        let first = rx.on_frame_rx_vec(frame.clone().into(), t(100));
        assert!(first.iter().any(|a| matches!(a, MacAction::Deliver { .. })));
        // Retransmission of the same subframe (sender missed the ACK).
        let Frame::Data(mut d) = frame else { panic!() };
        d.frame_seq = 2;
        let second = rx.on_frame_rx_vec(Frame::Data(d).into(), t(400));
        assert!(
            !second.iter().any(|a| matches!(a, MacAction::Deliver { .. })),
            "duplicate must not be delivered twice"
        );
        // But it is still acknowledged.
        assert!(second.iter().any(|a| matches!(a, MacAction::SetTimer { .. })));
    }
}
