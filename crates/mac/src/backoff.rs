//! The 802.11 binary-exponential contention-window engine.
//!
//! Tracks the contention window, draws backoff counters, and converts
//! between elapsed idle time and consumed slots so the MAC can freeze and
//! resume the countdown across busy periods without per-slot events.

use wmn_sim::{SimDuration, StreamRng};

/// Contention-window state: CW doubling on failure, reset on success, and
/// slot bookkeeping for a freezable countdown.
///
/// # Example
///
/// ```
/// use wmn_mac::Backoff;
/// use wmn_sim::StreamRng;
///
/// let mut bo = Backoff::new(15, 1023);
/// let mut rng = StreamRng::derive(1, "bo");
/// let slots = bo.draw(&mut rng);
/// assert!(slots <= 15);
/// bo.on_failure();
/// assert_eq!(bo.cw(), 31);
/// bo.on_success();
/// assert_eq!(bo.cw(), 15);
/// ```
#[derive(Debug)]
pub struct Backoff {
    cw_min: u32,
    cw_max: u32,
    cw: u32,
    /// Slots remaining in the current (possibly frozen) countdown.
    remaining: Option<u32>,
}

impl Backoff {
    /// Creates an engine with the given window bounds (inclusive slot
    /// counts, e.g. 15 and 1023 for 802.11a/n).
    ///
    /// # Panics
    ///
    /// Panics if `cw_min > cw_max`.
    pub fn new(cw_min: u32, cw_max: u32) -> Self {
        assert!(cw_min <= cw_max, "cw_min must not exceed cw_max");
        Backoff { cw_min, cw_max, cw: cw_min, remaining: None }
    }

    /// Current contention window.
    pub fn cw(&self) -> u32 {
        self.cw
    }

    /// Slots left in the pending countdown, if one exists.
    pub fn remaining(&self) -> Option<u32> {
        self.remaining
    }

    /// Draws a fresh counter uniform in `[0, cw]` and stores it as the
    /// pending countdown. Returns the drawn slot count.
    pub fn draw(&mut self, rng: &mut StreamRng) -> u32 {
        let slots = rng.uniform_slots(self.cw);
        self.remaining = Some(slots);
        slots
    }

    /// Ensures a countdown exists (drawing one if necessary) and returns it.
    pub fn ensure_drawn(&mut self, rng: &mut StreamRng) -> u32 {
        match self.remaining {
            Some(s) => s,
            None => self.draw(rng),
        }
    }

    /// Consumes slots after the channel stayed idle for `idle_time`
    /// following the DIFS boundary. Returns the slots still remaining.
    ///
    /// # Panics
    ///
    /// Panics if no countdown is pending.
    pub fn consume_idle(&mut self, idle_time: SimDuration, slot: SimDuration) -> u32 {
        let rem = self.remaining.expect("no backoff pending");
        let consumed = idle_time.div_duration(slot).min(u64::from(rem)) as u32;
        let left = rem - consumed;
        self.remaining = Some(left);
        left
    }

    /// The countdown completed (the MAC is about to transmit).
    pub fn clear(&mut self) {
        self.remaining = None;
    }

    /// Transmission succeeded: reset the window to CWmin.
    pub fn on_success(&mut self) {
        self.cw = self.cw_min;
    }

    /// Transmission failed: double the window, capped at CWmax.
    pub fn on_failure(&mut self) {
        self.cw = (self.cw * 2 + 1).min(self.cw_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn doubling_sequence_15_to_1023() {
        let mut bo = Backoff::new(15, 1023);
        let mut seen = vec![bo.cw()];
        for _ in 0..8 {
            bo.on_failure();
            seen.push(bo.cw());
        }
        assert_eq!(seen, vec![15, 31, 63, 127, 255, 511, 1023, 1023, 1023]);
    }

    #[test]
    fn success_resets_window() {
        let mut bo = Backoff::new(15, 1023);
        bo.on_failure();
        bo.on_failure();
        bo.on_success();
        assert_eq!(bo.cw(), 15);
    }

    #[test]
    fn consume_idle_partial_slots() {
        let mut bo = Backoff::new(15, 1023);
        bo.remaining = Some(5);
        let slot = SimDuration::from_micros(9);
        // 2.5 slots of idle time consumes 2 whole slots.
        let left = bo.consume_idle(SimDuration::from_micros(22), slot);
        assert_eq!(left, 3);
        // Consuming more idle time than slots saturates at zero.
        let left = bo.consume_idle(SimDuration::from_micros(900), slot);
        assert_eq!(left, 0);
    }

    #[test]
    fn ensure_drawn_is_idempotent() {
        let mut bo = Backoff::new(15, 1023);
        let mut rng = wmn_sim::StreamRng::derive(4, "bo");
        let first = bo.ensure_drawn(&mut rng);
        let second = bo.ensure_drawn(&mut rng);
        assert_eq!(first, second);
    }

    proptest! {
        /// Draws always lie inside the current window.
        #[test]
        fn prop_draw_in_window(failures in 0u32..10, seed in proptest::num::u64::ANY) {
            let mut bo = Backoff::new(15, 1023);
            for _ in 0..failures {
                bo.on_failure();
            }
            let mut rng = wmn_sim::StreamRng::derive(seed, "draw");
            let s = bo.draw(&mut rng);
            prop_assert!(s <= bo.cw());
        }

        /// The window never leaves [cw_min, cw_max].
        #[test]
        fn prop_window_bounds(ops in proptest::collection::vec(any::<bool>(), 0..64)) {
            let mut bo = Backoff::new(15, 1023);
            for success in ops {
                if success { bo.on_success() } else { bo.on_failure() }
                prop_assert!((15..=1023).contains(&bo.cw()));
            }
        }
    }
}
