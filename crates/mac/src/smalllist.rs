//! A small-vector list for the frame hot path.
//!
//! Forwarder lists, relay lists, and ACK bitmaps are tiny (the paper caps
//! forwarder lists at a handful of entries and aggregation at 16 subframes),
//! yet until the zero-copy rework every one of them was a heap `Vec` cloned
//! on every transmission attempt. [`SmallList`] stores up to `N` elements
//! inline — copying one is a `memcpy`, never an allocation — and spills to a
//! heap `Vec` only in the (never-hit-in-practice) case of an oversized list,
//! so no caller has to reason about capacity limits.
//!
//! The type is deliberately minimal: `Copy + Default` elements only (ids and
//! id tuples), append-only growth, slice access through `Deref`. That is the
//! exact surface the MAC layer uses, and nothing more.

use std::fmt;
use std::ops::Deref;

/// An inline-first list of up to `N` `Copy` elements, spilling to the heap
/// beyond that.
///
/// Equality, ordering of iteration, and `Debug` all view the list as the
/// slice of its live elements; the unused inline slots are zero-filled
/// padding and never observable.
///
/// # Example
///
/// ```
/// use wmn_mac::SmallList;
/// let list: SmallList<u32, 4> = [7, 8].into_iter().collect();
/// assert_eq!(&*list, &[7, 8]);
/// assert_eq!(list.len(), 2);
/// ```
#[derive(Clone)]
pub struct SmallList<T: Copy + Default, const N: usize> {
    /// Inline storage; only `inline[..len]` is live (unless spilled).
    inline: [T; N],
    /// Number of live inline elements. Unused once spilled.
    len: usize,
    /// Overflow storage. Empty ⇒ the list is inline; non-empty ⇒ it holds
    /// *all* elements and the inline array is dead.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SmallList<T, N> {
    /// An empty list (no heap allocation).
    pub fn new() -> Self {
        SmallList { inline: [T::default(); N], len: 0, spill: Vec::new() }
    }

    /// Appends an element, spilling to the heap only past `N` elements.
    pub fn push(&mut self, value: T) {
        if !self.spill.is_empty() {
            self.spill.push(value);
        } else if self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            self.spill.reserve(N + 1);
            self.spill.extend_from_slice(&self.inline[..N]);
            self.spill.push(value);
        }
    }

    /// The live elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len
        } else {
            self.spill.len()
        }
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallList<T, N> {
    fn default() -> Self {
        SmallList::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallList<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallList<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallList<T, N> {}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallList<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default, const N: usize> From<&[T]> for SmallList<T, N> {
    fn from(values: &[T]) -> Self {
        let mut list = SmallList::new();
        if values.len() <= N {
            list.inline[..values.len()].copy_from_slice(values);
            list.len = values.len();
        } else {
            list.spill = values.to_vec();
        }
        list
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for SmallList<T, N> {
    fn from(values: Vec<T>) -> Self {
        // An oversized Vec is adopted as-is (its allocation is reused);
        // a small one is copied inline and the Vec freed.
        if values.len() > N {
            SmallList { inline: [T::default(); N], len: 0, spill: values }
        } else {
            SmallList::from(values.as_slice())
        }
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallList<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut list = SmallList::new();
        for value in iter {
            list.push(value);
        }
        list
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallList<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut list: SmallList<u32, 3> = SmallList::new();
        for v in 0..3 {
            list.push(v);
        }
        assert_eq!(&*list, &[0, 1, 2]);
        list.push(3);
        assert_eq!(&*list, &[0, 1, 2, 3], "spill preserves order");
        list.push(4);
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn equality_ignores_dead_inline_slots() {
        let a: SmallList<u32, 4> = vec![1, 2].into();
        let mut b: SmallList<u32, 4> = SmallList::new();
        b.push(1);
        b.push(2);
        assert_eq!(a, b);
        let c: SmallList<u32, 4> = vec![1, 2, 3].into();
        assert_ne!(a, c);
    }

    #[test]
    fn from_vec_keeps_oversized_allocation_and_inlines_small_ones() {
        let big: SmallList<u32, 2> = vec![1, 2, 3, 4].into();
        assert_eq!(&*big, &[1, 2, 3, 4]);
        let small: SmallList<u32, 2> = vec![9].into();
        assert_eq!(&*small, &[9]);
        assert!(small.spill.is_empty(), "small lists stay inline");
    }

    #[test]
    fn slice_ops_come_through_deref() {
        let list: SmallList<u32, 4> = vec![5, 6, 7].into();
        assert_eq!(list[0], 5);
        assert_eq!(list.iter().position(|&v| v == 7), Some(2));
        assert_eq!(list.last(), Some(&7));
    }

    #[test]
    fn collect_and_debug() {
        let list: SmallList<u32, 2> = (0..4).collect();
        assert_eq!(format!("{list:?}"), "[0, 1, 2, 3]");
        let empty: SmallList<u32, 2> = SmallList::default();
        assert!(empty.is_empty());
    }
}
