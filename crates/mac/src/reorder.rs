//! The receiving-side queue `Rq` (Section III-B remark 6).
//!
//! With packet aggregation, bit errors can corrupt a low-sequence subframe
//! while higher-sequence subframes in the same frame survive. The receiver
//! must hold the survivors and wait for the retransmission, otherwise the
//! aggregation itself would *introduce* re-ordering. `ReorderBuffer` does
//! exactly that: it deduplicates, buffers out-of-order arrivals, and
//! releases packets to the upper layer strictly in sequence.
//!
//! A capacity bound protects against a permanently lost sequence (sender
//! exhausted its retries): when the buffer is full, the window advances to
//! the oldest buffered packet, accepting the hole.

use std::collections::BTreeMap;

use crate::frame::Packet;

/// What happened to one subframe offered to the buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcceptOutcome {
    /// New in-window packet; it (and possibly successors) will be released.
    Accepted,
    /// Already delivered or already buffered; acknowledge but do not
    /// deliver again.
    Duplicate,
}

/// In-order delivery buffer for one (flow, direction).
///
/// # Example
///
/// ```
/// use wmn_mac::ReorderBuffer;
/// use wmn_mac::{NetHeader, Packet, Proto};
/// use wmn_sim::{FlowId, NodeId};
///
/// let h = NetHeader {
///     flow: FlowId::new(0), src: NodeId::new(0), dst: NodeId::new(1),
///     proto: Proto::Tcp, wire_bytes: 1000,
/// };
/// let mut rq = ReorderBuffer::new(64);
/// // Sequence 1 arrives before 0: held back…
/// assert!(rq.accept(1, Packet::new(h, vec![])).1.is_empty());
/// // …and released, in order, once 0 fills the gap.
/// let (_, released) = rq.accept(0, Packet::new(h, vec![]));
/// assert_eq!(released.len(), 2);
/// ```
#[derive(Debug)]
pub struct ReorderBuffer {
    next_expected: u32,
    pending: BTreeMap<u32, Packet>,
    capacity: usize,
    /// Packets released out of their original order because the window was
    /// force-advanced past a hole.
    holes_skipped: u64,
}

impl ReorderBuffer {
    /// Creates a buffer holding at most `capacity` out-of-order packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reorder buffer capacity must be positive");
        ReorderBuffer { next_expected: 0, pending: BTreeMap::new(), capacity, holes_skipped: 0 }
    }

    /// Offers a received subframe. Returns the outcome plus the packets now
    /// releasable to the upper layer, in sequence order.
    pub fn accept(&mut self, seq: u32, packet: Packet) -> (AcceptOutcome, Vec<Packet>) {
        if seq < self.next_expected || self.pending.contains_key(&seq) {
            return (AcceptOutcome::Duplicate, Vec::new());
        }
        self.pending.insert(seq, packet);
        let mut released = Vec::new();
        // Release the contiguous run starting at next_expected.
        while let Some(p) = self.pending.remove(&self.next_expected) {
            released.push(p);
            self.next_expected += 1;
        }
        // Window-full recovery: the sender has given up on a hole; advance
        // to the oldest buffered packet so the flow is not stalled forever.
        while self.pending.len() > self.capacity {
            let (&oldest, _) = self.pending.iter().next().expect("non-empty");
            self.holes_skipped += u64::from(oldest - self.next_expected);
            self.next_expected = oldest;
            while let Some(p) = self.pending.remove(&self.next_expected) {
                released.push(p);
                self.next_expected += 1;
            }
        }
        (AcceptOutcome::Accepted, released)
    }

    /// The next sequence number the upper layer is waiting for.
    pub fn next_expected(&self) -> u32 {
        self.next_expected
    }

    /// Whether `seq` has already been received (delivered or buffered).
    /// RIPPLE destinations use this to acknowledge retransmitted subframes
    /// they already hold, so the source stops resending them.
    pub fn has(&self, seq: u32) -> bool {
        seq < self.next_expected || self.pending.contains_key(&seq)
    }

    /// Number of packets currently held back.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// How many sequence numbers were abandoned by forced window advances.
    pub fn holes_skipped(&self) -> u64 {
        self.holes_skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wmn_sim::{FlowId, NodeId};

    use crate::frame::{NetHeader, Proto};

    fn pkt(seq: u32) -> Packet {
        Packet::new(
            NetHeader {
                flow: FlowId::new(0),
                src: NodeId::new(0),
                dst: NodeId::new(1),
                proto: Proto::Tcp,
                wire_bytes: 1000,
            },
            seq.to_le_bytes().to_vec(),
        )
    }

    fn seq_of(p: &Packet) -> u32 {
        u32::from_le_bytes(p.body.as_slice().try_into().unwrap())
    }

    #[test]
    fn in_order_stream_flows_through() {
        let mut rq = ReorderBuffer::new(8);
        for s in 0..5 {
            let (out, rel) = rq.accept(s, pkt(s));
            assert_eq!(out, AcceptOutcome::Accepted);
            assert_eq!(rel.len(), 1);
            assert_eq!(seq_of(&rel[0]), s);
        }
        assert_eq!(rq.next_expected(), 5);
        assert_eq!(rq.buffered(), 0);
    }

    #[test]
    fn gap_holds_then_releases_in_order() {
        let mut rq = ReorderBuffer::new(8);
        assert!(rq.accept(1, pkt(1)).1.is_empty());
        assert!(rq.accept(2, pkt(2)).1.is_empty());
        assert_eq!(rq.buffered(), 2);
        let (_, rel) = rq.accept(0, pkt(0));
        assert_eq!(rel.iter().map(seq_of).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_are_flagged_not_delivered() {
        let mut rq = ReorderBuffer::new(8);
        rq.accept(0, pkt(0));
        let (out, rel) = rq.accept(0, pkt(0));
        assert_eq!(out, AcceptOutcome::Duplicate);
        assert!(rel.is_empty());
        // Duplicate of a still-buffered packet.
        rq.accept(2, pkt(2));
        let (out, _) = rq.accept(2, pkt(2));
        assert_eq!(out, AcceptOutcome::Duplicate);
    }

    #[test]
    fn forced_advance_skips_dead_hole() {
        let mut rq = ReorderBuffer::new(3);
        // Seq 0 never arrives; 1..=4 overflow the 3-slot buffer.
        for s in 1..=4 {
            rq.accept(s, pkt(s));
        }
        assert!(rq.holes_skipped() >= 1, "hole at 0 must be abandoned");
        assert_eq!(rq.next_expected(), 5);
        assert_eq!(rq.buffered(), 0);
    }

    proptest! {
        /// Whatever the arrival permutation, released packets come out in
        /// strictly increasing sequence order with no duplicates.
        #[test]
        fn prop_release_order_sorted(perm in proptest::sample::subsequence((0u32..40).collect::<Vec<_>>(), 1..40), extra_dups in 0usize..5) {
            let mut order = perm.clone();
            // Shuffle deterministically by reversing chunks.
            order.reverse();
            for _ in 0..extra_dups {
                if let Some(&first) = order.first() {
                    order.push(first);
                }
            }
            let mut rq = ReorderBuffer::new(64);
            let mut released = Vec::new();
            for s in order {
                let (_, rel) = rq.accept(s, pkt(s));
                released.extend(rel.iter().map(seq_of));
            }
            let mut sorted = released.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&released, &sorted, "released stream must be sorted and dup-free");
        }
    }
}
