//! The receiving-side queue `Rq` (Section III-B remark 6).
//!
//! With packet aggregation, bit errors can corrupt a low-sequence subframe
//! while higher-sequence subframes in the same frame survive. The receiver
//! must hold the survivors and wait for the retransmission, otherwise the
//! aggregation itself would *introduce* re-ordering. `ReorderBuffer` does
//! exactly that: it deduplicates, buffers out-of-order arrivals, and
//! releases packets to the upper layer strictly in sequence.
//!
//! A capacity bound protects against a permanently lost sequence (sender
//! exhausted its retries): when the buffer is full, the window advances to
//! the oldest buffered packet, accepting the hole.

use std::collections::VecDeque;

use crate::frame::Packet;
use crate::pool::{Slot, SlotPool};

/// What happened to one subframe offered to the buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcceptOutcome {
    /// New in-window packet; it (and possibly successors) will be released.
    Accepted,
    /// Already delivered or already buffered; acknowledge but do not
    /// deliver again.
    Duplicate,
}

/// In-order delivery buffer for one (flow, direction).
///
/// # Example
///
/// ```
/// use wmn_mac::ReorderBuffer;
/// use wmn_mac::{NetHeader, Packet, Proto};
/// use wmn_sim::{FlowId, NodeId};
///
/// let h = NetHeader {
///     flow: FlowId::new(0), src: NodeId::new(0), dst: NodeId::new(1),
///     proto: Proto::Tcp, wire_bytes: 1000,
/// };
/// let mut rq = ReorderBuffer::new(64);
/// // Sequence 1 arrives before 0: held back…
/// assert!(rq.accept(1, Packet::new(h, vec![])).1.is_empty());
/// // …and released, in order, once 0 fills the gap.
/// let (_, released) = rq.accept(0, Packet::new(h, vec![]));
/// assert_eq!(released.len(), 2);
/// ```
/// Out-of-order arrivals live in a sequence-sorted `VecDeque` (a `BTreeMap`
/// would pay one node allocation per buffered packet — with aggregation,
/// one per *subframe*); insertion shifts at most `capacity` entries, and
/// the deque's capacity is retained across the whole flow. Released runs
/// come back in a recycled [`Slot`], so the in-order fast path — by far the
/// common case on a clean channel — never touches the allocator.
#[derive(Debug)]
pub struct ReorderBuffer {
    next_expected: u32,
    /// Held-back packets, sorted by sequence number (strictly increasing).
    pending: VecDeque<(u32, Packet)>,
    capacity: usize,
    /// Recycled buffers for the released runs [`accept`](ReorderBuffer::accept) returns.
    releases: SlotPool<Packet>,
    /// Packets released out of their original order because the window was
    /// force-advanced past a hole.
    holes_skipped: u64,
}

impl ReorderBuffer {
    /// Creates a buffer holding at most `capacity` out-of-order packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reorder buffer capacity must be positive");
        ReorderBuffer {
            next_expected: 0,
            pending: VecDeque::new(),
            capacity,
            releases: SlotPool::new(),
            holes_skipped: 0,
        }
    }

    /// Offers a received subframe. Returns the outcome plus the packets now
    /// releasable to the upper layer, in sequence order, in a recycled
    /// [`Slot`] (drain it and drop it; the buffer parks for the next run).
    pub fn accept(&mut self, seq: u32, packet: Packet) -> (AcceptOutcome, Slot<Packet>) {
        let mut released = self.releases.mint();
        if seq < self.next_expected {
            return (AcceptOutcome::Duplicate, released);
        }
        if seq == self.next_expected {
            // In-order fast path: straight into the release run, no
            // pending-buffer traffic at all.
            released.push(packet);
            self.next_expected += 1;
        } else {
            let idx = self.pending.partition_point(|(s, _)| *s < seq);
            if self.pending.get(idx).is_some_and(|(s, _)| *s == seq) {
                return (AcceptOutcome::Duplicate, released);
            }
            self.pending.insert(idx, (seq, packet));
        }
        // Release the contiguous run starting at next_expected.
        self.release_run(&mut released);
        // Window-full recovery: the sender has given up on a hole; advance
        // to the oldest buffered packet so the flow is not stalled forever.
        while self.pending.len() > self.capacity {
            let oldest = self.pending.front().expect("non-empty").0;
            self.holes_skipped += u64::from(oldest - self.next_expected);
            self.next_expected = oldest;
            self.release_run(&mut released);
        }
        (AcceptOutcome::Accepted, released)
    }

    /// Moves the contiguous run starting at `next_expected` out of
    /// `pending` and into `released`.
    fn release_run(&mut self, released: &mut Slot<Packet>) {
        while self.pending.front().is_some_and(|(s, _)| *s == self.next_expected) {
            let (_, p) = self.pending.pop_front().expect("front just matched");
            released.push(p);
            self.next_expected += 1;
        }
    }

    /// The next sequence number the upper layer is waiting for.
    pub fn next_expected(&self) -> u32 {
        self.next_expected
    }

    /// Whether `seq` has already been received (delivered or buffered).
    /// RIPPLE destinations use this to acknowledge retransmitted subframes
    /// they already hold, so the source stops resending them.
    pub fn has(&self, seq: u32) -> bool {
        seq < self.next_expected || self.pending.binary_search_by_key(&seq, |(s, _)| *s).is_ok()
    }

    /// Number of packets currently held back.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// How many sequence numbers were abandoned by forced window advances.
    pub fn holes_skipped(&self) -> u64 {
        self.holes_skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wmn_sim::{FlowId, NodeId};

    use crate::frame::{NetHeader, Proto};

    fn pkt(seq: u32) -> Packet {
        Packet::new(
            NetHeader {
                flow: FlowId::new(0),
                src: NodeId::new(0),
                dst: NodeId::new(1),
                proto: Proto::Tcp,
                wire_bytes: 1000,
            },
            seq.to_le_bytes().to_vec(),
        )
    }

    fn seq_of(p: &Packet) -> u32 {
        u32::from_le_bytes(p.body.as_slice().try_into().unwrap())
    }

    #[test]
    fn in_order_stream_flows_through() {
        let mut rq = ReorderBuffer::new(8);
        for s in 0..5 {
            let (out, rel) = rq.accept(s, pkt(s));
            assert_eq!(out, AcceptOutcome::Accepted);
            assert_eq!(rel.len(), 1);
            assert_eq!(seq_of(&rel[0]), s);
        }
        assert_eq!(rq.next_expected(), 5);
        assert_eq!(rq.buffered(), 0);
    }

    #[test]
    fn gap_holds_then_releases_in_order() {
        let mut rq = ReorderBuffer::new(8);
        assert!(rq.accept(1, pkt(1)).1.is_empty());
        assert!(rq.accept(2, pkt(2)).1.is_empty());
        assert_eq!(rq.buffered(), 2);
        let (_, rel) = rq.accept(0, pkt(0));
        assert_eq!(rel.iter().map(seq_of).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_are_flagged_not_delivered() {
        let mut rq = ReorderBuffer::new(8);
        rq.accept(0, pkt(0));
        let (out, rel) = rq.accept(0, pkt(0));
        assert_eq!(out, AcceptOutcome::Duplicate);
        assert!(rel.is_empty());
        // Duplicate of a still-buffered packet.
        rq.accept(2, pkt(2));
        let (out, _) = rq.accept(2, pkt(2));
        assert_eq!(out, AcceptOutcome::Duplicate);
    }

    #[test]
    fn forced_advance_skips_dead_hole() {
        let mut rq = ReorderBuffer::new(3);
        // Seq 0 never arrives; 1..=4 overflow the 3-slot buffer.
        for s in 1..=4 {
            rq.accept(s, pkt(s));
        }
        assert!(rq.holes_skipped() >= 1, "hole at 0 must be abandoned");
        assert_eq!(rq.next_expected(), 5);
        assert_eq!(rq.buffered(), 0);
    }

    #[test]
    fn release_buffers_recycle_across_accepts() {
        let mut rq = ReorderBuffer::new(8);
        let first = rq.accept(0, pkt(0)).1;
        assert_eq!(first.len(), 1);
        let first_generation = first.generation();
        drop(first);
        let second = rq.accept(1, pkt(1)).1;
        assert_eq!(second.len(), 1);
        assert!(second.generation() > first_generation, "each release run is freshly minted");
    }

    proptest! {
        /// Whatever the arrival permutation, released packets come out in
        /// strictly increasing sequence order with no duplicates.
        #[test]
        fn prop_release_order_sorted(perm in proptest::sample::subsequence((0u32..40).collect::<Vec<_>>(), 1..40), extra_dups in 0usize..5) {
            let mut order = perm.clone();
            // Shuffle deterministically by reversing chunks.
            order.reverse();
            for _ in 0..extra_dups {
                if let Some(&first) = order.first() {
                    order.push(first);
                }
            }
            let mut rq = ReorderBuffer::new(64);
            let mut released = Vec::new();
            for s in order {
                let (_, rel) = rq.accept(s, pkt(s));
                released.extend(rel.iter().map(seq_of));
            }
            let mut sorted = released.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&released, &sorted, "released stream must be sorted and dup-free");
        }
    }
}
