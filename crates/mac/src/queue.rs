//! The bounded interface queue (the paper's `Sq` holding area and NS-2's
//! `ifq`). Drop-tail, capacity 50 packets per Table I.

use std::collections::VecDeque;

use crate::frame::{Packet, RouteInfo};
use crate::pool::{Slot, SlotPool};

/// A packet waiting in the interface queue with its routing decision.
#[derive(Clone, Debug)]
pub struct QueuedPacket {
    /// The waiting packet.
    pub packet: Packet,
    /// How it is to be forwarded.
    pub route: RouteInfo,
}

/// Bounded drop-tail FIFO of packets awaiting transmission.
///
/// # Example
///
/// ```
/// use wmn_mac::{IfQueue, NetHeader, Packet, Proto, RouteInfo};
/// use wmn_sim::{FlowId, NodeId};
///
/// let mut q = IfQueue::new(1);
/// let h = NetHeader {
///     flow: FlowId::new(0), src: NodeId::new(0), dst: NodeId::new(1),
///     proto: Proto::Udp, wire_bytes: 100,
/// };
/// assert!(q.push(Packet::new(h, vec![]), RouteInfo::NextHop(NodeId::new(1))).is_none());
/// // Second push overflows and hands the packet back.
/// assert!(q.push(Packet::new(h, vec![]), RouteInfo::NextHop(NodeId::new(1))).is_some());
/// ```
#[derive(Debug)]
pub struct IfQueue {
    items: VecDeque<QueuedPacket>,
    capacity: usize,
    /// Recycled batch buffers for [`pop_matching`](IfQueue::pop_matching):
    /// in saturated-queue regimes the aggregator pulls a batch per
    /// transmission, and the pool keeps that off the allocator.
    batches: SlotPool<QueuedPacket>,
}

impl IfQueue {
    /// Creates a queue with the given capacity in packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "interface queue capacity must be positive");
        IfQueue {
            items: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            batches: SlotPool::new(),
        }
    }

    /// Appends a packet; returns it back (drop-tail) if the queue is full.
    pub fn push(&mut self, packet: Packet, route: RouteInfo) -> Option<Packet> {
        if self.items.len() >= self.capacity {
            return Some(packet);
        }
        self.items.push_back(QueuedPacket { packet, route });
        None
    }

    /// Removes and returns the head-of-line packet.
    pub fn pop(&mut self) -> Option<QueuedPacket> {
        self.items.pop_front()
    }

    /// Peeks at the head-of-line packet.
    pub fn peek(&self) -> Option<&QueuedPacket> {
        self.items.front()
    }

    /// Removes and returns up to `max` packets totalling at most
    /// `max_bytes` of payload that share the head packet's route (the
    /// aggregation rule: one frame addresses one link destination).
    /// Non-matching packets keep their relative order. The first matching
    /// packet is always taken even if it alone exceeds the byte budget.
    ///
    /// The batch comes back in a recycled [`Slot`]; drain it and drop it,
    /// and the buffer parks for the next transmission.
    pub fn pop_batch_matching_head(&mut self, max: usize, max_bytes: u32) -> Slot<QueuedPacket> {
        let Some(head_route) = self.items.front().map(|q| q.route.clone()) else {
            return self.batches.mint();
        };
        self.pop_matching(&head_route, max, max_bytes)
    }

    /// Removes and returns up to `max` packets (totalling at most
    /// `max_bytes`) whose route equals `route`, preserving relative order of
    /// everything else. Used to top up partial retransmissions with fresh
    /// packets for the same link destination. The byte budget keeps frame
    /// airtimes bounded (real 802.11n caps A-MPDU duration); the first
    /// matching packet is exempt so oversized packets still move.
    ///
    /// Matching packets are extracted in place (`VecDeque::remove` shifts
    /// at most `capacity` entries — 50 per Table I) into a pooled batch
    /// [`Slot`], so a saturated enqueue/aggregate cycle never allocates.
    pub fn pop_matching(
        &mut self,
        route: &RouteInfo,
        max: usize,
        max_bytes: u32,
    ) -> Slot<QueuedPacket> {
        let mut batch = self.batches.mint();
        let mut bytes: u64 = 0;
        let mut i = 0;
        while i < self.items.len() {
            let item = &self.items[i];
            let cost = u64::from(item.packet.header.wire_bytes);
            let fits = batch.is_empty() || bytes + cost <= u64::from(max_bytes);
            if batch.len() < max && fits && item.route == *route {
                bytes += cost;
                batch.push(self.items.remove(i).expect("index is in range"));
            } else {
                i += 1;
            }
        }
        batch
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Remaining free slots.
    pub fn free_space(&self) -> usize {
        self.capacity - self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_sim::{FlowId, NodeId};

    use crate::frame::{NetHeader, Proto};

    fn pkt(flow: u32) -> Packet {
        Packet::new(
            NetHeader {
                flow: FlowId::new(flow),
                src: NodeId::new(0),
                dst: NodeId::new(9),
                proto: Proto::Tcp,
                wire_bytes: 1000,
            },
            vec![],
        )
    }

    fn hop(n: u32) -> RouteInfo {
        RouteInfo::NextHop(NodeId::new(n))
    }

    #[test]
    fn fifo_order() {
        let mut q = IfQueue::new(10);
        for i in 0..3 {
            assert!(q.push(pkt(i), hop(1)).is_none());
        }
        assert_eq!(q.pop().unwrap().packet.header.flow, FlowId::new(0));
        assert_eq!(q.pop().unwrap().packet.header.flow, FlowId::new(1));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drop_tail_on_overflow() {
        let mut q = IfQueue::new(2);
        assert!(q.push(pkt(0), hop(1)).is_none());
        assert!(q.push(pkt(1), hop(1)).is_none());
        let rejected = q.push(pkt(2), hop(1)).expect("queue full");
        assert_eq!(rejected.header.flow, FlowId::new(2));
        assert_eq!(q.free_space(), 0);
    }

    #[test]
    fn batch_takes_only_matching_route() {
        let mut q = IfQueue::new(10);
        q.push(pkt(0), hop(1));
        q.push(pkt(1), hop(2)); // different next hop, must stay
        q.push(pkt(2), hop(1));
        let batch = q.pop_batch_matching_head(16, u32::MAX);
        assert_eq!(batch.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek().unwrap().route, hop(2));
    }

    #[test]
    fn batch_respects_max() {
        let mut q = IfQueue::new(50);
        for i in 0..20 {
            q.push(pkt(i), hop(1));
        }
        let batch = q.pop_batch_matching_head(16, u32::MAX);
        assert_eq!(batch.len(), 16);
        assert_eq!(q.len(), 4);
        // Remaining packets keep FIFO order.
        assert_eq!(q.pop().unwrap().packet.header.flow, FlowId::new(16));
    }

    #[test]
    fn batch_on_empty_queue() {
        let mut q = IfQueue::new(5);
        assert!(q.pop_batch_matching_head(16, u32::MAX).is_empty());
    }

    #[test]
    fn batch_buffers_recycle_across_calls() {
        let mut q = IfQueue::new(10);
        for i in 0..4 {
            q.push(pkt(i), hop(1));
        }
        let first = q.pop_batch_matching_head(2, u32::MAX);
        assert_eq!(first.len(), 2);
        let first_generation = first.generation();
        drop(first);
        let second = q.pop_batch_matching_head(2, u32::MAX);
        assert_eq!(second.len(), 2);
        assert_eq!(second[0].packet.header.flow, FlowId::new(2));
        assert!(second.generation() > first_generation, "each batch is freshly minted");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = IfQueue::new(0);
    }
}
