//! 802.11 MAC substrate: frame formats, the DCF/AFR state machines, queues,
//! and the analytic signaling-overhead model from Section II of the paper.
//!
//! Every MAC in this workspace (plain DCF, AFR, preExOR, MCExOR and RIPPLE
//! itself) is written as a *passive state machine*: the simulation runner
//! calls `on_*` input methods, each of which writes its [`MacAction`]s
//! (start a transmission, set a timer, deliver a packet upwards, …) into a
//! reusable engine-owned [`ActionSink`]; the runner drains the sink and
//! interprets the actions against the event queue and the shared medium.
//! Nothing in this crate touches the clock directly, which is what makes
//! the protocol logic unit-testable at microsecond precision.
//!
//! Contents:
//!
//! * [`frame`] — network packets, aggregated data frames with per-subframe
//!   CRC status, bitmap MAC ACKs, and wire-size arithmetic;
//! * [`queue`] — the bounded interface queue (Table I: 50 packets);
//! * [`reorder`] — the receiving-side in-order delivery buffer (the paper's
//!   `Rq`), shared by AFR receivers and RIPPLE destinations;
//! * [`backoff`] — the 802.11 contention-window engine;
//! * [`dcf`] — the DCF MAC; with `max_aggregation > 1` it becomes AFR
//!   (802.11n-like aggregation with partial retransmission), the paper's
//!   strongest conventional baseline;
//! * [`overhead`] — Section II's closed-form per-packet delivery-time model
//!   (the Fig. 2 timeline), with the paper's worked 3-hop example as tests;
//! * [`scheme`] — the [`MacScheme`] factory trait the simulation runner
//!   builds node stacks through (implemented here for DCF/AFR, in
//!   `wmn_routing` for the ExOR variants, and in `ripple` for RIPPLE).

pub mod backoff;
pub mod dcf;
pub mod frame;
pub mod overhead;
pub mod pool;
pub mod queue;
pub mod reorder;
pub mod scheme;
pub mod sink;
pub mod smalllist;

pub use backoff::Backoff;
pub use dcf::{DcfConfig, DcfMac, DcfScheme};
pub use frame::{
    AckFrame, AckList, DataFrame, Frame, LinkDst, NetHeader, NodeList, Packet, Proto, RouteInfo,
    RxFrame, Subframe,
};
pub use overhead::OverheadModel;
pub use pool::{Body, FramePool, Slot, SlotPool, SubframeVec};
pub use queue::IfQueue;
pub use reorder::ReorderBuffer;
pub use scheme::MacScheme;
pub use sink::ActionSink;
pub use smalllist::SmallList;

use wmn_sim::{SimDuration, SimTime};

/// Rate class for a transmission; the runner maps it to the scenario's
/// concrete [`wmn_phy::Rate`] (data vs basic rate from Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RateClass {
    /// The PHY data rate (216 or 6 Mbps in the paper).
    Data,
    /// The PHY basic rate used for MAC ACKs (54 or 6 Mbps in the paper).
    Basic,
}

/// Opaque timer handle. MACs mint tokens from a private counter and ignore
/// fires for tokens they no longer recognise, which is how timers are
/// "cancelled" without talking to the event queue.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerToken(pub u64);

/// Why a packet was dropped by the MAC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// The interface queue was full on enqueue (Table I capacity: 50).
    QueueFull,
    /// The per-hop (or, for RIPPLE, end-to-end) retry limit was exceeded.
    RetryLimit,
}

/// An output of a MAC state machine, interpreted by the simulation runner.
#[derive(Clone, Debug)]
pub enum MacAction {
    /// Begin transmitting `frame` at the given rate class. The runner
    /// computes the airtime, informs the medium, and calls `on_tx_end` when
    /// the transmission completes.
    StartTx {
        /// Frame to put on the air.
        frame: Frame,
        /// Rate class it is modulated at.
        rate: RateClass,
    },
    /// Request a timer callback `delay` from now, identified by `token`.
    SetTimer {
        /// Delay from the current instant.
        delay: SimDuration,
        /// Token handed back on fire.
        token: TimerToken,
    },
    /// Hand a packet to the upper layer at this node (the runner routes it
    /// to the transport if this node is the packet's destination, or back
    /// into the forwarding path otherwise).
    Deliver {
        /// The packet, CRC-clean and deduplicated.
        packet: Packet,
    },
    /// The MAC gave up on a packet.
    Drop {
        /// The abandoned packet.
        packet: Packet,
        /// Why it was abandoned.
        reason: DropReason,
    },
}

/// Statistics every MAC keeps; used by experiments and by test assertions.
/// `PartialEq`/`Eq` support the executor's bit-identity determinism checks.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct MacStats {
    /// Data frames put on the air (including retransmissions).
    pub data_frames_sent: u64,
    /// MAC ACK frames put on the air.
    pub ack_frames_sent: u64,
    /// Data frames received cleanly.
    pub data_frames_received: u64,
    /// MAC ACKs received for our outstanding transmissions.
    pub acks_received: u64,
    /// Frame transmissions that ended in an ACK timeout.
    pub timeouts: u64,
    /// Packets dropped because the interface queue overflowed.
    pub drops_queue_full: u64,
    /// Packets dropped after exhausting retries.
    pub drops_retry_limit: u64,
    /// Packets delivered to the upper layer.
    pub delivered_up: u64,
}

/// The input interface shared by every MAC state machine in the workspace.
///
/// The simulation runner (`wmn-netsim`) drives implementations through this
/// trait; it is object-safe on purpose so the runner can store heterogeneous
/// MACs behind one interface. `Send` is a supertrait because the sharded
/// event loop moves per-station MACs onto shard worker threads — every MAC
/// is plain owned state plus seeded RNG streams, so the bound costs
/// implementations nothing.
/// Every handler writes its actions into the engine-owned [`ActionSink`]
/// passed as `out` instead of returning a fresh `Vec` — the engine drains
/// the sink after the call and reuses it for the next event, so the
/// steady-state action path never allocates. Handlers append in the order
/// the actions must be applied; they never read the sink back.
pub trait MacEntity: Send {
    /// A packet arrives from the upper layer with its routing decision.
    fn on_enqueue(&mut self, packet: Packet, route: RouteInfo, now: SimTime, out: &mut ActionSink);
    /// The channel at this station turned busy.
    fn on_busy(&mut self, now: SimTime, out: &mut ActionSink);
    /// The channel at this station turned idle.
    fn on_idle(&mut self, now: SimTime, out: &mut ActionSink);
    /// A frame was received cleanly (header intact; per-subframe corruption
    /// flags already applied by the channel). The frame arrives as an
    /// [`RxFrame`]: on the clean-channel fast path it is the *shared*
    /// broadcast copy, so implementations read through `Deref` and clone out
    /// only the (reference-counted, cheap) pieces they keep.
    fn on_frame_rx(&mut self, frame: RxFrame, now: SimTime, out: &mut ActionSink);
    /// Our own transmission just finished.
    fn on_tx_end(&mut self, now: SimTime, out: &mut ActionSink);
    /// A previously requested timer fired.
    fn on_timer(&mut self, token: TimerToken, now: SimTime, out: &mut ActionSink);
    /// Running statistics.
    fn stats(&self) -> MacStats;
}

/// Vec-collecting drivers for [`MacEntity`] handlers: each method runs the
/// sink-style handler against a fresh [`ActionSink`] and returns the drained
/// actions as a `Vec`, in emission order.
///
/// This is the *reference* surface — what the pre-sink interface returned —
/// kept for tests and tooling that want to pattern-match an action slice.
/// Engines must not use it: a fresh sink per call is exactly the allocation
/// the sink rework removed (the `hot-path-vec-new` lint watches the hot
/// paths).
pub trait MacEntityExt: MacEntity {
    /// [`MacEntity::on_enqueue`] through a fresh sink, actions collected.
    fn on_enqueue_vec(&mut self, packet: Packet, route: RouteInfo, now: SimTime) -> Vec<MacAction> {
        let mut sink = ActionSink::new();
        self.on_enqueue(packet, route, now, &mut sink);
        sink.drain_to_vec()
    }

    /// [`MacEntity::on_busy`] through a fresh sink, actions collected.
    fn on_busy_vec(&mut self, now: SimTime) -> Vec<MacAction> {
        let mut sink = ActionSink::new();
        self.on_busy(now, &mut sink);
        sink.drain_to_vec()
    }

    /// [`MacEntity::on_idle`] through a fresh sink, actions collected.
    fn on_idle_vec(&mut self, now: SimTime) -> Vec<MacAction> {
        let mut sink = ActionSink::new();
        self.on_idle(now, &mut sink);
        sink.drain_to_vec()
    }

    /// [`MacEntity::on_frame_rx`] through a fresh sink, actions collected.
    fn on_frame_rx_vec(&mut self, frame: RxFrame, now: SimTime) -> Vec<MacAction> {
        let mut sink = ActionSink::new();
        self.on_frame_rx(frame, now, &mut sink);
        sink.drain_to_vec()
    }

    /// [`MacEntity::on_tx_end`] through a fresh sink, actions collected.
    fn on_tx_end_vec(&mut self, now: SimTime) -> Vec<MacAction> {
        let mut sink = ActionSink::new();
        self.on_tx_end(now, &mut sink);
        sink.drain_to_vec()
    }

    /// [`MacEntity::on_timer`] through a fresh sink, actions collected.
    fn on_timer_vec(&mut self, token: TimerToken, now: SimTime) -> Vec<MacAction> {
        let mut sink = ActionSink::new();
        self.on_timer(token, now, &mut sink);
        sink.drain_to_vec()
    }
}

impl<M: MacEntity + ?Sized> MacEntityExt for M {}
