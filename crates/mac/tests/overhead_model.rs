//! Cross-checks of the Section II analytic model against the paper's
//! stated per-scheme structure, through the public API.

use wmn_mac::OverheadModel;
use wmn_phy::PhyParams;
use wmn_sim::SimDuration;

fn model() -> OverheadModel {
    OverheadModel::new(PhyParams::paper_216())
}

/// PRR scales exactly linearly in hop count (per-hop cost is constant).
#[test]
fn prr_is_linear_in_hops() {
    let m = model();
    let one = m.prr(1);
    for n in 2..=7u32 {
        assert_eq!(m.prr(n), one * u64::from(n));
    }
}

/// preExOR's ACK overhead is quadratic: the *increment* between successive
/// hop counts grows, unlike PRR's constant increment.
#[test]
fn pre_exor_ack_cost_is_superlinear() {
    let m = model();
    let inc2 = m.pre_exor(3) - m.pre_exor(2);
    let inc6 = m.pre_exor(7) - m.pre_exor(6);
    assert!(inc6 > inc2, "later hops must cost more ({inc6:?} vs {inc2:?})");
}

/// MCExOR sits strictly between PRR and preExOR for every multi-hop length.
#[test]
fn mc_exor_between_prr_and_pre_exor() {
    let m = model();
    for n in 2..=7u32 {
        assert!(m.mc_exor(n) < m.pre_exor(n), "n={n}");
        assert!(m.mc_exor(n) > m.prr(n), "n={n}");
    }
}

/// RIPPLE's single-contention design means its per-hop marginal cost is
/// smaller than PRR's: the gap widens with path length.
#[test]
fn ripple_gap_over_prr_widens_with_hops() {
    let m = model();
    let gap = |n: u32| m.prr(n).saturating_sub(m.ripple(n, 1));
    assert!(gap(7) > gap(2), "{:?} vs {:?}", gap(7), gap(2));
}

/// Amortisation is monotone in the aggregation factor for both aggregated
/// schemes.
#[test]
fn per_packet_cost_monotone_in_aggregation() {
    let m = model();
    for n in [1u32, 3, 7] {
        let mut last_ripple = SimDuration::MAX;
        let mut last_afr = SimDuration::MAX;
        for k in [1u32, 2, 4, 8, 16] {
            let r = m.ripple(n, k);
            let a = m.afr(n, k);
            assert!(r < last_ripple, "ripple n={n} k={k}");
            assert!(a < last_afr, "afr n={n} k={k}");
            last_ripple = r;
            last_afr = a;
        }
    }
}

/// At the low 6 Mbps rate the relative benefit of aggregation shrinks (the
/// payload dominates the fixed overhead), which is the regime distinction
/// behind the paper's rate choices.
#[test]
fn aggregation_benefit_shrinks_at_low_rate() {
    let hi = OverheadModel::new(PhyParams::paper_216());
    let lo = OverheadModel::new(PhyParams::paper_6());
    let ratio = |m: &OverheadModel| m.afr(3, 1).as_micros_f64() / m.afr(3, 16).as_micros_f64();
    assert!(
        ratio(&hi) > ratio(&lo),
        "216 Mbps should benefit more from aggregation: {} vs {}",
        ratio(&hi),
        ratio(&lo)
    );
}

/// The t_data helper accounts for the forwarder list bytes.
#[test]
fn forwarder_list_increases_data_airtime() {
    let m = model();
    assert!(m.t_data(1, 6) > m.t_data(1, 0));
    assert_eq!(
        m.t_data(1, 0),
        PhyParams::paper_216().airtime(PhyParams::paper_216().data_rate, 28 + 12 + 1000)
    );
}
