//! Integration tests of the aggregation rules through `wmn-mac`'s public
//! API: the airtime byte budget, and multi-flow frames with unambiguous
//! (flow, seq) bitmap acknowledgements.

use wmn_mac::frame::{AckFrame, Frame, LinkDst, NetHeader, Packet, Proto, RouteInfo};
use wmn_mac::{DcfConfig, DcfMac, MacAction, MacEntityExt};
use wmn_phy::{PhyParams, Rate};
use wmn_sim::{FlowId, NodeId, SimTime, StreamRng};

fn packet(flow: u32, bytes: u32) -> Packet {
    Packet::new(
        NetHeader {
            flow: FlowId::new(flow),
            src: NodeId::new(0),
            dst: NodeId::new(1),
            proto: Proto::Tcp,
            wire_bytes: bytes,
        },
        vec![],
    )
}

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

fn find_data(actions: &[MacAction]) -> Option<&wmn_mac::DataFrame> {
    actions.iter().find_map(|a| match a {
        MacAction::StartTx { frame: Frame::Data(d), .. } => Some(d),
        _ => None,
    })
}

fn drain_first_frame(mac: &mut DcfMac, n_queued: usize) -> wmn_mac::DataFrame {
    // Queue packets while busy, then release the channel and fire the
    // backoff to obtain one aggregated frame.
    mac.on_busy_vec(t(0));
    for i in 0..n_queued {
        mac.on_enqueue_vec(
            packet(i as u32 % 2, 1000),
            RouteInfo::NextHop(NodeId::new(1)),
            t(1 + i as u64),
        );
    }
    let actions = mac.on_idle_vec(t(1000));
    let (delay, token) = actions
        .iter()
        .find_map(|a| match a {
            MacAction::SetTimer { delay, token } => Some((*delay, *token)),
            _ => None,
        })
        .expect("backoff armed");
    let actions = mac.on_timer_vec(token, t(1000) + delay);
    find_data(&actions).expect("frame transmitted").clone()
}

/// At 6 Mbps the 6 ms airtime budget limits a frame to ~4500 payload
/// bytes: four 1000-byte packets, not sixteen.
#[test]
fn six_mbps_frames_respect_the_airtime_budget() {
    let mut params = PhyParams::paper_6();
    params.data_rate = Rate::mbps(6.0);
    let cfg = DcfConfig::from_phy(&params, 16);
    assert_eq!(cfg.max_frame_payload_bytes, 4500);
    let mut mac = DcfMac::new(cfg, NodeId::new(0), StreamRng::derive(1, "agg"));
    let frame = drain_first_frame(&mut mac, 16);
    assert_eq!(frame.subframes.len(), 4, "6 ms at 6 Mbps fits 4 x 1000 B");
}

/// At 216 Mbps the budget is far above 16 kB, so the packet-count limit
/// binds instead.
#[test]
fn high_rate_frames_aggregate_sixteen() {
    let cfg = DcfConfig::from_phy(&PhyParams::paper_216(), 16);
    assert!(cfg.max_frame_payload_bytes > 16 * 1000);
    let mut mac = DcfMac::new(cfg, NodeId::new(0), StreamRng::derive(1, "agg"));
    let frame = drain_first_frame(&mut mac, 20);
    assert_eq!(frame.subframes.len(), 16);
}

/// Frames may mix packets of two flows sharing the route; the bitmap ACK
/// identifies subframes by (flow, seq), so acknowledging flow 0's seq 0
/// must not release flow 1's seq 0.
#[test]
fn mixed_flow_ack_is_unambiguous() {
    let cfg = DcfConfig::from_phy(&PhyParams::paper_216(), 16);
    let mut mac = DcfMac::new(cfg, NodeId::new(0), StreamRng::derive(2, "mixed"));
    let frame = drain_first_frame(&mut mac, 4); // flows 0,1,0,1 -> seqs 0,0,1,1
    assert_eq!(frame.subframes.len(), 4);
    let flows: Vec<u32> =
        frame.subframes.iter().map(|s| s.packet.header.flow.index() as u32).collect();
    assert_eq!(flows, vec![0, 1, 0, 1], "two flows interleaved in one frame");
    // Both flows restart their seq space at 0: same numeric seqs.
    assert_eq!(frame.subframes[0].seq, frame.subframes[1].seq);

    mac.on_tx_end_vec(t(2000));
    // Acknowledge ONLY flow 0's two subframes.
    let ack = AckFrame {
        transmitter: NodeId::new(1),
        to: NodeId::new(0),
        flow: frame.flow,
        frame_seq: frame.frame_seq,
        acked_seqs: frame
            .subframes
            .iter()
            .filter(|s| s.packet.header.flow == FlowId::new(0))
            .map(|s| (s.packet.header.flow, s.seq))
            .collect(),
        relay_list: Default::default(),
    };
    let actions = mac.on_frame_rx_vec(Frame::Ack(ack).into(), t(2100));
    // The retransmission must contain exactly flow 1's subframes.
    let (delay, token) = actions
        .iter()
        .find_map(|a| match a {
            MacAction::SetTimer { delay, token } => Some((*delay, *token)),
            _ => None,
        })
        .expect("post-ack backoff");
    let actions = mac.on_timer_vec(token, t(2100) + delay);
    let retx = find_data(&actions).expect("partial retransmission");
    assert_eq!(retx.subframes.len(), 2);
    assert!(
        retx.subframes.iter().all(|s| s.packet.header.flow == FlowId::new(1)),
        "only flow 1's unacknowledged subframes may be retransmitted"
    );
}

/// A frame whose link destination differs is never aggregated with the
/// head packet, whatever its flow.
#[test]
fn different_next_hops_never_share_a_frame() {
    let cfg = DcfConfig::from_phy(&PhyParams::paper_216(), 16);
    let mut mac = DcfMac::new(cfg, NodeId::new(0), StreamRng::derive(3, "hops"));
    mac.on_busy_vec(t(0));
    mac.on_enqueue_vec(packet(0, 1000), RouteInfo::NextHop(NodeId::new(1)), t(1));
    mac.on_enqueue_vec(packet(0, 1000), RouteInfo::NextHop(NodeId::new(2)), t(2));
    mac.on_enqueue_vec(packet(0, 1000), RouteInfo::NextHop(NodeId::new(1)), t(3));
    let actions = mac.on_idle_vec(t(100));
    let (delay, token) = actions
        .iter()
        .find_map(|a| match a {
            MacAction::SetTimer { delay, token } => Some((*delay, *token)),
            _ => None,
        })
        .unwrap();
    let actions = mac.on_timer_vec(token, t(100) + delay);
    let frame = find_data(&actions).unwrap();
    assert_eq!(frame.subframes.len(), 2, "only the node-1 packets aggregate");
    assert_eq!(frame.link_dst, LinkDst::Unicast(NodeId::new(1)));
}
