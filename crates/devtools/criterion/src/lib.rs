//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the subset of Criterion's API its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is honest but simple: each benchmark runs a warm-up pass and
//! `sample_size` timed samples, then reports the median, minimum and maximum
//! per-iteration wall-clock time. There are no statistical comparisons with
//! previous runs, no plots and no outlier analysis. When `cargo test`
//! executes a bench target (it does, to check it works), every benchmark
//! runs exactly one iteration so the suite stays fast.

use std::time::{Duration, Instant};

/// Drives the closure under measurement, see [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one duration sample per batch of
    /// iterations. The routine's output is passed through
    /// [`std::hint::black_box`] so its computation is not optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run.
        std::hint::black_box(routine());
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, results: Vec::new() };
    f(&mut bencher);
    let mut sorted = bencher.results.clone();
    sorted.sort_unstable();
    if sorted.is_empty() {
        println!("bench {name}: no samples recorded");
        return;
    }
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "bench {name}: median {} (min {}, max {}, {} samples)",
        format_duration(median),
        format_duration(min),
        format_duration(max),
        sorted.len()
    );
}

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the bench targets are run once as a smoke
        // check; a single sample keeps that fast. `cargo bench` passes
        // `--bench`, which selects real sampling.
        let testing = std::env::args().any(|a| a == "--test");
        let benching = std::env::args().any(|a| a == "--bench");
        Criterion { sample_size: if testing || !benching { 1 } else { 20 } }
    }
}

impl Criterion {
    /// Mirrors Criterion's CLI handling; the shim has nothing to configure.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Measures a single named closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Keep the one-iteration fast path when running under `cargo test`;
        // in real bench mode the caller's request wins, raising or lowering.
        if self.sample_size > 1 {
            self.sample_size = n;
        }
        self
    }

    /// Measures a closure under `group_name/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (nothing to flush in the shim).
    pub fn finish(self) {}
}

/// Bundles bench functions into a named group runner, as in Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates the `main` for a bench target from its groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
