//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of proptest's API its tests actually use:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), [`prop_assert!`]
//! / [`prop_assert_eq!`], range and [`any`] strategies, [`collection::vec`]
//! and [`sample::subsequence`].
//!
//! Differences from the real crate, deliberately accepted for tests:
//!
//! * inputs are sampled from a **deterministic** per-test stream (derived
//!   from the test's module path and case index), so runs are reproducible
//!   and failures are replayable by case number;
//! * there is **no shrinking** — a failing case reports its inputs' case
//!   index instead of a minimal counterexample;
//! * strategies are plain samplers (`Strategy::sample`), not lazy value
//!   trees.

use std::marker::PhantomData;
use std::ops::Range;

/// Error carried by `prop_assert!` failures out of a test-case closure.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failed-case error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-case configuration, selected with `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; that is cheap for the unit-level
        // properties in this workspace and keeps coverage meaningful.
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 stream seeded from `(test name, case index)`.
#[derive(Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the stream for one case of one property test.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a-style fold over the test name (odd multiplier, not the
        // exact FNV-64 prime — do not "correct" it: derived streams and
        // seed-dependent expectations would all change), mixed with the
        // case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            // Modulo bias is irrelevant at test-input quality.
            self.next_u64() % n
        }
    }
}

/// A sampler of test inputs. The real crate's lazy value trees and shrinkers
/// collapse to a single `sample` here.
pub trait Strategy {
    /// The type of values produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy, see [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);

/// Strategy producing unconstrained values of `T`, see [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}

/// Per-type `ANY` strategy constants (`proptest::num::u64::ANY`).
pub mod num {
    /// Strategies over `u64`.
    pub mod u64 {
        /// Any `u64`.
        pub const ANY: crate::Any<::core::primitive::u64> =
            crate::Any { _marker: ::core::marker::PhantomData };
    }
}

/// An inclusive-exclusive length range for collection strategies, built
/// from `a..b` or `a..=b`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    end_exclusive: usize,
}

impl SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end_exclusive, "empty size range");
        Strategy::sample(&(self.start..self.end_exclusive), rng)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { start: r.start, end_exclusive: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { start: *r.start(), end_exclusive: *r.end() + 1 }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for vectors with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample::subsequence`).
pub mod sample {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing order-preserving subsequences of a base vector.
    pub struct Subsequence<T> {
        values: Vec<T>,
        size: Range<usize>,
    }

    /// Order-preserving subsequences of `values` with a length in `size`
    /// (clamped to the available element count).
    pub fn subsequence<T: Clone>(values: Vec<T>, size: Range<usize>) -> Subsequence<T> {
        Subsequence { values, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let lo = self.size.start.min(self.values.len());
            let hi = self.size.end.min(self.values.len() + 1);
            let len = if lo + 1 >= hi { lo } else { Strategy::sample(&(lo..hi), rng) };
            // Partial Fisher–Yates over the index space, then restore order.
            let mut indices: Vec<usize> = (0..self.values.len()).collect();
            for i in 0..len {
                let j = i + rng.below((indices.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            let mut chosen = indices[..len].to_vec();
            chosen.sort_unstable();
            chosen.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

/// Items `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with the case index in the panic message) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// `prop_assert!(a != b)` with `{:?}` diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// expands to a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(test_name, case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {case}/{} of `{}` failed: {err}\n\
                             (offline proptest shim: deterministic cases, no shrinking)",
                            config.cases, test_name
                        );
                    }
                }
            }
        )*
    };
}
