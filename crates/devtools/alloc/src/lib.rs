//! A counting global allocator for the bench suite.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps four process-wide
//! counters behind relaxed atomics: allocation calls, cumulative bytes
//! requested, bytes currently live, and the high-water mark of live bytes.
//! The accounting itself never allocates, so installing it cannot perturb
//! what it measures beyond a few atomic adds per call.
//!
//! Counting is compiled in only with the `count` feature (the bench suite
//! enables it; everyone else gets a zero-overhead passthrough), so linking
//! the crate costs nothing unless a binary explicitly opts into profiling.
//!
//! # Usage
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: wmn_alloc::CountingAlloc = wmn_alloc::CountingAlloc;
//!
//! let (result, stats) = wmn_alloc::measure(|| run_workload());
//! println!("{} allocations, peak {} bytes", stats.allocs, stats.peak_bytes_in_use);
//! ```
//!
//! The counters are process-wide: [`measure`] reports deltas, so it is only
//! meaningful when nothing else allocates concurrently (the bench suite is
//! single-threaded while measuring; the sharded-engine benches skip
//! per-region accounting for exactly this reason).

use std::alloc::{GlobalAlloc, Layout, System};
#[cfg(feature = "count")]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "count")]
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "count")]
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "count")]
static BYTES_IN_USE: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "count")]
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

#[cfg(feature = "count")]
static PHASE_ALLOCS: [AtomicU64; Phase::COUNT] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
#[cfg(feature = "count")]
static PHASE_BYTES: [AtomicU64; Phase::COUNT] =
    [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

#[cfg(feature = "count")]
thread_local! {
    /// The phase allocations on this thread are attributed to. Const-initialised
    /// `Cell<u8>` so reading it from inside the allocator never allocates
    /// (no lazy TLS init, no destructor registration).
    static CURRENT_PHASE: std::cell::Cell<u8> = const { std::cell::Cell::new(0) };
}

/// A [`System`]-backed allocator that counts calls and bytes when the
/// `count` feature is on, and forwards untouched otherwise.
pub struct CountingAlloc;

#[cfg(feature = "count")]
fn on_alloc(bytes: usize) {
    let bytes = bytes as u64;
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    BYTES_ALLOCATED.fetch_add(bytes, Ordering::Relaxed);
    let live = BYTES_IN_USE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    let phase = CURRENT_PHASE.with(|p| p.get()) as usize;
    PHASE_ALLOCS[phase].fetch_add(1, Ordering::Relaxed);
    PHASE_BYTES[phase].fetch_add(bytes, Ordering::Relaxed);
}

#[cfg(feature = "count")]
fn on_dealloc(bytes: usize) {
    BYTES_IN_USE.fetch_sub(bytes as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        #[cfg(feature = "count")]
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        #[cfg(feature = "count")]
        on_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        #[cfg(feature = "count")]
        on_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink counts as one allocation event for the new size;
        // the old block's bytes retire. This matches how a `Vec` growth
        // would look if it were a fresh alloc + copy + free, so
        // `allocs_per_frame` cannot be gamed by reallocating in place.
        #[cfg(feature = "count")]
        {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// A snapshot of allocator activity over one [`measure`] region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocation calls (including the alloc half of every realloc).
    pub allocs: u64,
    /// Total bytes requested across those calls.
    pub bytes_allocated: u64,
    /// High-water mark of live bytes during the region, measured from the
    /// region's own starting point (bytes already live at entry included).
    pub peak_bytes_in_use: u64,
}

/// Whether allocation counting is compiled in. `false` means every
/// [`AllocStats`] this process reports is all zeros.
pub const fn counting_enabled() -> bool {
    cfg!(feature = "count")
}

/// An attribution bucket for the scoped phase counters.
///
/// Hot-loop code marks its regions with [`phase_scope`]; every allocation
/// made on that thread while the guard lives is charged to the bucket, so
/// the bench suite can itemise *where* residual steady-state allocations
/// come from instead of reporting one opaque total. Anything outside a
/// scope lands in [`Phase::Unattributed`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Allocations made outside any phase scope (setup, result collection).
    Unattributed = 0,
    /// Frame assembly, MAC action dispatch, and broadcast — the transmit path.
    TxPath = 1,
    /// Interface-queue and transport enqueue traffic.
    Queue = 2,
    /// Event-loop bookkeeping: the future-event list and event payloads.
    EventLoop = 3,
}

impl Phase {
    /// Number of attribution buckets (array size for the counters).
    pub const COUNT: usize = 4;

    /// Every bucket, in counter order.
    pub const ALL: [Phase; Phase::COUNT] =
        [Phase::Unattributed, Phase::TxPath, Phase::Queue, Phase::EventLoop];

    /// Stable snake_case key for reports and JSON artefacts.
    pub const fn label(self) -> &'static str {
        match self {
            Phase::Unattributed => "unattributed",
            Phase::TxPath => "tx_path",
            Phase::Queue => "queue",
            Phase::EventLoop => "event_loop",
        }
    }
}

/// Cumulative per-phase allocator activity on this process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Allocation calls charged to the phase.
    pub allocs: u64,
    /// Bytes requested by those calls.
    pub bytes_allocated: u64,
}

/// Attributes this thread's allocations to `phase` until the returned
/// guard drops. Scopes nest; the innermost wins, and dropping restores the
/// enclosing phase. Compiled to a no-op without the `count` feature, so
/// production binaries pay nothing for the markers.
pub fn phase_scope(phase: Phase) -> PhaseGuard {
    #[cfg(feature = "count")]
    {
        let prev = CURRENT_PHASE.with(|p| p.replace(phase as u8));
        PhaseGuard { prev }
    }
    #[cfg(not(feature = "count"))]
    {
        let _ = phase;
        PhaseGuard {}
    }
}

/// RAII guard of one [`phase_scope`]; restores the previous phase on drop.
#[must_use = "the phase lasts only while the guard lives"]
pub struct PhaseGuard {
    #[cfg(feature = "count")]
    prev: u8,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        #[cfg(feature = "count")]
        CURRENT_PHASE.with(|p| p.set(self.prev));
    }
}

/// Cumulative per-phase totals since process start, indexed like
/// [`Phase::ALL`]. Callers wanting a region's attribution snapshot this
/// before and after and subtract.
pub fn phase_totals() -> [PhaseStats; Phase::COUNT] {
    #[allow(unused_mut)]
    let mut out = [PhaseStats::default(); Phase::COUNT];
    #[cfg(feature = "count")]
    for (i, slot) in out.iter_mut().enumerate() {
        slot.allocs = PHASE_ALLOCS[i].load(Ordering::Relaxed);
        slot.bytes_allocated = PHASE_BYTES[i].load(Ordering::Relaxed);
    }
    out
}

/// Runs `f` and reports the allocator activity it caused. Deltas are exact
/// only while nothing else allocates concurrently — measure single-threaded
/// regions.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocStats) {
    #[cfg(feature = "count")]
    {
        let calls_before = ALLOC_CALLS.load(Ordering::Relaxed);
        let bytes_before = BYTES_ALLOCATED.load(Ordering::Relaxed);
        // Rebase the high-water mark to the region entry so the reported
        // peak is this region's own, not some earlier workload's.
        PEAK_BYTES.store(BYTES_IN_USE.load(Ordering::Relaxed), Ordering::Relaxed);
        let value = f();
        let stats = AllocStats {
            allocs: ALLOC_CALLS.load(Ordering::Relaxed) - calls_before,
            bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed) - bytes_before,
            peak_bytes_in_use: PEAK_BYTES.load(Ordering::Relaxed),
        };
        (value, stats)
    }
    #[cfg(not(feature = "count"))]
    {
        (f(), AllocStats::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary installs the counting allocator for itself; these
    // tests are meaningless (all-zero stats) without the feature.
    #[cfg(feature = "count")]
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn measure_counts_a_boxed_alloc() {
        let (_, stats) = measure(|| std::hint::black_box(vec![0u8; 4096]));
        if counting_enabled() {
            assert!(stats.allocs >= 1, "a 4 KiB Vec must register");
            assert!(stats.bytes_allocated >= 4096);
            assert!(stats.peak_bytes_in_use >= 4096);
        } else {
            assert_eq!(stats, AllocStats::default());
        }
    }

    #[test]
    fn phase_scopes_attribute_and_nest() {
        let before = phase_totals();
        {
            let _queue = phase_scope(Phase::Queue);
            std::hint::black_box(vec![0u8; 1024]);
            {
                let _tx = phase_scope(Phase::TxPath);
                std::hint::black_box(vec![0u8; 2048]);
            }
            // Back in the queue scope after the inner guard dropped.
            std::hint::black_box(vec![0u8; 512]);
        }
        let after = phase_totals();
        let delta = |p: Phase| {
            (
                after[p as usize].allocs - before[p as usize].allocs,
                after[p as usize].bytes_allocated - before[p as usize].bytes_allocated,
            )
        };
        if counting_enabled() {
            let (q_allocs, q_bytes) = delta(Phase::Queue);
            let (tx_allocs, tx_bytes) = delta(Phase::TxPath);
            assert!(q_allocs >= 2, "both queue-scoped Vecs must be charged to Queue");
            assert!(q_bytes >= 1024 + 512);
            assert!(tx_allocs >= 1, "the nested Vec must be charged to TxPath");
            assert!(tx_bytes >= 2048);
        } else {
            assert_eq!(after, before, "phase counters stay zero without `count`");
        }
    }

    #[test]
    fn phase_labels_are_stable_report_keys() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["unattributed", "tx_path", "queue", "event_loop"]);
    }

    #[test]
    fn measure_of_pure_arithmetic_is_allocation_free() {
        let (sum, stats) = measure(|| (0u64..100).map(std::hint::black_box).sum::<u64>());
        assert_eq!(sum, 4950);
        assert_eq!(stats.allocs, 0, "no heap traffic from register arithmetic");
        assert_eq!(stats.bytes_allocated, 0);
    }
}
