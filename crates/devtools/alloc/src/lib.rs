//! A counting global allocator for the bench suite.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps four process-wide
//! counters behind relaxed atomics: allocation calls, cumulative bytes
//! requested, bytes currently live, and the high-water mark of live bytes.
//! The accounting itself never allocates, so installing it cannot perturb
//! what it measures beyond a few atomic adds per call.
//!
//! Counting is compiled in only with the `count` feature (the bench suite
//! enables it; everyone else gets a zero-overhead passthrough), so linking
//! the crate costs nothing unless a binary explicitly opts into profiling.
//!
//! # Usage
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: wmn_alloc::CountingAlloc = wmn_alloc::CountingAlloc;
//!
//! let (result, stats) = wmn_alloc::measure(|| run_workload());
//! println!("{} allocations, peak {} bytes", stats.allocs, stats.peak_bytes_in_use);
//! ```
//!
//! The counters are process-wide: [`measure`] reports deltas, so it is only
//! meaningful when nothing else allocates concurrently (the bench suite is
//! single-threaded while measuring; the sharded-engine benches skip
//! per-region accounting for exactly this reason).

use std::alloc::{GlobalAlloc, Layout, System};
#[cfg(feature = "count")]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "count")]
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "count")]
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "count")]
static BYTES_IN_USE: AtomicU64 = AtomicU64::new(0);
#[cfg(feature = "count")]
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts calls and bytes when the
/// `count` feature is on, and forwards untouched otherwise.
pub struct CountingAlloc;

#[cfg(feature = "count")]
fn on_alloc(bytes: usize) {
    let bytes = bytes as u64;
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    BYTES_ALLOCATED.fetch_add(bytes, Ordering::Relaxed);
    let live = BYTES_IN_USE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[cfg(feature = "count")]
fn on_dealloc(bytes: usize) {
    BYTES_IN_USE.fetch_sub(bytes as u64, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        #[cfg(feature = "count")]
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        #[cfg(feature = "count")]
        on_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        #[cfg(feature = "count")]
        on_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink counts as one allocation event for the new size;
        // the old block's bytes retire. This matches how a `Vec` growth
        // would look if it were a fresh alloc + copy + free, so
        // `allocs_per_frame` cannot be gamed by reallocating in place.
        #[cfg(feature = "count")]
        {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// A snapshot of allocator activity over one [`measure`] region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocation calls (including the alloc half of every realloc).
    pub allocs: u64,
    /// Total bytes requested across those calls.
    pub bytes_allocated: u64,
    /// High-water mark of live bytes during the region, measured from the
    /// region's own starting point (bytes already live at entry included).
    pub peak_bytes_in_use: u64,
}

/// Whether allocation counting is compiled in. `false` means every
/// [`AllocStats`] this process reports is all zeros.
pub const fn counting_enabled() -> bool {
    cfg!(feature = "count")
}

/// Runs `f` and reports the allocator activity it caused. Deltas are exact
/// only while nothing else allocates concurrently — measure single-threaded
/// regions.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocStats) {
    #[cfg(feature = "count")]
    {
        let calls_before = ALLOC_CALLS.load(Ordering::Relaxed);
        let bytes_before = BYTES_ALLOCATED.load(Ordering::Relaxed);
        // Rebase the high-water mark to the region entry so the reported
        // peak is this region's own, not some earlier workload's.
        PEAK_BYTES.store(BYTES_IN_USE.load(Ordering::Relaxed), Ordering::Relaxed);
        let value = f();
        let stats = AllocStats {
            allocs: ALLOC_CALLS.load(Ordering::Relaxed) - calls_before,
            bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed) - bytes_before,
            peak_bytes_in_use: PEAK_BYTES.load(Ordering::Relaxed),
        };
        (value, stats)
    }
    #[cfg(not(feature = "count"))]
    {
        (f(), AllocStats::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary installs the counting allocator for itself; these
    // tests are meaningless (all-zero stats) without the feature.
    #[cfg(feature = "count")]
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn measure_counts_a_boxed_alloc() {
        let (_, stats) = measure(|| std::hint::black_box(vec![0u8; 4096]));
        if counting_enabled() {
            assert!(stats.allocs >= 1, "a 4 KiB Vec must register");
            assert!(stats.bytes_allocated >= 4096);
            assert!(stats.peak_bytes_in_use >= 4096);
        } else {
            assert_eq!(stats, AllocStats::default());
        }
    }

    #[test]
    fn measure_of_pure_arithmetic_is_allocation_free() {
        let (sum, stats) = measure(|| (0u64..100).map(std::hint::black_box).sum::<u64>());
        assert_eq!(sum, 4950);
        assert_eq!(stats.allocs, 0, "no heap traffic from register arithmetic");
        assert_eq!(stats.bytes_allocated, 0);
    }
}
