//! mTXOP timing rules (Section III-A of the paper).
//!
//! All waits are measured in *continuous idle channel time*: detecting any
//! transmission restarts nothing — it aborts the pending relay, because a
//! broken idle window means either a higher-priority station already acted
//! or the mTXOP collided with other traffic (Section III-B remark 3).

use wmn_phy::PhyParams;
use wmn_sim::SimDuration;

use wmn_mac::frame::{ACK_BITMAP_BYTES, ACK_BYTES, FORWARDER_ENTRY_BYTES};

/// Computes RIPPLE's relay waits and the source's end-to-end mTXOP timeout.
///
/// # Example
///
/// ```
/// use ripple::MtxopTiming;
/// use wmn_phy::PhyParams;
/// use wmn_sim::SimDuration;
///
/// let t = MtxopTiming::new(PhyParams::paper_216());
/// // Destination ACKs after SIFS; forwarder rank 1 relays data after
/// // SIFS + 1 slot; rank 2 after SIFS + 2 slots.
/// assert_eq!(t.data_relay_wait(1), SimDuration::from_micros(16 + 9));
/// assert_eq!(t.data_relay_wait(2), SimDuration::from_micros(16 + 18));
/// // ACK relays defer one slot less than data relays of the same rank.
/// assert_eq!(t.ack_relay_wait(1), SimDuration::from_micros(16));
/// ```
#[derive(Clone, Debug)]
pub struct MtxopTiming {
    params: PhyParams,
}

impl MtxopTiming {
    /// Builds the timing rules from the scenario's PHY parameters.
    pub fn new(params: PhyParams) -> Self {
        MtxopTiming { params }
    }

    /// The PHY parameters these rules are derived from.
    pub fn params(&self) -> &PhyParams {
        &self.params
    }

    /// Idle time a forwarder of priority rank `i ≥ 1` must observe before
    /// relaying a **data** frame: `i·T_slot + T_SIFS`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero (the destination acknowledges, it does not
    /// relay data).
    pub fn data_relay_wait(&self, rank: usize) -> SimDuration {
        assert!(rank >= 1, "data relays are performed by forwarders (rank >= 1)");
        self.params.slot * rank as u64 + self.params.sifs
    }

    /// Idle time a forwarder of priority rank `i ≥ 1` must observe before
    /// relaying a **MAC ACK**: `(i−1)·T_slot + T_SIFS` (one slot less than a
    /// data relay, since ACKs are themselves unacknowledged).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero.
    pub fn ack_relay_wait(&self, rank: usize) -> SimDuration {
        assert!(rank >= 1, "ACK relays are performed by forwarders (rank >= 1)");
        self.params.slot * (rank as u64 - 1) + self.params.sifs
    }

    /// The destination's acknowledgement delay: one SIFS.
    pub fn destination_ack_wait(&self) -> SimDuration {
        self.params.sifs
    }

    /// Airtime of a RIPPLE bitmap ACK carrying a relay list of `list_len`
    /// entries, at the basic rate.
    pub fn ack_airtime(&self, list_len: usize) -> SimDuration {
        let bytes = ACK_BYTES + ACK_BITMAP_BYTES + FORWARDER_ENTRY_BYTES * list_len as u32;
        self.params.airtime(self.params.basic_rate, bytes)
    }

    /// Worst-case duration of the remainder of an mTXOP measured from the
    /// end of the source's own data transmission, for a priority list of
    /// `list_len` entries (destination + forwarders) and a data frame of
    /// `frame_wire_bytes`. This is the source's ACK timeout.
    ///
    /// The bound assumes every forwarder relays both the data frame and the
    /// ACK at its maximum deferral, plus a fixed scheduling margin.
    pub fn mtxop_timeout(&self, list_len: usize, frame_wire_bytes: u32) -> SimDuration {
        let p = &self.params;
        let l = list_len.max(1) as u64;
        let data_air = p.airtime(p.data_rate, frame_wire_bytes);
        let max_wait = p.slot * l + p.sifs;
        // Up to l−1 further data transmissions (each preceded by a wait),
        // then l ACK transmissions travelling back (each preceded by a wait).
        let data_phase = (data_air + max_wait) * (l - 1);
        let ack_phase = (self.ack_airtime(list_len) + max_wait) * l;
        data_phase + ack_phase + SimDuration::from_micros(50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> MtxopTiming {
        MtxopTiming::new(PhyParams::paper_216())
    }

    /// The paper's worked example: station 1 (rank 2) waits SIFS + 2 slots,
    /// station 2 (rank 1) waits SIFS + 1 slot before relaying P1.
    #[test]
    fn fig2_data_relay_waits() {
        let t = timing();
        assert_eq!(t.data_relay_wait(2), SimDuration::from_micros(16 + 2 * 9));
        assert_eq!(t.data_relay_wait(1), SimDuration::from_micros(16 + 9));
    }

    /// "a forwarder defers one less slot in relaying a MAC ACK than relaying
    /// a data frame".
    #[test]
    fn ack_relay_is_one_slot_less() {
        let t = timing();
        for rank in 1..=5 {
            assert_eq!(
                t.data_relay_wait(rank) - t.ack_relay_wait(rank),
                SimDuration::from_micros(9)
            );
        }
    }

    #[test]
    fn destination_acks_after_sifs() {
        assert_eq!(timing().destination_ack_wait(), SimDuration::from_micros(16));
    }

    /// Relay waits are strictly ordered by rank, which is what makes the
    /// prioritised acknowledging collision-free among list members in range
    /// of each other.
    #[test]
    fn waits_strictly_ordered_by_rank() {
        let t = timing();
        for rank in 1..6 {
            assert!(t.data_relay_wait(rank + 1) > t.data_relay_wait(rank));
            assert!(t.ack_relay_wait(rank + 1) > t.ack_relay_wait(rank));
        }
        // The destination always wins against any forwarder.
        assert!(t.destination_ack_wait() < t.data_relay_wait(1));
    }

    #[test]
    fn timeout_grows_with_path_length_and_frame_size() {
        let t = timing();
        assert!(t.mtxop_timeout(4, 1040) > t.mtxop_timeout(2, 1040));
        assert!(t.mtxop_timeout(3, 16 * 1012) > t.mtxop_timeout(3, 1040));
        // A single-entry list (destination in range) is still positive and
        // covers the ACK.
        let single = t.mtxop_timeout(1, 1040);
        assert!(single > t.ack_airtime(1));
    }

    #[test]
    #[should_panic(expected = "rank >= 1")]
    fn destination_does_not_relay_data() {
        let _ = timing().data_relay_wait(0);
    }
}
