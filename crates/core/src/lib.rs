//! # RIPPLE — opportunistic routing for interactive traffic
//!
//! This crate implements the primary contribution of *"Opportunistic Routing
//! for Interactive Traffic in Wireless Networks"* (Li, Leith, Qiu — ICDCS
//! 2010): the **RIPPLE** MAC/forwarding scheme, built from two mechanisms:
//!
//! 1. **Expedited multi-hop transmission opportunities (mTXOP)** — the
//!    source contends for the channel once; a forwarder of priority rank `i`
//!    relays an overheard data frame after sensing the channel idle for
//!    `i·T_slot + T_SIFS`, the destination acknowledges after `T_SIFS`, and
//!    forwarders relay the MAC ACK back after `(i−1)·T_slot + T_SIFS`.
//!    Forwarders never cache: each overheard frame is relayed at most once
//!    and any channel activity during the wait aborts the relay.
//!    Retransmission is purely end-to-end from the source. Together these
//!    rules eliminate protocol-induced re-ordering — the property that makes
//!    RIPPLE suitable for TCP and VoIP where batch-based schemes
//!    (ExOR/MORE) are not.
//! 2. **Two-way packet aggregation** — up to 16 packets per frame, each with
//!    its own CRC, in *both* directions (TCP data and TCP ACKs), with
//!    bitmap MAC ACKs and partial retransmission. Zero waiting time: a
//!    frame carries whatever the send queue holds, so frame sizes adapt to
//!    load automatically (Section III-A remark 5).
//!
//! The implementation is a passive state machine ([`RippleMac`]) driven
//! through the [`wmn_mac::MacEntity`] interface; see `wmn-netsim` for the
//! runner and `wmn-experiments` for the paper's full evaluation.
//!
//! The relay path rebuilds each forwarded frame from `Packet` clones, which
//! is deliberate and cheap: a `wmn_mac::Packet` clone is a small header copy
//! plus an `Arc` refcount bump on the pooled payload body, so a relayed
//! subframe never duplicates its bytes. Cloning a whole *frame*, by
//! contrast, is what the `no-frame-deep-clone` lint rule forbids outside
//! the decode seam.
//!
//! # Example
//!
//! ```
//! use ripple::{RippleConfig, RippleMac};
//! use wmn_phy::PhyParams;
//! use wmn_sim::{NodeId, StreamRng};
//!
//! let cfg = RippleConfig::from_phy(&PhyParams::paper_216(), 16);
//! let mac = RippleMac::new(cfg, NodeId::new(0), StreamRng::derive(1, "ripple/n0"));
//! assert_eq!(mac.node(), NodeId::new(0));
//! ```

pub mod config;
pub mod mac;
pub mod timing;

pub use config::RippleConfig;
pub use mac::{RippleMac, RippleScheme};
pub use timing::MtxopTiming;

/// The paper's aggregation limit: "we select 16 as the maximum number of
/// packets that can be aggregated into a frame" (following 802.11n / AFR).
pub const MAX_AGGREGATION: usize = 16;
