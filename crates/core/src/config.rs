//! RIPPLE configuration.

use wmn_phy::PhyParams;
use wmn_sim::SimDuration;

use crate::timing::MtxopTiming;

/// Configuration of a [`crate::RippleMac`].
#[derive(Clone, Debug)]
pub struct RippleConfig {
    /// Short interframe space.
    pub sifs: SimDuration,
    /// Slot time.
    pub slot: SimDuration,
    /// DIFS.
    pub difs: SimDuration,
    /// Minimum contention window (source contention only; relays use the
    /// mTXOP idle-window rule instead of backoff).
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// End-to-end retry limit: how many mTXOP attempts the source makes per
    /// frame before dropping the unacknowledged packets.
    pub retry_limit: u8,
    /// Packets aggregated per frame: 1 reproduces "RIPPLE without packet
    /// aggregation" (R1), 16 the full scheme (R16).
    pub max_aggregation: usize,
    /// Interface queue capacity.
    pub ifq_capacity: usize,
    /// Receiver-side reorder buffer (`Rq`) capacity.
    pub reorder_capacity: usize,
    /// Byte budget per aggregated frame (6 ms airtime cap at the data
    /// rate, as in 802.11n's bounded A-MPDU duration). Multi-hop TXOPs
    /// relay the frame once per hop, so bounding it matters even more here
    /// than for AFR.
    pub max_frame_payload_bytes: u32,
    /// mTXOP timing rules (relay waits, end-to-end timeout).
    pub timing: MtxopTiming,
}

impl RippleConfig {
    /// Builds the configuration from PHY parameters and an aggregation
    /// limit (1 for R1, [`crate::MAX_AGGREGATION`] for R16).
    ///
    /// # Panics
    ///
    /// Panics if `max_aggregation` is zero.
    pub fn from_phy(params: &PhyParams, max_aggregation: usize) -> Self {
        assert!(max_aggregation > 0, "aggregation limit must be at least 1");
        RippleConfig {
            sifs: params.sifs,
            slot: params.slot,
            difs: params.difs(),
            cw_min: params.cw_min,
            cw_max: params.cw_max,
            retry_limit: params.retry_limit,
            max_aggregation,
            ifq_capacity: params.ifq_capacity,
            reorder_capacity: 64,
            max_frame_payload_bytes: (params.data_rate.as_mbps() * 6_000.0 / 8.0) as u32,
            timing: MtxopTiming::new(params.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_phy_copies_table1() {
        let cfg = RippleConfig::from_phy(&PhyParams::paper_216(), 16);
        assert_eq!(cfg.sifs, SimDuration::from_micros(16));
        assert_eq!(cfg.slot, SimDuration::from_micros(9));
        assert_eq!(cfg.difs, SimDuration::from_micros(34));
        assert_eq!(cfg.max_aggregation, 16);
        assert_eq!(cfg.ifq_capacity, 50);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_aggregation_rejected() {
        let _ = RippleConfig::from_phy(&PhyParams::paper_216(), 0);
    }
}
