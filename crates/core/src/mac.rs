//! The RIPPLE MAC state machine.
//!
//! One `RippleMac` instance runs at every station and plays all three roles
//! of Section III simultaneously, per frame:
//!
//! * **Source** — contends once (DIFS + backoff) per mTXOP, aggregates up to
//!   16 queued packets into a frame addressed to an opportunistic priority
//!   list, arms the end-to-end mTXOP timeout, and retransmits (with CW
//!   doubling) only the subframes the destination's bitmap ACK did not
//!   cover. The send queue `Sq` = the in-flight window plus the interface
//!   queue.
//! * **Forwarder** — holds *no* queue. An overheard data frame from an
//!   upstream station is relayed exactly once after `rank·T_slot + T_SIFS`
//!   of continuous idle; an overheard ACK from a downstream station after
//!   `(rank−1)·T_slot + T_SIFS`. Any channel activity during the wait
//!   aborts the relay (the mTXOP is broken or a higher-priority station
//!   acted first).
//! * **Destination** — replies with a bitmap ACK one SIFS after every
//!   received data frame (acknowledging both freshly decoded subframes and
//!   ones it already holds) and delivers packets strictly in order through
//!   the receive queue `Rq`.

use std::collections::{BTreeMap, BTreeSet};

use wmn_mac::frame::{
    AckFrame, AckList, DataFrame, Frame, LinkDst, NodeList, Packet, RouteInfo, RxFrame, Subframe,
};
use wmn_mac::{
    ActionSink, Backoff, DropReason, FramePool, IfQueue, MacAction, MacEntity, MacStats, RateClass,
    ReorderBuffer, Slot, SlotPool, TimerToken,
};
use wmn_phy::PhyParams;
use wmn_sim::{FlowId, NodeId, SimTime, StreamRng};

use crate::config::RippleConfig;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DataState {
    Idle,
    Transmitting,
    WaitAck,
}

#[derive(Debug)]
struct Inflight {
    /// The (seq, packet) pairs awaiting acknowledgement, in a recycled
    /// slot so starting a new frame never allocates at steady state.
    subframes: Slot<(u32, Packet)>,
    list: NodeList,
    flow: FlowId,
    retries: u8,
    frame_seq: u64,
}

#[derive(Debug)]
enum Role {
    BackoffDone,
    MtxopTimeout,
    SendAck,
    RelayFire { pending: u64 },
}

/// A relay waiting for its continuous idle window. Paused (timer disarmed)
/// whenever the channel turns busy and re-armed with the *full* wait on the
/// next idle edge — the paper's rule is "relay only after detecting the
/// channel idle for T", so a broken window restarts the wait. The relay is
/// abandoned only when a copy from a higher-priority station (or, for data,
/// the destination's ACK) is overheard.
#[derive(Debug)]
struct PendingRelay {
    id: u64,
    /// (flow, anchor node, frame_seq, is_ack); the anchor is the data
    /// frame's end-to-end source (ACKs carry it in `to`).
    key: (FlowId, NodeId, u64, bool),
    frame: Frame,
    wait: wmn_sim::SimDuration,
    token: Option<TimerToken>,
}

/// The RIPPLE MAC for one station. See the module docs for the protocol
/// roles it implements.
pub struct RippleMac {
    cfg: RippleConfig,
    node: NodeId,
    q: IfQueue,
    inflight: Option<Inflight>,
    data_state: DataState,
    ack_tx_in_progress: bool,
    relay_tx_in_progress: bool,
    pending_ack: Option<AckFrame>,
    armed_send_ack: Option<TimerToken>,
    channel_busy: bool,
    idle_since: SimTime,
    backoff: Backoff,
    armed_backoff: Option<TimerToken>,
    countdown_anchor: SimTime,
    armed_timeout: Option<TimerToken>,
    /// Relays waiting for their idle window (armed or paused).
    pending_relays: Vec<PendingRelay>,
    next_pending: u64,
    /// Live timer tokens and what they mean. A handful are outstanding at
    /// any instant, so a linear-scan `Vec` beats a node-allocating map —
    /// and its capacity is retained, keeping timer churn off the allocator.
    timer_roles: Vec<(u64, Role)>,
    next_token: u64,
    /// (flow, origin, frame_seq) data frames this node has already relayed.
    data_relayed: BTreeSet<(FlowId, NodeId, u64)>,
    /// (flow, source, frame_seq) ACK frames this node has already relayed.
    ack_relayed: BTreeSet<(FlowId, NodeId, u64)>,
    /// Bitmap-ACK frame_seqs the source side has already applied.
    handled_acks: BTreeSet<u64>,
    seq_counters: BTreeMap<(FlowId, NodeId), u32>,
    frame_seq_counter: u64,
    rq: BTreeMap<(FlowId, NodeId), ReorderBuffer>,
    /// Recycled buffers for [`Inflight::subframes`].
    inflight_slots: SlotPool<(u32, Packet)>,
    pool: FramePool,
    rng: StreamRng,
    stats: MacStats,
    /// Relays performed (diagnostic; counts both data and ACK relays).
    relays_performed: u64,
}

/// Removes and returns the role of a live token from the linear-scan timer
/// table (`None` = cancelled or superseded). A free function over the field
/// so call sites holding other `self` borrows can still use it.
fn take_role_in(roles: &mut Vec<(u64, Role)>, token: TimerToken) -> Option<Role> {
    let idx = roles.iter().position(|(t, _)| *t == token.0)?;
    Some(roles.swap_remove(idx).1)
}

impl std::fmt::Debug for RippleMac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RippleMac")
            .field("node", &self.node)
            .field("state", &self.data_state)
            .field("queued", &self.q.len())
            .finish()
    }
}

impl RippleMac {
    /// Creates the MAC for `node` with its own backoff RNG stream.
    pub fn new(cfg: RippleConfig, node: NodeId, rng: StreamRng) -> Self {
        let (cw_min, cw_max, ifq) = (cfg.cw_min, cfg.cw_max, cfg.ifq_capacity);
        RippleMac {
            cfg,
            node,
            q: IfQueue::new(ifq),
            inflight: None,
            data_state: DataState::Idle,
            ack_tx_in_progress: false,
            relay_tx_in_progress: false,
            pending_ack: None,
            armed_send_ack: None,
            channel_busy: false,
            idle_since: SimTime::ZERO,
            backoff: Backoff::new(cw_min, cw_max),
            armed_backoff: None,
            countdown_anchor: SimTime::ZERO,
            armed_timeout: None,
            pending_relays: Vec::new(),
            next_pending: 0,
            timer_roles: Vec::new(),
            next_token: 0,
            data_relayed: BTreeSet::new(),
            ack_relayed: BTreeSet::new(),
            handled_acks: BTreeSet::new(),
            seq_counters: BTreeMap::new(),
            frame_seq_counter: 0,
            rq: BTreeMap::new(),
            inflight_slots: SlotPool::new(),
            pool: FramePool::default(),
            rng,
            stats: MacStats::default(),
            relays_performed: 0,
        }
    }

    /// The station this MAC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total data + ACK relays this station has performed as a forwarder.
    pub fn relays_performed(&self) -> u64 {
        self.relays_performed
    }

    fn mint(&mut self, role: Role) -> TimerToken {
        let token = TimerToken(self.next_token);
        self.next_token += 1;
        self.timer_roles.push((token.0, role));
        token
    }

    fn next_seq(&mut self, flow: FlowId, src: NodeId) -> u32 {
        let c = self.seq_counters.entry((flow, src)).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    fn radio_free(&self) -> bool {
        self.data_state != DataState::Transmitting
            && !self.ack_tx_in_progress
            && !self.relay_tx_in_progress
    }

    fn has_work(&self) -> bool {
        self.inflight.is_some() || !self.q.is_empty()
    }

    fn try_progress(&mut self, now: SimTime, out: &mut ActionSink) {
        if self.data_state != DataState::Idle || !self.radio_free() || !self.has_work() {
            return;
        }
        if self.channel_busy {
            return;
        }
        let idle_for = now.saturating_since(self.idle_since);
        if self.backoff.remaining().is_none() && idle_for >= self.cfg.difs {
            self.transmit_data(out);
            return;
        }
        self.arm_backoff(now, out);
    }

    fn arm_backoff(&mut self, now: SimTime, out: &mut ActionSink) {
        if self.armed_backoff.is_some() || self.channel_busy {
            return;
        }
        let remaining = self.backoff.ensure_drawn(&mut self.rng);
        let boundary = self.idle_since + self.cfg.difs;
        let start = if boundary > now { boundary } else { now };
        self.countdown_anchor = start;
        let fire_at = start + self.cfg.slot * u64::from(remaining);
        let token = self.mint(Role::BackoffDone);
        self.armed_backoff = Some(token);
        out.push(MacAction::SetTimer { delay: fire_at.saturating_since(now), token });
    }

    fn disarm_backoff(&mut self, now: SimTime) {
        if let Some(token) = self.armed_backoff.take() {
            take_role_in(&mut self.timer_roles, token);
            let idle = now.saturating_since(self.countdown_anchor);
            self.backoff.consume_idle(idle, self.cfg.slot);
        }
    }

    /// Busy channel: pause every armed relay (the idle window broke).
    fn pause_relays(&mut self) {
        for pr in &mut self.pending_relays {
            if let Some(token) = pr.token.take() {
                take_role_in(&mut self.timer_roles, token);
            }
        }
    }

    /// Idle channel: re-arm every paused relay with its full wait.
    fn resume_relays(&mut self, out: &mut ActionSink) {
        for pr in &mut self.pending_relays {
            if pr.token.is_none() {
                let token = TimerToken(self.next_token);
                self.next_token += 1;
                pr.token = Some(token);
                self.timer_roles.push((token.0, Role::RelayFire { pending: pr.id }));
                out.push(MacAction::SetTimer { delay: pr.wait, token });
            }
        }
    }

    fn schedule_relay(
        &mut self,
        key: (FlowId, NodeId, u64, bool),
        frame: Frame,
        wait: wmn_sim::SimDuration,
        out: &mut ActionSink,
    ) {
        let id = self.next_pending;
        self.next_pending += 1;
        let mut pr = PendingRelay { id, key, frame, wait, token: None };
        if !self.channel_busy {
            let token = self.mint(Role::RelayFire { pending: id });
            pr.token = Some(token);
            out.push(MacAction::SetTimer { delay: wait, token });
        }
        self.pending_relays.push(pr);
        // Bound the backlog: the oldest pending relays are stale mTXOPs.
        while self.pending_relays.len() > 32 {
            let dead = self.pending_relays.remove(0);
            if let Some(token) = dead.token {
                take_role_in(&mut self.timer_roles, token);
            }
        }
    }

    fn drop_pending_relay(&mut self, key: (FlowId, NodeId, u64, bool)) {
        if let Some(idx) = self.pending_relays.iter().position(|pr| pr.key == key) {
            let dead = self.pending_relays.remove(idx);
            if let Some(token) = dead.token {
                take_role_in(&mut self.timer_roles, token);
            }
        }
    }

    /// Source side: build and transmit the next aggregated frame, topping up
    /// a partial retransmission with fresh packets for the same list.
    fn transmit_data(&mut self, out: &mut ActionSink) {
        self.backoff.clear();
        if self.inflight.is_none() {
            let mut batch = self.q.pop_batch_matching_head(
                self.cfg.max_aggregation,
                self.cfg.max_frame_payload_bytes,
            );
            if batch.is_empty() {
                return;
            }
            let RouteInfo::Opportunistic { list } = batch[0].route.clone() else {
                panic!("RIPPLE requires opportunistic priority-list routes");
            };
            let flow = batch[0].packet.header.flow;
            let mut subframes = self.inflight_slots.mint();
            for qp in batch.drain(..) {
                let seq = self.next_seq(qp.packet.header.flow, qp.packet.header.src);
                subframes.push((seq, qp.packet));
            }
            drop(batch);
            self.inflight = Some(Inflight { subframes, list, flow, retries: 0, frame_seq: 0 });
        } else {
            let route = {
                let inflight = self.inflight.as_ref().expect("checked");
                RouteInfo::Opportunistic { list: inflight.list.clone() }
            };
            let space =
                self.cfg.max_aggregation - self.inflight.as_ref().expect("checked").subframes.len();
            if space > 0 {
                let spent: u32 = self
                    .inflight
                    .as_ref()
                    .expect("checked")
                    .subframes
                    .iter()
                    .map(|(_, p)| p.header.wire_bytes)
                    .sum();
                let byte_budget = self.cfg.max_frame_payload_bytes.saturating_sub(spent).max(1);
                let mut extra = self.q.pop_matching(&route, space, byte_budget);
                for qp in extra.drain(..) {
                    let seq = self.next_seq(qp.packet.header.flow, qp.packet.header.src);
                    self.inflight.as_mut().expect("checked").subframes.push((seq, qp.packet));
                }
            }
        }
        self.frame_seq_counter += 1;
        let fs = self.frame_seq_counter;
        // Pooled subframe vector + by-reference packet bodies: building a
        // (re)transmission attempt allocates nothing at steady state.
        let mut subframes = self.pool.mint_subframes();
        let inflight = self.inflight.as_mut().expect("just set");
        inflight.frame_seq = fs;
        for (seq, p) in &inflight.subframes {
            subframes.push(Subframe { seq: *seq, packet: p.clone(), corrupted: false });
        }
        let first = &inflight.subframes[0].1.header;
        let frame = DataFrame {
            transmitter: self.node,
            link_dst: LinkDst::Opportunistic { list: inflight.list.clone() },
            flow: inflight.flow,
            src: first.src,
            dst: first.dst,
            frame_seq: fs,
            subframes,
            retry: inflight.retries,
        };
        self.data_state = DataState::Transmitting;
        self.stats.data_frames_sent += 1;
        out.push(MacAction::StartTx { frame: Frame::Data(frame), rate: RateClass::Data });
    }

    fn handle_data_frame(&mut self, d: &DataFrame, now: SimTime, out: &mut ActionSink) {
        let LinkDst::Opportunistic { list } = &d.link_dst else {
            return; // unicast traffic belongs to other MACs
        };
        let Some(my_rank) = list.iter().position(|&n| n == self.node) else {
            return;
        };
        self.stats.data_frames_received += 1;

        if my_rank == 0 {
            // Destination: acknowledge and deliver in order via the Rq.
            self.destination_receive(d, out);
            return;
        }

        // Forwarder. Only relay frames heard from upstream: the end-to-end
        // source (not on the list) or a lower-priority (higher-rank)
        // forwarder. A copy from downstream means the frame already passed
        // us — and also cancels any relay we still have pending for it.
        let tx_rank = list.iter().position(|&n| n == d.transmitter);
        if let Some(tx_rank) = tx_rank {
            if tx_rank <= my_rank {
                self.drop_pending_relay((d.flow, d.src, d.frame_seq, false));
                return;
            }
        }
        let key = (d.flow, d.src, d.frame_seq);
        if self.data_relayed.contains(&key) {
            return; // at most one relay per overheard frame
        }
        // Build the relay copy out of this MAC's pool; the kept packets
        // share their bodies with the overheard frame by reference.
        let mut clean = self.pool.mint_subframes();
        for s in d.subframes.iter().filter(|s| !s.corrupted) {
            clean.push(Subframe { seq: s.seq, packet: s.packet.clone(), corrupted: false });
        }
        if clean.is_empty() {
            return;
        }
        let relay = DataFrame {
            transmitter: self.node,
            link_dst: d.link_dst.clone(),
            flow: d.flow,
            src: d.src,
            dst: d.dst,
            frame_seq: d.frame_seq,
            subframes: clean,
            retry: d.retry,
        };
        let wait = self.cfg.timing.data_relay_wait(my_rank);
        self.data_relayed.insert(key);
        self.schedule_relay((d.flow, d.src, d.frame_seq, false), Frame::Data(relay), wait, out);
        let _ = now;
    }

    fn destination_receive(&mut self, d: &DataFrame, out: &mut ActionSink) {
        let LinkDst::Opportunistic { list } = &d.link_dst else { return };
        let mut acked_seqs = AckList::new();
        let cap = self.cfg.reorder_capacity;
        for sf in &d.subframes {
            // Rq per (flow, end-to-end source): frames may mix flows that
            // share a route, so the key comes from the subframe.
            let key = (sf.packet.header.flow, sf.packet.header.src);
            let rq = self.rq.entry(key).or_insert_with(|| ReorderBuffer::new(cap));
            if sf.corrupted {
                // Acknowledge subframes we already hold from earlier copies,
                // so the source stops retransmitting them.
                if rq.has(sf.seq) {
                    acked_seqs.push((sf.packet.header.flow, sf.seq));
                }
                continue;
            }
            acked_seqs.push((sf.packet.header.flow, sf.seq));
            // The release run drains straight into Deliver actions — same
            // order as before, no intermediate accumulator.
            let (_, mut rel) = rq.accept(sf.seq, sf.packet.clone());
            for p in rel.drain(..) {
                self.stats.delivered_up += 1;
                out.push(MacAction::Deliver { packet: p });
            }
        }
        let ack = AckFrame {
            transmitter: self.node,
            to: d.src,
            flow: d.flow,
            frame_seq: d.frame_seq,
            acked_seqs,
            relay_list: list.clone(),
        };
        self.pending_ack = Some(ack);
        let token = self.mint(Role::SendAck);
        self.armed_send_ack = Some(token);
        out.push(MacAction::SetTimer { delay: self.cfg.timing.destination_ack_wait(), token });
    }

    fn handle_ack_frame(&mut self, a: &AckFrame, now: SimTime, out: &mut ActionSink) {
        if a.to == self.node {
            self.source_apply_ack(a, now, out);
            return;
        }
        // Forwarder: relay ACKs heard from downstream (closer to the
        // destination, i.e. lower rank) toward the source. An ACK also
        // proves the data frame reached the destination, so any data relay
        // we still hold for that frame is obsolete.
        self.drop_pending_relay((a.flow, a.to, a.frame_seq, false));
        let Some(my_rank) = a.relay_list.iter().position(|&n| n == self.node) else {
            return;
        };
        if my_rank == 0 {
            return; // we are the destination of the data; nothing to do
        }
        let tx_rank = a.relay_list.iter().position(|&n| n == a.transmitter);
        if let Some(tx_rank) = tx_rank {
            if tx_rank >= my_rank {
                // The ACK has already travelled past us.
                self.drop_pending_relay((a.flow, a.to, a.frame_seq, true));
                return;
            }
        } else {
            return; // ACKs originate on the list; anything else is stale
        }
        let key = (a.flow, a.to, a.frame_seq);
        if self.ack_relayed.contains(&key) {
            return;
        }
        // Inline lists make this a plain memcpy, not a heap clone.
        let relay = AckFrame {
            transmitter: self.node,
            to: a.to,
            flow: a.flow,
            frame_seq: a.frame_seq,
            acked_seqs: a.acked_seqs.clone(),
            relay_list: a.relay_list.clone(),
        };
        let wait = self.cfg.timing.ack_relay_wait(my_rank);
        self.ack_relayed.insert(key);
        self.schedule_relay((a.flow, a.to, a.frame_seq, true), Frame::Ack(relay), wait, out);
    }

    fn source_apply_ack(&mut self, a: &AckFrame, now: SimTime, out: &mut ActionSink) {
        let Some(inflight) = self.inflight.as_mut() else { return };
        if a.frame_seq != inflight.frame_seq || !self.handled_acks.insert(a.frame_seq) {
            return; // stale attempt or duplicate (relayed) ACK copy
        }
        if self.data_state == DataState::Transmitting {
            return; // cannot happen with a half-duplex radio
        }
        self.stats.acks_received += 1;
        if let Some(token) = self.armed_timeout.take() {
            take_role_in(&mut self.timer_roles, token);
        }
        let before = inflight.subframes.len();
        inflight.subframes.retain(|(seq, p)| !a.acked_seqs.contains(&(p.header.flow, *seq)));
        let progressed = inflight.subframes.len() < before;
        self.data_state = DataState::Idle;
        self.backoff.on_success();
        if inflight.subframes.is_empty() {
            self.inflight = None;
        } else {
            // Fragment-retransmission semantics: progress resets the retry
            // budget; only a fruitless ACK consumes one.
            if progressed {
                inflight.retries = 0;
            } else {
                inflight.retries += 1;
            }
            if inflight.retries > self.cfg.retry_limit {
                let mut dead = self.inflight.take().expect("present");
                for (_, packet) in dead.subframes.drain(..) {
                    self.stats.drops_retry_limit += 1;
                    out.push(MacAction::Drop { packet, reason: DropReason::RetryLimit });
                }
            }
        }
        self.backoff.draw(&mut self.rng);
        self.try_progress(now, out);
    }

    fn handle_mtxop_timeout(&mut self, now: SimTime, out: &mut ActionSink) {
        self.armed_timeout = None;
        if self.data_state != DataState::WaitAck {
            return;
        }
        self.stats.timeouts += 1;
        self.data_state = DataState::Idle;
        self.backoff.on_failure();
        let drop_all = {
            let inflight = self.inflight.as_mut().expect("timeout without inflight");
            inflight.retries += 1;
            inflight.retries > self.cfg.retry_limit
        };
        if drop_all {
            let mut dead = self.inflight.take().expect("present");
            for (_, packet) in dead.subframes.drain(..) {
                self.stats.drops_retry_limit += 1;
                out.push(MacAction::Drop { packet, reason: DropReason::RetryLimit });
            }
            self.backoff.on_success();
        }
        self.backoff.draw(&mut self.rng);
        self.try_progress(now, out);
    }

    fn fire_send_ack(&mut self, out: &mut ActionSink) {
        self.armed_send_ack = None;
        let Some(ack) = self.pending_ack.take() else { return };
        if !self.radio_free() {
            return; // pathological; sender recovers end-to-end
        }
        self.ack_tx_in_progress = true;
        self.stats.ack_frames_sent += 1;
        out.push(MacAction::StartTx { frame: Frame::Ack(ack), rate: RateClass::Basic });
    }

    fn fire_relay(&mut self, pending: u64, out: &mut ActionSink) {
        let Some(idx) = self.pending_relays.iter().position(|pr| pr.id == pending) else {
            return; // cancelled in the meantime
        };
        if self.channel_busy {
            return; // a pause is in flight; resume_relays will re-arm
        }
        if !self.radio_free() {
            // Our own radio is mid-transmission (e.g. sending an ACK): the
            // relay re-arms on the next idle edge.
            self.pending_relays[idx].token = None;
            return;
        }
        let pr = self.pending_relays.remove(idx);
        self.relay_tx_in_progress = true;
        self.relays_performed += 1;
        let rate = match &pr.frame {
            Frame::Data(_) => RateClass::Data,
            Frame::Ack(_) => RateClass::Basic,
        };
        out.push(MacAction::StartTx { frame: pr.frame, rate });
    }
}

impl MacEntity for RippleMac {
    fn on_enqueue(&mut self, packet: Packet, route: RouteInfo, now: SimTime, out: &mut ActionSink) {
        if let Some(rejected) = self.q.push(packet, route) {
            self.stats.drops_queue_full += 1;
            out.push(MacAction::Drop { packet: rejected, reason: DropReason::QueueFull });
            return;
        }
        self.try_progress(now, out);
    }

    fn on_busy(&mut self, now: SimTime, _out: &mut ActionSink) {
        self.channel_busy = true;
        self.disarm_backoff(now);
        // A busy channel breaks every pending idle window; the relays pause
        // and restart their full wait on the next idle edge.
        self.pause_relays();
    }

    fn on_idle(&mut self, now: SimTime, out: &mut ActionSink) {
        self.channel_busy = false;
        self.idle_since = now;
        self.resume_relays(out);
        if self.data_state == DataState::Idle && self.radio_free() && self.has_work() {
            self.arm_backoff(now, out);
        }
    }

    fn on_frame_rx(&mut self, frame: RxFrame, now: SimTime, out: &mut ActionSink) {
        match &*frame {
            Frame::Data(d) => self.handle_data_frame(d, now, out),
            Frame::Ack(a) => self.handle_ack_frame(a, now, out),
        }
    }

    fn on_tx_end(&mut self, now: SimTime, out: &mut ActionSink) {
        if self.relay_tx_in_progress {
            self.relay_tx_in_progress = false;
        } else if self.ack_tx_in_progress {
            self.ack_tx_in_progress = false;
            self.try_progress(now, out);
        } else if self.data_state == DataState::Transmitting {
            self.data_state = DataState::WaitAck;
            let (list_len, bytes) = {
                let inflight = self.inflight.as_ref().expect("transmitting without inflight");
                let bytes: u32 = inflight
                    .subframes
                    .iter()
                    .map(|(_, p)| wmn_mac::frame::SUBFRAME_OVERHEAD_BYTES + p.header.wire_bytes)
                    .sum::<u32>()
                    + wmn_mac::frame::MAC_HEADER_BYTES;
                (inflight.list.len(), bytes)
            };
            let timeout = self.cfg.timing.mtxop_timeout(list_len, bytes);
            let token = self.mint(Role::MtxopTimeout);
            self.armed_timeout = Some(token);
            out.push(MacAction::SetTimer { delay: timeout, token });
        }
    }

    fn on_timer(&mut self, token: TimerToken, now: SimTime, out: &mut ActionSink) {
        let Some(role) = take_role_in(&mut self.timer_roles, token) else {
            return;
        };
        match role {
            Role::BackoffDone => {
                if self.armed_backoff == Some(token) {
                    self.armed_backoff = None;
                    if !self.channel_busy
                        && self.radio_free()
                        && self.data_state == DataState::Idle
                        && self.has_work()
                    {
                        self.backoff.clear();
                        self.transmit_data(out);
                    }
                }
            }
            Role::MtxopTimeout => {
                if self.armed_timeout == Some(token) {
                    self.handle_mtxop_timeout(now, out);
                }
            }
            Role::SendAck => {
                if self.armed_send_ack == Some(token) {
                    self.fire_send_ack(out);
                }
            }
            Role::RelayFire { pending } => self.fire_relay(pending, out),
        }
    }

    fn stats(&self) -> MacStats {
        self.stats
    }
}

/// The RIPPLE forwarding scheme, as a [`MacScheme`](wmn_mac::MacScheme)
/// factory: `aggregation = 1` is "R1", 16 the full scheme "R16".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RippleScheme {
    /// Packets per frame (1 or 16 in the paper).
    pub aggregation: usize,
}

impl wmn_mac::MacScheme for RippleScheme {
    fn label(&self) -> &'static str {
        if self.aggregation == 1 {
            "RIPPLE-1"
        } else {
            "RIPPLE-16"
        }
    }

    fn is_opportunistic(&self) -> bool {
        true
    }

    fn build_mac(&self, params: &PhyParams, node: NodeId, rng: StreamRng) -> Box<dyn MacEntity> {
        Box::new(RippleMac::new(RippleConfig::from_phy(params, self.aggregation), node, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_mac::frame::{NetHeader, Proto};
    use wmn_mac::MacEntityExt;
    use wmn_phy::PhyParams;
    use wmn_sim::SimDuration;

    fn cfg(agg: usize) -> RippleConfig {
        RippleConfig::from_phy(&PhyParams::paper_216(), agg)
    }

    fn mac(node: u32, agg: usize) -> RippleMac {
        RippleMac::new(cfg(agg), NodeId::new(node), StreamRng::derive(11, "ripple-test"))
    }

    fn packet(flow: u32, src: u32, dst: u32) -> Packet {
        Packet::new(
            NetHeader {
                flow: FlowId::new(flow),
                src: NodeId::new(src),
                dst: NodeId::new(dst),
                proto: Proto::Tcp,
                wire_bytes: 1000,
            },
            vec![],
        )
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    /// List for flow 0→3 via forwarders 2 (rank 1) and 1 (rank 2).
    fn list() -> NodeList {
        vec![NodeId::new(3), NodeId::new(2), NodeId::new(1)].into()
    }

    fn route() -> RouteInfo {
        RouteInfo::Opportunistic { list: list() }
    }

    fn find_tx(actions: &[MacAction]) -> Option<&Frame> {
        actions.iter().find_map(|a| match a {
            MacAction::StartTx { frame, .. } => Some(frame),
            _ => None,
        })
    }

    fn timers(actions: &[MacAction]) -> Vec<(SimDuration, TimerToken)> {
        actions
            .iter()
            .filter_map(|a| match a {
                MacAction::SetTimer { delay, token } => Some((*delay, *token)),
                _ => None,
            })
            .collect()
    }

    fn source_frame(src: &mut RippleMac, now: SimTime) -> DataFrame {
        let acts = src.on_enqueue_vec(packet(0, 0, 3), route(), now);
        match find_tx(&acts) {
            Some(Frame::Data(d)) => d.clone(),
            _ => panic!("expected immediate data tx"),
        }
    }

    #[test]
    fn source_sends_opportunistic_frame() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        assert_eq!(d.link_dst, LinkDst::Opportunistic { list: list() });
        assert_eq!(d.subframes.len(), 1);
        assert_eq!(d.src, NodeId::new(0));
        assert_eq!(d.dst, NodeId::new(3));
    }

    #[test]
    fn forwarder_arms_rank_scaled_relay() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        // Node 1 has rank 2: waits SIFS + 2 slots.
        let mut f1 = mac(1, 16);
        let acts = f1.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200));
        let (delay, token) = timers(&acts)[0];
        assert_eq!(delay, SimDuration::from_micros(16 + 18));
        // Fire it: the relay goes out with us as transmitter.
        let acts = f1.on_timer_vec(token, t(200) + delay);
        match find_tx(&acts) {
            Some(Frame::Data(r)) => {
                assert_eq!(r.transmitter, NodeId::new(1));
                assert_eq!(r.frame_seq, d.frame_seq, "relays keep the frame identity");
            }
            _ => panic!("expected relayed data frame"),
        }
        assert_eq!(f1.relays_performed(), 1);
    }

    #[test]
    fn busy_channel_pauses_relay_and_idle_rearms_it() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        let mut f1 = mac(1, 16);
        let acts = f1.on_frame_rx_vec(Frame::Data(d).into(), t(200));
        let (delay, token) = timers(&acts)[0];
        // Someone transmits during the wait: the idle window broke.
        f1.on_busy_vec(t(210));
        let acts = f1.on_timer_vec(token, t(200) + delay);
        assert!(find_tx(&acts).is_none(), "paused relay must not fire");
        assert_eq!(f1.relays_performed(), 0);
        // The next idle edge restarts the full wait…
        let acts = f1.on_idle_vec(t(400));
        let (delay2, token2) = timers(&acts)[0];
        assert_eq!(delay2, delay, "the wait restarts in full");
        // …and the relay finally goes out.
        let acts = f1.on_timer_vec(token2, t(400) + delay2);
        assert!(matches!(find_tx(&acts), Some(Frame::Data(_))));
        assert_eq!(f1.relays_performed(), 1);
    }

    #[test]
    fn overheard_ack_cancels_pending_data_relay() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        let mut f1 = mac(1, 16);
        let acts = f1.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200));
        let (delay, token) = timers(&acts)[0];
        // The destination's ACK arrives before our relay slot: the frame
        // already made it end-to-end, so the relay is pointless.
        let ack = AckFrame {
            transmitter: NodeId::new(3),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: d.frame_seq,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: list(),
        };
        f1.on_frame_rx_vec(Frame::Ack(ack).into(), t(205));
        let acts = f1.on_timer_vec(token, t(200) + delay);
        assert!(find_tx(&acts).is_none(), "ACK proves delivery; relay cancelled");
        assert_eq!(f1.relays_performed(), 0);
    }

    #[test]
    fn downstream_copy_cancels_pending_data_relay() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        // Node 1 (rank 2) holds a pending relay; then hears node 2 (rank 1)
        // relay the same frame: it progressed past us.
        let mut f1 = mac(1, 16);
        let acts = f1.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200));
        let (delay, token) = timers(&acts)[0];
        let downstream = DataFrame { transmitter: NodeId::new(2), ..d };
        f1.on_frame_rx_vec(Frame::Data(downstream).into(), t(210));
        let acts = f1.on_timer_vec(token, t(200) + delay);
        assert!(find_tx(&acts).is_none(), "higher-priority relay cancels ours");
    }

    #[test]
    fn forwarder_relays_each_frame_at_most_once() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        let mut f1 = mac(1, 16);
        let acts = f1.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200));
        assert_eq!(timers(&acts).len(), 1);
        // Hearing the same frame again (e.g. another copy) arms nothing.
        let acts = f1.on_frame_rx_vec(Frame::Data(d).into(), t(400));
        assert!(timers(&acts).is_empty(), "at most one relay per frame");
    }

    #[test]
    fn forwarder_ignores_downstream_copies() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        // Node 1 (rank 2) hears the copy relayed by node 2 (rank 1):
        // the frame already progressed past it.
        let relayed = DataFrame { transmitter: NodeId::new(2), ..d };
        let mut f1 = mac(1, 16);
        let acts = f1.on_frame_rx_vec(Frame::Data(relayed).into(), t(300));
        assert!(timers(&acts).is_empty());
    }

    #[test]
    fn destination_acks_after_sifs_and_delivers() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        let mut dst = mac(3, 16);
        let acts = dst.on_frame_rx_vec(Frame::Data(d).into(), t(200));
        assert!(acts.iter().any(|a| matches!(a, MacAction::Deliver { .. })));
        let (delay, token) = timers(&acts)[0];
        assert_eq!(delay, SimDuration::from_micros(16));
        let acts = dst.on_timer_vec(token, t(216));
        match find_tx(&acts) {
            Some(Frame::Ack(a)) => {
                assert_eq!(a.to, NodeId::new(0), "ACK targets the end-to-end source");
                assert_eq!(a.acked_seqs.as_slice(), &[(FlowId::new(0), 0)]);
                assert_eq!(a.relay_list, list(), "ACK carries the relay priority list");
            }
            _ => panic!("expected bitmap ACK"),
        }
    }

    #[test]
    fn destination_acks_already_held_subframes() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        let mut dst = mac(3, 16);
        dst.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200));
        // Retransmission arrives with the same seq corrupted this time.
        let mut retx = d;
        retx.frame_seq += 1;
        retx.subframes[0].corrupted = true;
        let acts = dst.on_frame_rx_vec(Frame::Data(retx).into(), t(400));
        let (_, token) = timers(&acts)[0];
        let acts = dst.on_timer_vec(token, t(420));
        match find_tx(&acts) {
            Some(Frame::Ack(a)) => {
                assert_eq!(
                    a.acked_seqs.as_slice(),
                    &[(FlowId::new(0), 0)],
                    "already-held subframe still acknowledged"
                );
            }
            _ => panic!("expected ACK"),
        }
    }

    #[test]
    fn ack_relay_waits_one_slot_less_and_travels_upstream() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        let ack = AckFrame {
            transmitter: NodeId::new(3), // the destination
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: d.frame_seq,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: list(),
        };
        // Rank-1 forwarder (node 2) relays after SIFS exactly.
        let mut f2 = mac(2, 16);
        let acts = f2.on_frame_rx_vec(Frame::Ack(ack.clone()).into(), t(300));
        let (delay, token) = timers(&acts)[0];
        assert_eq!(delay, SimDuration::from_micros(16));
        let acts = f2.on_timer_vec(token, t(316));
        assert!(matches!(find_tx(&acts), Some(Frame::Ack(_))));
        // A forwarder never relays an ACK heard from upstream of itself:
        // node 2 (rank 1) ignores a copy transmitted by node 1 (rank 2).
        let upstream_copy = AckFrame { transmitter: NodeId::new(1), ..ack };
        let mut f2b = mac(2, 16);
        let acts = f2b.on_frame_rx_vec(Frame::Ack(upstream_copy).into(), t(300));
        assert!(timers(&acts).is_empty());
    }

    #[test]
    fn source_completes_on_bitmap_ack() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        src.on_tx_end_vec(t(160));
        let ack = AckFrame {
            transmitter: NodeId::new(2), // a relayed ACK copy works too
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: d.frame_seq,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: list(),
        };
        src.on_frame_rx_vec(Frame::Ack(ack.clone()).into(), t(400));
        assert!(src.inflight.is_none(), "frame acknowledged end-to-end");
        // A duplicate ACK copy (the destination's direct one) is harmless.
        let acts = src.on_frame_rx_vec(Frame::Ack(ack).into(), t(410));
        assert!(acts.is_empty());
    }

    #[test]
    fn partial_ack_retransmits_missing_subframes_only() {
        let mut src = mac(0, 16);
        // Enqueue 3 packets; the first transmits alone, 2 queue up.
        src.on_enqueue_vec(packet(0, 0, 3), route(), t(100));
        src.on_enqueue_vec(packet(0, 0, 3), route(), t(101));
        src.on_enqueue_vec(packet(0, 0, 3), route(), t(102));
        src.on_tx_end_vec(t(160));
        let fs = src.inflight.as_ref().unwrap().frame_seq;
        let ack = AckFrame {
            transmitter: NodeId::new(3),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: fs,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: list(),
        };
        let acts = src.on_frame_rx_vec(Frame::Ack(ack).into(), t(400));
        let (delay, token) = timers(&acts)[0];
        let acts = src.on_timer_vec(token, t(400) + delay);
        let Some(Frame::Data(d2)) = find_tx(&acts) else { panic!("expected retx") };
        // Seq 0 acked; seqs 1,2 (queued packets) aggregate into the frame.
        assert_eq!(d2.subframes.len(), 2);
        assert_eq!(d2.subframes.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn timeout_retries_and_eventually_drops() {
        let mut src = mac(0, 1);
        src.on_enqueue_vec(packet(0, 0, 3), route(), t(100));
        let mut now = t(160);
        let mut drops = 0;
        for _ in 0..30 {
            let acts = src.on_tx_end_vec(now);
            let Some((delay, token)) = timers(&acts).first().copied() else { break };
            now += delay;
            let acts = src.on_timer_vec(token, now);
            drops += acts
                .iter()
                .filter(|a| matches!(a, MacAction::Drop { reason: DropReason::RetryLimit, .. }))
                .count();
            if drops > 0 {
                break;
            }
            if let Some((d2, tok2)) = timers(&acts).first().copied() {
                now += d2;
                let acts = src.on_timer_vec(tok2, now);
                if find_tx(&acts).is_none() {
                    break;
                }
            }
        }
        assert_eq!(drops, 1, "end-to-end retry limit enforced");
        assert!(src.stats().timeouts >= 8);
    }

    #[test]
    fn aggregates_up_to_sixteen() {
        let mut src = mac(0, 16);
        src.on_busy_vec(t(0)); // hold the channel so packets accumulate
        for i in 0..20 {
            src.on_enqueue_vec(packet(0, 0, 3), route(), t(1 + i));
        }
        let acts = src.on_idle_vec(t(100));
        let (delay, token) = timers(&acts)[0];
        let acts = src.on_timer_vec(token, t(100) + delay);
        match find_tx(&acts) {
            Some(Frame::Data(d)) => assert_eq!(d.subframes.len(), 16),
            _ => panic!("expected aggregated frame"),
        }
    }

    #[test]
    fn non_list_member_ignores_everything() {
        let mut src = mac(0, 16);
        let d = source_frame(&mut src, t(100));
        let mut outsider = mac(7, 16);
        assert!(outsider.on_frame_rx_vec(Frame::Data(d.clone()).into(), t(200)).is_empty());
        let ack = AckFrame {
            transmitter: NodeId::new(3),
            to: NodeId::new(0),
            flow: FlowId::new(0),
            frame_seq: d.frame_seq,
            acked_seqs: vec![(FlowId::new(0), 0)].into(),
            relay_list: list(),
        };
        assert!(outsider.on_frame_rx_vec(Frame::Ack(ack).into(), t(300)).is_empty());
    }

    #[test]
    fn relay_with_all_subframes_corrupted_is_skipped() {
        let mut src = mac(0, 16);
        let mut d = source_frame(&mut src, t(100));
        for sf in &mut d.subframes {
            sf.corrupted = true;
        }
        let mut f1 = mac(1, 16);
        let acts = f1.on_frame_rx_vec(Frame::Data(d).into(), t(200));
        assert!(timers(&acts).is_empty(), "nothing decodable to relay");
    }

    #[test]
    fn in_order_delivery_across_partial_loss() {
        // Destination receives seqs 0 and 2 clean, 1 corrupted; holds 2,
        // then releases 1 and 2 together after the retransmission.
        let mut dst = mac(3, 16);
        let mk = |seqs: Vec<(u32, bool)>, fs: u64| {
            Frame::Data(DataFrame {
                transmitter: NodeId::new(0),
                link_dst: LinkDst::Opportunistic { list: list() },
                flow: FlowId::new(0),
                src: NodeId::new(0),
                dst: NodeId::new(3),
                frame_seq: fs,
                subframes: seqs
                    .into_iter()
                    .map(|(seq, corrupted)| Subframe { seq, packet: packet(0, 0, 3), corrupted })
                    .collect(),
                retry: 0,
            })
        };
        let acts =
            dst.on_frame_rx_vec(mk(vec![(0, false), (1, true), (2, false)], 1).into(), t(100));
        let delivered = acts.iter().filter(|a| matches!(a, MacAction::Deliver { .. })).count();
        assert_eq!(delivered, 1, "only seq 0 may be delivered");
        let acts = dst.on_frame_rx_vec(mk(vec![(1, false)], 2).into(), t(1000));
        let delivered = acts.iter().filter(|a| matches!(a, MacAction::Deliver { .. })).count();
        assert_eq!(delivered, 2, "seqs 1 and 2 released in order");
    }
}
