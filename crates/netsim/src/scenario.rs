//! Scenario description types.

use wmn_mac::{DcfScheme, MacEntity, MacScheme};
use wmn_phy::{PhyParams, Position};
use wmn_routing::{ExorMode, ExorScheme};
use wmn_sim::{NodeId, SimDuration, StreamRng};
use wmn_topology::MotionPlan;
use wmn_traffic::{CbrModel, VoipModel, WebModel};

/// Which forwarding scheme every station in the scenario runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// IEEE 802.11 DCF over predetermined routes. `aggregation = 1` is the
    /// paper's "D" (and "S" when the path is direct); `aggregation = 16` is
    /// AFR ("A").
    Dcf {
        /// Packets per frame (1 or 16 in the paper).
        aggregation: usize,
    },
    /// preExOR: opportunistic forwarding with sequential per-member ACKs.
    PreExor,
    /// MCExOR: opportunistic forwarding with compressed ACKs.
    McExor,
    /// RIPPLE. `aggregation = 1` is "R1", `16` is the full scheme "R16".
    Ripple {
        /// Packets per frame (1 or 16 in the paper).
        aggregation: usize,
    },
}

impl Scheme {
    /// The label the paper's figures use for this scheme.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Dcf { aggregation: 1 } => "DCF",
            Scheme::Dcf { .. } => "AFR",
            Scheme::PreExor => "preExOR",
            Scheme::McExor => "MCExOR",
            Scheme::Ripple { aggregation: 1 } => "RIPPLE-1",
            Scheme::Ripple { .. } => "RIPPLE-16",
        }
    }

    /// Whether routes must be expressed as opportunistic priority lists.
    pub fn is_opportunistic(self) -> bool {
        !matches!(self, Scheme::Dcf { .. })
    }
}

/// Enum dispatch to the concrete scheme factories: the `Scheme` enum stays
/// a copyable scenario field (no allocation, derivable `PartialEq`), while
/// the runner builds node stacks purely through the [`MacScheme`] trait —
/// it never names DCF, ExOR or RIPPLE again. Adding a MAC means adding a
/// variant here and a factory in the crate that owns the state machine.
impl MacScheme for Scheme {
    fn label(&self) -> &'static str {
        Scheme::label(*self)
    }

    fn is_opportunistic(&self) -> bool {
        Scheme::is_opportunistic(*self)
    }

    fn build_mac(&self, params: &PhyParams, node: NodeId, rng: StreamRng) -> Box<dyn MacEntity> {
        match *self {
            Scheme::Dcf { aggregation } => DcfScheme { aggregation }.build_mac(params, node, rng),
            Scheme::PreExor => ExorScheme { mode: ExorMode::PreExor }.build_mac(params, node, rng),
            Scheme::McExor => ExorScheme { mode: ExorMode::McExor }.build_mac(params, node, rng),
            Scheme::Ripple { aggregation } => {
                ripple::RippleScheme { aggregation }.build_mac(params, node, rng)
            }
        }
    }
}

/// The application driving one flow.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Long-lived TCP transfer: unlimited data from t = 0.
    Ftp,
    /// Web traffic: Pareto transfer sizes, exponential think times.
    Web(WebModel),
    /// On-off VoIP over UDP.
    Voip(VoipModel),
    /// Constant-bit-rate UDP (saturating cross / hidden traffic).
    Cbr(CbrModel),
}

/// One end-to-end flow: its (predetermined) path and its workload. For
/// opportunistic schemes the path's interior nodes become the forwarder
/// candidates.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Source, forwarders, destination — inclusive, in order.
    pub path: Vec<NodeId>,
    /// The traffic generator.
    pub workload: Workload,
}

impl FlowSpec {
    /// The flow's source station.
    ///
    /// # Panics
    ///
    /// Panics if the path has fewer than two nodes.
    pub fn src(&self) -> NodeId {
        assert!(self.path.len() >= 2, "a flow path needs at least two nodes");
        self.path[0]
    }

    /// The flow's destination station.
    pub fn dst(&self) -> NodeId {
        assert!(self.path.len() >= 2, "a flow path needs at least two nodes");
        *self.path.last().expect("non-empty")
    }
}

/// A complete, reproducible simulation description.
///
/// # NodeId contract
///
/// `positions` is the single id namespace of a run: [`wmn_sim::NodeId`]s are
/// **dense indices into it** (node `i` sits at `positions[i]`), and every id
/// a flow path mentions must be below `positions.len()`. [`Scenario::validate`]
/// checks the whole structure; [`crate::run`] asserts it.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Name used in results and logs.
    pub name: String,
    /// PHY/MAC parameters (Table I presets, possibly with modified BER).
    pub params: PhyParams,
    /// Station placement; index = node id.
    pub positions: Vec<Position>,
    /// The forwarding scheme under test.
    pub scheme: Scheme,
    /// The traffic matrix.
    pub flows: Vec<FlowSpec>,
    /// Simulated duration (Table I: 10 s).
    pub duration: SimDuration,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Cap on forwarders per opportunistic list (paper default: 5).
    pub max_forwarders: usize,
    /// Per-node trajectories over `positions` (which pin `t = 0`). The
    /// default plan is empty — fully static — and is byte-for-byte
    /// equivalent to the pre-mobility simulator.
    pub motion: MotionPlan,
    /// Interval between live route-refresh passes, or `None` for build-time
    /// routes only. When set, the runner periodically recomputes every
    /// flow's min-ETX path (and opportunistic forwarder list) from the
    /// medium's *current* link state — the fix for a mobile relay leaving a
    /// flow pinned to its stale forwarder list forever. The refresh consumes
    /// no RNG, so `None` is byte-for-byte identical to the pre-refresh
    /// runner, and a refresh over an unmoved topology changes nothing.
    pub route_refresh: Option<SimDuration>,
    /// Shard count for the conservative sharded event loop, or `None` for
    /// the single-loop engine. `None` is byte-for-byte the legacy engine
    /// (the CI baseline's bytes); any `Some(k)` selects the sharded engine,
    /// whose results are bit-identical for **every** `k ≥ 1` (pinned by the
    /// determinism suites) but use a different RNG stream layout than the
    /// single-loop engine, so `Some(1)` and `None` are two distinct,
    /// individually deterministic engines. Counts above the station count
    /// are clamped.
    pub shards: Option<u32>,
}

impl Scenario {
    /// Checks the scenario's structural invariants: a non-empty placement,
    /// at least one flow, every flow path at least two nodes long with no
    /// immediate self-loops, every referenced [`NodeId`] inside the
    /// placement (ids are dense indices into `positions` — see the type-level
    /// NodeId contract), and a well-formed motion plan
    /// ([`MotionPlan::check`]).
    ///
    /// Hand-written experiment definitions rely on [`crate::run`]'s panics;
    /// generated scenarios (`wmn_scengen`) call this first so a bad spec
    /// fails with a message naming the scenario instead of dying mid-grid.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.positions.len();
        if n == 0 {
            return Err(format!("scenario {:?}: empty placement", self.name));
        }
        if self.flows.is_empty() {
            return Err(format!("scenario {:?}: no flows", self.name));
        }
        for (i, flow) in self.flows.iter().enumerate() {
            if flow.path.len() < 2 {
                return Err(format!(
                    "scenario {:?}, flow {i}: path needs at least two nodes, got {}",
                    self.name,
                    flow.path.len()
                ));
            }
            for node in &flow.path {
                if node.index() >= n {
                    return Err(format!(
                        "scenario {:?}, flow {i}: {node} outside the {n}-station placement \
                         (NodeIds must be dense indices into `positions`)",
                        self.name
                    ));
                }
            }
            if flow.path.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!(
                    "scenario {:?}, flow {i}: path repeats a node back-to-back",
                    self.name
                ));
            }
        }
        self.motion.check(n).map_err(|msg| format!("scenario {:?}, motion: {msg}", self.name))?;
        if self.route_refresh == Some(SimDuration::ZERO) {
            return Err(format!(
                "scenario {:?}: route_refresh interval must be positive (a zero interval \
                 would reschedule itself at the same instant forever)",
                self.name
            ));
        }
        if self.shards == Some(0) {
            return Err(format!(
                "scenario {:?}: shards must be positive — use None for the single-loop \
                 engine, Some(1) for the sharded engine on one shard",
                self.name
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels_match_figures() {
        assert_eq!(Scheme::Dcf { aggregation: 1 }.label(), "DCF");
        assert_eq!(Scheme::Dcf { aggregation: 16 }.label(), "AFR");
        assert_eq!(Scheme::Ripple { aggregation: 1 }.label(), "RIPPLE-1");
        assert_eq!(Scheme::Ripple { aggregation: 16 }.label(), "RIPPLE-16");
        assert_eq!(Scheme::PreExor.label(), "preExOR");
        assert_eq!(Scheme::McExor.label(), "MCExOR");
    }

    #[test]
    fn opportunism_flag() {
        assert!(!Scheme::Dcf { aggregation: 16 }.is_opportunistic());
        assert!(Scheme::Ripple { aggregation: 16 }.is_opportunistic());
        assert!(Scheme::PreExor.is_opportunistic());
    }

    fn valid_scenario() -> Scenario {
        Scenario {
            name: "v".into(),
            params: PhyParams::paper_216(),
            positions: vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
            scheme: Scheme::Dcf { aggregation: 1 },
            flows: vec![FlowSpec {
                path: vec![NodeId::new(0), NodeId::new(1)],
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(1),
            seed: 0,
            max_forwarders: 5,
            motion: MotionPlan::default(),
            route_refresh: None,
            shards: None,
        }
    }

    #[test]
    fn validate_accepts_well_formed_scenarios() {
        assert_eq!(valid_scenario().validate(), Ok(()));
        let mut refreshed = valid_scenario();
        refreshed.route_refresh = Some(SimDuration::from_millis(50));
        assert_eq!(refreshed.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_zero_refresh_interval() {
        let mut s = valid_scenario();
        s.route_refresh = Some(SimDuration::ZERO);
        let msg = s.validate().unwrap_err();
        assert!(msg.contains("route_refresh"), "{msg}");
    }

    #[test]
    fn validate_rejects_sparse_node_ids() {
        // Regression: ids must be dense indices into `positions`. A path
        // naming node 7 of a 2-station placement used to die only when
        // `Topology::distance` indexed out of bounds; now it is reported
        // with the offending flow and id.
        let mut s = valid_scenario();
        s.flows[0].path = vec![NodeId::new(0), NodeId::new(7)];
        let msg = s.validate().unwrap_err();
        assert!(msg.contains("n7") && msg.contains("flow 0"), "{msg}");
        assert!(msg.contains("dense indices"), "{msg}");
    }

    #[test]
    fn validate_rejects_structural_defects() {
        let mut empty = valid_scenario();
        empty.positions.clear();
        assert!(empty.validate().unwrap_err().contains("empty placement"));

        let mut no_flows = valid_scenario();
        no_flows.flows.clear();
        assert!(no_flows.validate().unwrap_err().contains("no flows"));

        let mut short = valid_scenario();
        short.flows[0].path.truncate(1);
        assert!(short.validate().unwrap_err().contains("at least two nodes"));

        let mut looped = valid_scenario();
        looped.flows[0].path = vec![NodeId::new(0), NodeId::new(0)];
        assert!(looped.validate().unwrap_err().contains("back-to-back"));

        let mut bad_motion = valid_scenario();
        bad_motion.motion.paths = vec![wmn_topology::NodePath::Static; 3];
        let msg = bad_motion.validate().unwrap_err();
        assert!(msg.contains("motion") && msg.contains("3 paths"), "{msg}");
    }

    #[test]
    fn scheme_enum_dispatches_the_mac_scheme_trait() {
        // The trait view must agree with the inherent metadata for every
        // variant — the runner only ever sees the trait.
        for scheme in [
            Scheme::Dcf { aggregation: 1 },
            Scheme::Dcf { aggregation: 16 },
            Scheme::Ripple { aggregation: 1 },
            Scheme::Ripple { aggregation: 16 },
            Scheme::PreExor,
            Scheme::McExor,
        ] {
            let dynamic: &dyn MacScheme = &scheme;
            assert_eq!(dynamic.label(), scheme.label());
            assert_eq!(dynamic.is_opportunistic(), scheme.is_opportunistic());
            let mut mac = dynamic.build_mac(
                &PhyParams::paper_216(),
                NodeId::new(0),
                StreamRng::derive(1, "mac/0"),
            );
            assert_eq!(mac.stats(), wmn_mac::MacStats::default());
            let _ = wmn_mac::MacEntityExt::on_idle_vec(&mut *mac, wmn_sim::SimTime::ZERO);
        }
    }

    #[test]
    fn flow_endpoints() {
        let f = FlowSpec {
            path: vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)],
            workload: Workload::Ftp,
        };
        assert_eq!(f.src(), NodeId::new(0));
        assert_eq!(f.dst(), NodeId::new(3));
    }
}
