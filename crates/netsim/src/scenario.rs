//! Scenario description types.

use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration};
use wmn_traffic::{CbrModel, VoipModel, WebModel};

/// Which forwarding scheme every station in the scenario runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scheme {
    /// IEEE 802.11 DCF over predetermined routes. `aggregation = 1` is the
    /// paper's "D" (and "S" when the path is direct); `aggregation = 16` is
    /// AFR ("A").
    Dcf {
        /// Packets per frame (1 or 16 in the paper).
        aggregation: usize,
    },
    /// preExOR: opportunistic forwarding with sequential per-member ACKs.
    PreExor,
    /// MCExOR: opportunistic forwarding with compressed ACKs.
    McExor,
    /// RIPPLE. `aggregation = 1` is "R1", `16` is the full scheme "R16".
    Ripple {
        /// Packets per frame (1 or 16 in the paper).
        aggregation: usize,
    },
}

impl Scheme {
    /// The label the paper's figures use for this scheme.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Dcf { aggregation: 1 } => "DCF",
            Scheme::Dcf { .. } => "AFR",
            Scheme::PreExor => "preExOR",
            Scheme::McExor => "MCExOR",
            Scheme::Ripple { aggregation: 1 } => "RIPPLE-1",
            Scheme::Ripple { .. } => "RIPPLE-16",
        }
    }

    /// Whether routes must be expressed as opportunistic priority lists.
    pub fn is_opportunistic(self) -> bool {
        !matches!(self, Scheme::Dcf { .. })
    }
}

/// The application driving one flow.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Long-lived TCP transfer: unlimited data from t = 0.
    Ftp,
    /// Web traffic: Pareto transfer sizes, exponential think times.
    Web(WebModel),
    /// On-off VoIP over UDP.
    Voip(VoipModel),
    /// Constant-bit-rate UDP (saturating cross / hidden traffic).
    Cbr(CbrModel),
}

/// One end-to-end flow: its (predetermined) path and its workload. For
/// opportunistic schemes the path's interior nodes become the forwarder
/// candidates.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// Source, forwarders, destination — inclusive, in order.
    pub path: Vec<NodeId>,
    /// The traffic generator.
    pub workload: Workload,
}

impl FlowSpec {
    /// The flow's source station.
    ///
    /// # Panics
    ///
    /// Panics if the path has fewer than two nodes.
    pub fn src(&self) -> NodeId {
        assert!(self.path.len() >= 2, "a flow path needs at least two nodes");
        self.path[0]
    }

    /// The flow's destination station.
    pub fn dst(&self) -> NodeId {
        assert!(self.path.len() >= 2, "a flow path needs at least two nodes");
        *self.path.last().expect("non-empty")
    }
}

/// A complete, reproducible simulation description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Name used in results and logs.
    pub name: String,
    /// PHY/MAC parameters (Table I presets, possibly with modified BER).
    pub params: PhyParams,
    /// Station placement; index = node id.
    pub positions: Vec<Position>,
    /// The forwarding scheme under test.
    pub scheme: Scheme,
    /// The traffic matrix.
    pub flows: Vec<FlowSpec>,
    /// Simulated duration (Table I: 10 s).
    pub duration: SimDuration,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Cap on forwarders per opportunistic list (paper default: 5).
    pub max_forwarders: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels_match_figures() {
        assert_eq!(Scheme::Dcf { aggregation: 1 }.label(), "DCF");
        assert_eq!(Scheme::Dcf { aggregation: 16 }.label(), "AFR");
        assert_eq!(Scheme::Ripple { aggregation: 1 }.label(), "RIPPLE-1");
        assert_eq!(Scheme::Ripple { aggregation: 16 }.label(), "RIPPLE-16");
        assert_eq!(Scheme::PreExor.label(), "preExOR");
        assert_eq!(Scheme::McExor.label(), "MCExOR");
    }

    #[test]
    fn opportunism_flag() {
        assert!(!Scheme::Dcf { aggregation: 16 }.is_opportunistic());
        assert!(Scheme::Ripple { aggregation: 16 }.is_opportunistic());
        assert!(Scheme::PreExor.is_opportunistic());
    }

    #[test]
    fn flow_endpoints() {
        let f = FlowSpec {
            path: vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)],
            workload: Workload::Ftp,
        };
        assert_eq!(f.src(), NodeId::new(0));
        assert_eq!(f.dst(), NodeId::new(3));
    }
}
