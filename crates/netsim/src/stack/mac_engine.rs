//! The MAC layer of the node stack: one [`MacEntity`] state machine per
//! station, built through the [`MacScheme`] factory trait.
//!
//! The engine is deliberately scheme-agnostic: it never names DCF, ExOR or
//! RIPPLE. A scenario's [`Scheme`](crate::Scheme) enum (or any other
//! [`MacScheme`] implementation) decides what gets built; the engine only
//! owns the per-node entities and hands them to the runner for event
//! dispatch. Adding a MAC scheme therefore touches the crate that owns its
//! state machine and the scenario enum — never this engine or the runner.

use wmn_mac::{MacEntity, MacScheme, MacStats};
use wmn_phy::PhyParams;
use wmn_sim::{NodeId, RngDirectory};

/// The MAC layer: per-station protocol state machines.
pub(crate) struct MacEngine {
    macs: Vec<Box<dyn MacEntity>>,
}

impl MacEngine {
    /// Builds one MAC per station via the scheme factory. Each node's
    /// private RNG stream keeps the pre-trait label (`mac/<index>`), so the
    /// trait dispatch is bit-identical to the old hardwired construction.
    pub(crate) fn build(
        scheme: &dyn MacScheme,
        params: &PhyParams,
        node_count: usize,
        dir: &RngDirectory,
    ) -> Self {
        let macs = (0..node_count)
            .map(|i| {
                scheme.build_mac(params, NodeId::new(i as u32), dir.stream(&format!("mac/{i}")))
            })
            .collect();
        MacEngine { macs }
    }

    /// The state machine of one station.
    pub(crate) fn node(&mut self, node: NodeId) -> &mut dyn MacEntity {
        self.macs[node.index()].as_mut()
    }

    /// Per-station running statistics, in node order.
    pub(crate) fn stats(&self) -> Vec<MacStats> {
        self.macs.iter().map(|m| m.stats()).collect()
    }
}
