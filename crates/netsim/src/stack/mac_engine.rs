//! The MAC layer of the node stack: one [`MacEntity`] state machine per
//! station, built through the [`MacScheme`] factory trait.
//!
//! The engine is deliberately scheme-agnostic: it never names DCF, ExOR or
//! RIPPLE. A scenario's [`Scheme`](crate::Scheme) enum (or any other
//! [`MacScheme`] implementation) decides what gets built; the engine only
//! owns the per-node entities and hands them to the runner for event
//! dispatch. Adding a MAC scheme therefore touches the crate that owns its
//! state machine and the scenario enum — never this engine or the runner.

use wmn_mac::{ActionSink, MacEntity, MacScheme, MacStats};
use wmn_phy::PhyParams;
use wmn_sim::{NodeId, RngDirectory};

/// The MAC layer: per-station protocol state machines, plus the engine's
/// free list of reusable [`ActionSink`]s.
///
/// Sink discipline: every handler invocation takes its own sink
/// ([`take_sink`](MacEngine::take_sink)), fills it through the
/// [`MacEntity`] call, is drained completely by the runner, and parks it
/// back ([`park_sink`](MacEngine::park_sink)). Re-entrant dispatch —
/// applying a popped action triggers another handler (`StartTx` →
/// `on_busy`, `Deliver` → `on_enqueue`) — simply takes the *next* sink
/// from the free list, so a sink is never refilled mid-drain. The list
/// depth equals the deepest such nesting (two or three), after which the
/// steady state recycles without allocating.
pub(crate) struct MacEngine {
    macs: Vec<Box<dyn MacEntity>>,
    sinks: Vec<ActionSink>,
}

impl MacEngine {
    /// Builds one MAC per station via the scheme factory. Each node's
    /// private RNG stream keeps the pre-trait label (`mac/<index>`), so the
    /// trait dispatch is bit-identical to the old hardwired construction.
    pub(crate) fn build(
        scheme: &dyn MacScheme,
        params: &PhyParams,
        node_count: usize,
        dir: &RngDirectory,
    ) -> Self {
        let macs = (0..node_count)
            .map(|i| {
                scheme.build_mac(params, NodeId::new(i as u32), dir.stream(&format!("mac/{i}")))
            })
            .collect();
        MacEngine { macs, sinks: Vec::new() }
    }

    /// The state machine of one station.
    pub(crate) fn node(&mut self, node: NodeId) -> &mut dyn MacEntity {
        self.macs[node.index()].as_mut()
    }

    /// Pops a sink from the free list (or makes a cold empty one) for one
    /// handler invocation.
    pub(crate) fn take_sink(&mut self) -> ActionSink {
        self.sinks.pop().unwrap_or_default()
    }

    /// Parks a drained sink for reuse.
    pub(crate) fn park_sink(&mut self, sink: ActionSink) {
        debug_assert!(sink.is_empty(), "sinks are drained before parking");
        self.sinks.push(sink);
    }

    /// Per-station running statistics, in node order.
    pub(crate) fn stats(&self) -> Vec<MacStats> {
        self.macs.iter().map(|m| m.stats()).collect()
    }
}
