//! The network layer of the node stack: per-flow routing decisions.
//!
//! Routes start out predetermined per scenario (the paper's experiments fix
//! each flow's path or forwarder list up front), so this layer is pure
//! lookup tables: for every flow, a forward and a reverse table mapping each
//! node to its routing decision. Opportunistic schemes collapse to a single
//! decision at each direction's source (the forwarder list); per-hop
//! schemes get one next-hop entry per interior window of the path.
//!
//! With [`Scenario::route_refresh`] set, `NetLayer::refresh` periodically
//! recomputes each flow's min-ETX path from the medium's *current* link
//! state and rebuilds the affected tables — the fix for a mobile relay
//! leaving a flow pinned to its stale forwarder list forever. The pass
//! consumes no RNG and keeps the last-known-good route when the live graph
//! offers no path, so a refresh over an unmoved topology is a behavioural
//! no-op (pinned by the crate's equivalence tests).

use wmn_mac::frame::RouteInfo;
use wmn_routing::{forwarder_list, LinkGraph};
use wmn_sim::{FlowId, NodeId};

use crate::scenario::Scenario;

/// Per-node routing decisions of one flow direction, indexed by `NodeId`
/// (ids are dense indices per [`Scenario::validate`]): `table[node]` is the
/// decision at `node`, `None` where the flow never routes through.
type RouteTable = Vec<Option<RouteInfo>>;

/// Both directions of one flow's routing decisions, plus the path they were
/// derived from (kept so a refresh can detect an actual route change).
struct FlowRoutes {
    path: Vec<NodeId>,
    fwd: RouteTable,
    rev: RouteTable,
}

/// The network layer: routing decisions for every flow of a run.
pub(crate) struct NetLayer {
    flows: Vec<FlowRoutes>,
    /// Placement size (dense `NodeId` namespace) the tables are sized to.
    n: usize,
    opportunistic: bool,
    max_forwarders: usize,
}

impl NetLayer {
    /// Builds the per-flow route tables from a validated scenario.
    pub(crate) fn build(scenario: &Scenario) -> Self {
        let n = scenario.positions.len();
        let opportunistic = scenario.scheme.is_opportunistic();
        let flows = scenario
            .flows
            .iter()
            .map(|spec| {
                let path = spec.path.clone();
                let (fwd, rev) = build_routes(&path, n, opportunistic, scenario.max_forwarders);
                FlowRoutes { path, fwd, rev }
            })
            .collect();
        NetLayer { flows, n, opportunistic, max_forwarders: scenario.max_forwarders }
    }

    /// The routing decision of `flow` at `node`, in the given direction
    /// (`forward` = towards the flow's destination). `None` where the flow
    /// never routes through `node`.
    pub(crate) fn route(&self, flow: FlowId, node: NodeId, forward: bool) -> Option<RouteInfo> {
        let routes = &self.flows[flow.index()];
        let table = if forward { &routes.fwd } else { &routes.rev };
        table[node.index()].clone()
    }

    /// The current path of `flow` (source → destination, inclusive).
    pub(crate) fn path(&self, flow: FlowId) -> &[NodeId] {
        &self.flows[flow.index()].path
    }

    /// One live routing pass: recomputes every flow's min-ETX path over
    /// `graph` (built from the medium's current link state) and rebuilds the
    /// tables of each flow whose path actually changed. Returns the changed
    /// flows, in flow order.
    ///
    /// A flow whose endpoints have no usable path in the live graph keeps
    /// its last-known-good route — a transiently partitioned flow should
    /// recover when its relay comes back, not forget how to route entirely.
    pub(crate) fn refresh(&mut self, graph: &LinkGraph) -> Vec<FlowId> {
        let mut changed = Vec::new();
        for (i, routes) in self.flows.iter_mut().enumerate() {
            let (src, dst) = (routes.path[0], *routes.path.last().expect("non-empty path"));
            let Some(path) = graph.shortest_path(src, dst) else {
                continue;
            };
            if path == routes.path {
                continue;
            }
            let (fwd, rev) = build_routes(&path, self.n, self.opportunistic, self.max_forwarders);
            routes.path = path;
            routes.fwd = fwd;
            routes.rev = rev;
            changed.push(FlowId::new(i as u32));
        }
        changed
    }
}

/// Builds per-node routing decisions for both directions of a flow path, as
/// dense `NodeId`-indexed tables pre-sized to the placement. The path is
/// borrowed throughout; the only reversal is materialised for the
/// opportunistic forwarder list, which genuinely needs a reversed slice.
fn build_routes(
    path: &[NodeId],
    n: usize,
    opportunistic: bool,
    max_forwarders: usize,
) -> (RouteTable, RouteTable) {
    let mut fwd: RouteTable = vec![None; n];
    let mut rev: RouteTable = vec![None; n];
    if opportunistic {
        let reversed: Vec<NodeId> = path.iter().rev().copied().collect();
        fwd[path[0].index()] =
            Some(RouteInfo::Opportunistic { list: forwarder_list(path, max_forwarders).into() });
        rev[reversed[0].index()] = Some(RouteInfo::Opportunistic {
            list: forwarder_list(&reversed, max_forwarders).into(),
        });
    } else {
        for w in path.windows(2) {
            fwd[w[0].index()] = Some(RouteInfo::NextHop(w[1]));
        }
        // Walk the forward windows back to front — the same overwrite order
        // the reversed-path construction had, should a path revisit a node.
        for w in path.windows(2).rev() {
            rev[w[1].index()] = Some(RouteInfo::NextHop(w[0]));
        }
    }
    (fwd, rev)
}
