//! The network layer of the node stack: per-flow routing decisions.
//!
//! Routes are predetermined per scenario (the paper's experiments fix each
//! flow's path or forwarder list up front), so this layer is pure lookup
//! tables: for every flow, a forward and a reverse table mapping each node
//! to its routing decision. Opportunistic schemes collapse to a single
//! decision at each direction's source (the forwarder list); per-hop
//! schemes get one next-hop entry per interior window of the path.

use wmn_mac::frame::RouteInfo;
use wmn_routing::forwarder_list;
use wmn_sim::{FlowId, NodeId};

use crate::scenario::{FlowSpec, Scenario};

/// Per-node routing decisions of one flow direction, indexed by `NodeId`
/// (ids are dense indices per [`Scenario::validate`]): `table[node]` is the
/// decision at `node`, `None` where the flow never routes through.
type RouteTable = Vec<Option<RouteInfo>>;

/// Both directions of one flow's routing decisions.
struct FlowRoutes {
    fwd: RouteTable,
    rev: RouteTable,
}

/// The network layer: routing decisions for every flow of a run.
pub(crate) struct NetLayer {
    flows: Vec<FlowRoutes>,
}

impl NetLayer {
    /// Builds the per-flow route tables from a validated scenario.
    pub(crate) fn build(scenario: &Scenario) -> Self {
        let flows = scenario
            .flows
            .iter()
            .map(|spec| {
                let (fwd, rev) = build_routes(spec, scenario);
                FlowRoutes { fwd, rev }
            })
            .collect();
        NetLayer { flows }
    }

    /// The routing decision of `flow` at `node`, in the given direction
    /// (`forward` = towards the flow's destination). `None` where the flow
    /// never routes through `node`.
    pub(crate) fn route(&self, flow: FlowId, node: NodeId, forward: bool) -> Option<RouteInfo> {
        let routes = &self.flows[flow.index()];
        let table = if forward { &routes.fwd } else { &routes.rev };
        table[node.index()].clone()
    }
}

/// Builds per-node routing decisions for both directions of a flow, as
/// dense `NodeId`-indexed tables pre-sized to the placement. The path is
/// borrowed throughout; the only reversal is materialised for the
/// opportunistic forwarder list, which genuinely needs a reversed slice.
fn build_routes(spec: &FlowSpec, scenario: &Scenario) -> (RouteTable, RouteTable) {
    let n = scenario.positions.len();
    let mut fwd: RouteTable = vec![None; n];
    let mut rev: RouteTable = vec![None; n];
    let path = &spec.path;
    if scenario.scheme.is_opportunistic() {
        let reversed: Vec<NodeId> = path.iter().rev().copied().collect();
        fwd[path[0].index()] =
            Some(RouteInfo::Opportunistic { list: forwarder_list(path, scenario.max_forwarders) });
        rev[reversed[0].index()] = Some(RouteInfo::Opportunistic {
            list: forwarder_list(&reversed, scenario.max_forwarders),
        });
    } else {
        for w in path.windows(2) {
            fwd[w[0].index()] = Some(RouteInfo::NextHop(w[1]));
        }
        // Walk the forward windows back to front — the same overwrite order
        // the reversed-path construction had, should a path revisit a node.
        for w in path.windows(2).rev() {
            rev[w[1].index()] = Some(RouteInfo::NextHop(w[0]));
        }
    }
    (fwd, rev)
}
