//! The shared clean-decode / corruption seam of both engines.
//!
//! The single-loop runner (`PhyIo::apply_bit_errors`) and the shard
//! workers (`ShardWorker::apply_bit_errors`) used to carry byte-for-byte
//! copies of the same BER logic; this module is the one implementation both
//! now delegate to, so the two engines cannot drift apart on what "decoded"
//! means.
//!
//! # Zero-copy fast path
//!
//! The draws are planned in two passes: first every subframe's survival is
//! drawn into a corruption bitmask (consuming the RNG in exactly the order
//! the old mutate-as-you-go loop did), and only *then* is anything copied.
//! A frame whose mask comes back empty — the overwhelmingly common case on
//! a healthy channel — is handed to the MAC as [`RxFrame::Shared`], a pure
//! `Arc` refcount bump of the broadcast allocation: zero heap allocations
//! per clean decode. Only a frame with at least one corrupted subframe pays
//! for a copy, and that copy-on-write branch is the single waived
//! `.clone()` seam the `no-frame-deep-clone` lint rule polices.

use std::sync::Arc;

use wmn_mac::frame::{Frame, RxFrame, SUBFRAME_OVERHEAD_BYTES};
use wmn_phy::BerModel;
use wmn_sim::StreamRng;

/// Subframe-count ceiling of the bitmask fast path. Frames wider than this
/// (none exist today; aggregation is capped at 16) take an eager-clone
/// fallback with the identical draw order.
const MASK_WIDTH: usize = 128;

/// Applies the i.i.d. BER model to one received frame: the header must
/// survive for anything to be decoded; each subframe's CRC fails
/// independently. Returns `None` when the header is lost, a shared handle
/// when every subframe survived, and an owned corrupted-flagged copy
/// otherwise.
///
/// Draw order (header, then each subframe in frame order, one draw each) is
/// identical on every branch — the clean/corrupt split is decided *after*
/// the draws, so this refactor is invisible to the RNG streams.
///
/// Public so the bench suite can pin the fast path's zero-allocation claim
/// with the counting allocator; simulation code reaches it through the
/// engines' `apply_bit_errors` wrappers.
pub fn decode_frame(ber: &BerModel, rng: &mut StreamRng, frame: &Arc<Frame>) -> Option<RxFrame> {
    if !ber.unit_survives(frame.header_bytes(), rng) {
        return None;
    }
    let d = match &**frame {
        // An ACK has no subframes: header survival is the whole decode.
        Frame::Ack(_) => return Some(RxFrame::Shared(Arc::clone(frame))),
        Frame::Data(d) => d,
    };
    if d.subframes.len() > MASK_WIDTH {
        return Some(decode_wide(ber, rng, d));
    }
    let mut mask: u128 = 0;
    for (i, sf) in d.subframes.iter().enumerate() {
        let bytes = SUBFRAME_OVERHEAD_BYTES + sf.packet.header.wire_bytes;
        if !ber.unit_survives(bytes, rng) {
            mask |= 1 << i;
        }
    }
    if mask == 0 {
        return Some(RxFrame::Shared(Arc::clone(frame)));
    }
    // Copy-on-write branch: at least one subframe was corrupted, so this
    // receiver needs its own flags. The DataFrame clone is shallow (the
    // subframe storage is an `Arc`); the `iter_mut` below is what detaches
    // a private copy to write the flags into.
    // lint:allow(no-frame-deep-clone): the corruption seam — the one place a received frame is legitimately copied, to flag this receiver's own subframe losses without touching the shared broadcast allocation
    let mut owned = d.clone();
    for (i, sf) in owned.subframes.iter_mut().enumerate() {
        if mask & (1 << i) != 0 {
            sf.corrupted = true;
        }
    }
    Some(Frame::Data(owned).into())
}

/// Fallback for frames wider than the bitmask: clone eagerly and mutate in
/// place, drawing in the exact same order as the masked path.
fn decode_wide(ber: &BerModel, rng: &mut StreamRng, d: &wmn_mac::DataFrame) -> RxFrame {
    // lint:allow(no-frame-deep-clone): corruption-seam fallback for frames wider than the 128-bit mask — same waiver as the masked branch above
    let mut owned = d.clone();
    for sf in owned.subframes.iter_mut() {
        let bytes = SUBFRAME_OVERHEAD_BYTES + sf.packet.header.wire_bytes;
        if !ber.unit_survives(bytes, rng) {
            sf.corrupted = true;
        }
    }
    Frame::Data(owned).into()
}
