//! The layered node stack and its thin orchestrating `Runner`.
//!
//! Where a single 950-line monolith used to own every piece of per-node and
//! per-flow state, the stack is now four layers with typed seams, mirroring
//! the protocol stack the paper describes:
//!
//! * [`phy_io`] — the shared medium, per-station receivers, the in-flight
//!   arrival slab, bit errors, and station mobility;
//! * [`mac_engine`] — one [`wmn_mac::MacEntity`] per station, built through
//!   the [`wmn_mac::MacScheme`] factory trait (enum-dispatched by
//!   [`Scheme`](crate::Scheme), so the runner never names a concrete MAC);
//! * [`net_layer`] — per-flow forward/reverse routing tables;
//! * [`flow_layer`] — transport endpoints and workload generators per flow.
//!
//! The `Runner` owns the event queue and the clock and interprets each
//! layer's outputs against the others: MAC actions become transmissions,
//! timers and deliveries; transport actions become enqueues and RTO timers;
//! mobility ticks re-sample trajectories into the medium's incremental
//! link-state refresh. Layer state is only ever touched through the layer's
//! own interface, which is what makes per-layer change (a new MAC scheme, a
//! new mobility model, per-node parallelism some day) local.
//!
//! # Determinism
//!
//! The decomposition is behaviour-preserving by construction: every RNG
//! stream keeps its label and consumption order, every event is scheduled
//! in the same sequence, and a static [`MotionPlan`](wmn_topology::MotionPlan)
//! schedules no mobility ticks at all — so static-mobility runs are
//! byte-identical to the pre-stack runner (pinned by the golden snapshots,
//! the sweep determinism suite, and the committed CI baseline).

pub mod decode;
pub mod flow_layer;
pub mod mac_engine;
pub mod net_layer;
pub mod phy_io;
pub mod shard;

use wmn_mac::frame::{Frame, NetHeader, Packet, Proto, RouteInfo};
use wmn_mac::{ActionSink, FramePool, MacAction, RateClass, TimerToken};
use wmn_phy::medium::BusyTransition;
use wmn_phy::ArrivalOutcome;
use wmn_routing::LinkGraph;
use wmn_sim::{EventQueue, FlowId, NodeId, RngDirectory, SimDuration, SimTime};
use wmn_transport::{TcpAction, TcpSegment, UdpDatagram};

use crate::scenario::{Scenario, Workload};
use crate::trace::{FrameKind, Trace, TraceEvent, TraceKind};
use flow_layer::FlowLayer;
use mac_engine::MacEngine;
use net_layer::NetLayer;
use phy_io::PhyIo;

/// TCP-specific per-flow results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpFlowResult {
    /// Data segments that arrived at the receiver (incl. duplicates).
    pub segments_arrived: u64,
    /// Arrivals out of order (the paper's re-ordering count).
    pub reordered_arrivals: u64,
    /// Sender retransmissions.
    pub retransmits: u64,
    /// Sender RTO expirations.
    pub timeouts: u64,
}

impl TcpFlowResult {
    /// Fraction of arrivals that were out of order.
    pub fn reorder_fraction(&self) -> f64 {
        if self.segments_arrived == 0 {
            return 0.0;
        }
        self.reordered_arrivals as f64 / self.segments_arrived as f64
    }
}

/// VoIP-specific per-flow results. `PartialEq` compares the `f64` fields
/// exactly — that is the point: the executor's determinism tests assert
/// bit-identical results across worker counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VoipFlowResult {
    /// Datagrams handed to the MAC at the source.
    pub sent: u64,
    /// Distinct datagrams that arrived.
    pub received: u64,
    /// Combined loss: network losses plus late (> 52 ms) arrivals.
    pub loss_fraction: f64,
    /// Mean one-way delay of on-time datagrams.
    pub mean_delay: SimDuration,
    /// 95th-percentile one-way delay (all received datagrams). A p95 near
    /// the 52 ms budget signals imminent late-loss.
    pub p95_delay: SimDuration,
    /// Mean inter-arrival jitter of the delay series.
    pub jitter: SimDuration,
    /// Mean opinion score per the paper's R-factor model.
    pub mos: f64,
}

/// Results for one flow of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowResult {
    /// The flow id (index into the scenario's flow list).
    pub flow: FlowId,
    /// Application-level bytes delivered in order.
    pub delivered_bytes: u64,
    /// Delivered bytes over the scenario duration, Mbps.
    pub throughput_mbps: f64,
    /// TCP details, if the workload was TCP.
    pub tcp: Option<TcpFlowResult>,
    /// VoIP details, if the workload was VoIP.
    pub voip: Option<VoipFlowResult>,
}

/// Results of one complete run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Per-flow results, in scenario order.
    pub flows: Vec<FlowResult>,
    /// Sum of per-flow throughput, Mbps.
    pub total_throughput_mbps: f64,
    /// Per-station MAC statistics (frames sent/received, timeouts, drops).
    pub mac_stats: Vec<wmn_mac::MacStats>,
}

/// The simulation's event vocabulary, dispatched by the [`Runner`].
#[derive(Debug)]
pub(crate) enum Event {
    TxEnd {
        node: NodeId,
    },
    RxStart {
        arrival: u64,
    },
    RxEnd {
        arrival: u64,
    },
    MacTimer {
        node: NodeId,
        token: TimerToken,
    },
    TcpRto {
        flow: FlowId,
        generation: u64,
    },
    FlowStart {
        flow: FlowId,
    },
    UdpSend {
        flow: FlowId,
    },
    WebStart {
        flow: FlowId,
    },
    /// Re-sample every moving node's trajectory and refresh the medium.
    /// Never scheduled for static motion plans.
    MobilityTick,
    /// Recompute every flow's min-ETX route from the medium's current link
    /// state. Never scheduled unless [`Scenario::route_refresh`] is set.
    RouteRefresh,
}

/// Executes a scenario to completion and returns per-flow results.
///
/// # Engines
///
/// [`Scenario::shards`] selects the engine: `None` runs the single-loop
/// runner below (the legacy schedule every committed baseline pins);
/// `Some(k)` runs the conservative sharded engine ([`shard`]), whose
/// results are bit-identical for every `k ≥ 1` but deliberately *not*
/// byte-identical to the legacy engine (per-entity RNG streams — see the
/// [`shard`] module docs for the contract).
///
/// # Thread safety
///
/// `run` is a pure function of `scenario`: the entire simulation world — MAC state
/// machines, receivers, medium, event queue, and every RNG stream — is built
/// from the scenario's master seed via [`RngDirectory`] and dropped before
/// returning. There are no globals, no interior mutability shared between
/// runs, and no ambient randomness, so concurrent `run` calls on different
/// scenarios (or different seeds of the same scenario) are independent.
/// [`Scenario`] and [`RunResult`] are `Send` (enforced below at compile
/// time), which is what lets `wmn_exec` move runs onto worker threads.
///
/// # Panics
///
/// Panics on malformed scenarios (empty paths, node ids out of range,
/// opportunistic schemes with single-node paths, …) — these are programming
/// errors in experiment definitions, not runtime conditions.
pub fn run(scenario: &Scenario) -> RunResult {
    if let Some(shards) = scenario.shards {
        return shard::run_sharded(scenario, shards);
    }
    let mut runner = Runner::build(scenario);
    runner.run_loop();
    runner.results(scenario)
}

// Compile-time audit for the parallel executor: a scenario must be movable
// to a worker thread and its result movable back. If a future change smuggles
// an `Rc`/raw pointer into either type, this fails to compile instead of
// failing at the `wmn_exec` call site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Scenario>();
    assert_send::<RunResult>();
};

/// Like [`run`], but also returns the full event [`Trace`] of the run.
/// Tracing costs memory proportional to the number of transmissions; use
/// short durations.
pub fn run_traced(scenario: &Scenario) -> (RunResult, Trace) {
    let mut runner = Runner::build(scenario);
    runner.trace = Some(Trace::default());
    runner.run_loop();
    let trace = runner.trace.take().expect("installed above");
    (runner.results(scenario), trace)
}

/// The thin orchestrator: owns the queue, the clock, and the four layers,
/// and interprets each layer's actions against the others.
struct Runner {
    end: SimTime,
    phy: PhyIo,
    macs: MacEngine,
    net: NetLayer,
    flows: FlowLayer,
    queue: EventQueue<Event>,
    /// Live routing period, if the scenario enables refresh.
    route_refresh: Option<SimDuration>,
    /// Recycler for transport packet bodies: once warm, minting a TCP
    /// segment or UDP datagram body reuses a retired buffer instead of
    /// allocating.
    pool: FramePool,
    trace: Option<Trace>,
}

impl Runner {
    fn build(scenario: &Scenario) -> Runner {
        if let Err(msg) = scenario.validate() {
            panic!("malformed scenario: {msg}");
        }
        let dir = RngDirectory::new(scenario.seed);
        let macs =
            MacEngine::build(&scenario.scheme, &scenario.params, scenario.positions.len(), &dir);
        let net = NetLayer::build(scenario);
        let flows = FlowLayer::build(scenario, &dir);
        let mut queue = flows.initial_queue(scenario, &dir);
        // Pre-size the per-station schedule burst: in steady state each
        // station keeps a backoff timer, a TxEnd and in-flight deliveries
        // pending at once, so the heap warms up here instead of growing
        // inside the hot loop.
        queue.reserve(scenario.positions.len() * 4);
        let phy = PhyIo::build(scenario, &dir);
        if phy.is_mobile() {
            // First re-sample one tick in: t = 0 is the placement itself.
            queue.schedule_in(phy.motion_tick(), Event::MobilityTick);
        }
        if let Some(interval) = scenario.route_refresh {
            // First refresh one interval in: the build-time tables *are* the
            // min-ETX routes over the t = 0 placement.
            queue.schedule_in(interval, Event::RouteRefresh);
        }
        Runner {
            end: SimTime::ZERO + scenario.duration,
            phy,
            macs,
            net,
            flows,
            queue,
            route_refresh: scenario.route_refresh,
            pool: FramePool::default(),
            trace: None,
        }
    }

    /// The simulation clock. There is exactly one: the event queue's notion
    /// of "now" (the instant of the most recently popped event), so handlers
    /// and `schedule_in` can never drift apart.
    fn now(&self) -> SimTime {
        self.queue.now()
    }

    fn record(&mut self, node: NodeId, kind: TraceKind) {
        let at = self.now();
        if let Some(trace) = self.trace.as_mut() {
            trace.events.push(TraceEvent { at, node, kind });
        }
    }

    fn run_loop(&mut self) {
        // Phase attribution for the counting allocator: everything in the
        // loop is event-loop churn unless a nested scope (tx-path, queue)
        // claims it. No-op outside `wmn_alloc/count` builds.
        let _phase = wmn_alloc::phase_scope(wmn_alloc::Phase::EventLoop);
        while let Some((t, event)) = self.queue.pop() {
            if t > self.end {
                break;
            }
            self.dispatch(event);
        }
    }

    fn dispatch(&mut self, event: Event) {
        let now = self.now();
        match event {
            Event::TxEnd { node } => {
                self.record(node, TraceKind::TxEnd);
                let mut sink = self.macs.take_sink();
                self.macs.node(node).on_tx_end(now, &mut sink);
                self.apply_mac_actions(node, &mut sink);
                self.macs.park_sink(sink);
                if let Some(BusyTransition::BecameIdle) = self.phy.receiver(node).on_tx_end(now) {
                    let mut sink = self.macs.take_sink();
                    self.macs.node(node).on_idle(now, &mut sink);
                    self.apply_mac_actions(node, &mut sink);
                    self.macs.park_sink(sink);
                }
            }
            Event::RxStart { arrival } => {
                let Some(a) = self.phy.arrival(arrival) else {
                    return;
                };
                let (node, decodable, power) = (a.node, a.decodable, a.power_dbm);
                if let Some(BusyTransition::BecameBusy) =
                    self.phy.receiver(node).on_arrival_start(arrival, decodable, power, now)
                {
                    let mut sink = self.macs.take_sink();
                    self.macs.node(node).on_busy(now, &mut sink);
                    self.apply_mac_actions(node, &mut sink);
                    self.macs.park_sink(sink);
                }
            }
            Event::RxEnd { arrival } => {
                let Some(state) = self.phy.take_arrival(arrival) else {
                    return;
                };
                let node = state.node;
                let (outcome, transition) = self.phy.receiver(node).on_arrival_end(arrival, now);
                // Idle first so relay waits measure from the channel edge.
                if let Some(BusyTransition::BecameIdle) = transition {
                    let mut sink = self.macs.take_sink();
                    self.macs.node(node).on_idle(now, &mut sink);
                    self.apply_mac_actions(node, &mut sink);
                    self.macs.park_sink(sink);
                }
                if outcome == ArrivalOutcome::Clean && state.decodable {
                    if let Some(frame) = self.phy.apply_bit_errors(&state.frame) {
                        if self.trace.is_some() {
                            let (kind, flow, frame_seq) = match &*frame {
                                Frame::Data(d) => (FrameKind::Data, d.flow, d.frame_seq),
                                Frame::Ack(a) => (FrameKind::Ack, a.flow, a.frame_seq),
                            };
                            self.record(
                                node,
                                TraceKind::Decoded {
                                    kind,
                                    from: frame.transmitter(),
                                    flow,
                                    frame_seq,
                                },
                            );
                        }
                        let mut sink = self.macs.take_sink();
                        self.macs.node(node).on_frame_rx(frame, now, &mut sink);
                        self.apply_mac_actions(node, &mut sink);
                        self.macs.park_sink(sink);
                    }
                }
            }
            Event::MacTimer { node, token } => {
                let mut sink = self.macs.take_sink();
                self.macs.node(node).on_timer(token, now, &mut sink);
                self.apply_mac_actions(node, &mut sink);
                self.macs.park_sink(sink);
            }
            Event::TcpRto { flow, generation } => {
                let actions = self
                    .flows
                    .flow_mut(flow)
                    .tcp_tx
                    .as_mut()
                    .map(|tx| tx.on_rto(generation, now))
                    .unwrap_or_default();
                self.apply_tcp_sender_actions(flow, actions);
            }
            Event::FlowStart { flow } => self.start_flow(flow),
            Event::UdpSend { flow } => self.udp_send(flow),
            Event::WebStart { flow } => self.web_next_transfer(flow),
            Event::MobilityTick => {
                self.phy.advance_positions(now);
                let tick = self.phy.motion_tick();
                if now + tick <= self.end {
                    self.queue.schedule_in(tick, Event::MobilityTick);
                }
            }
            Event::RouteRefresh => {
                self.refresh_routes();
                let interval = self.route_refresh.expect("scheduled only when set");
                if now + interval <= self.end {
                    self.queue.schedule_in(interval, Event::RouteRefresh);
                }
            }
        }
    }

    /// One live routing pass: rebuild the link graph from the medium's
    /// current state and let the network layer re-derive its tables. The
    /// pass consumes no RNG; the analytic delivery model cannot produce a
    /// non-finite probability from finite positions, so graph construction
    /// only fails on a corrupted medium — in which case the last-known-good
    /// routes stay in force, same as a transient partition.
    fn refresh_routes(&mut self) {
        let Ok(graph) = LinkGraph::try_from_medium(self.phy.medium()) else {
            return;
        };
        let changed = self.net.refresh(&graph);
        if self.trace.is_some() {
            for flow in changed {
                let path = self.net.path(flow).to_vec();
                let src = path[0];
                self.record(src, TraceKind::RouteChange { flow, path });
            }
        }
    }

    fn apply_mac_actions(&mut self, node: NodeId, sink: &mut ActionSink) {
        while let Some(action) = sink.pop() {
            match action {
                MacAction::StartTx { frame, rate } => self.start_transmission(node, frame, rate),
                MacAction::SetTimer { delay, token } => {
                    self.queue.schedule_in(delay, Event::MacTimer { node, token });
                }
                MacAction::Deliver { packet } => self.handle_delivery(node, packet),
                MacAction::Drop { packet, reason } => {
                    // End-to-end recovery (TCP retransmission / VoIP loss
                    // accounting) covers MAC drops; the trace just records
                    // the loss for the packet-level pipeline.
                    self.record(node, TraceKind::Drop { flow: packet.header.flow, reason });
                }
            }
        }
    }

    fn start_transmission(&mut self, node: NodeId, frame: Frame, rate: RateClass) {
        let _phase = wmn_alloc::phase_scope(wmn_alloc::Phase::TxPath);
        if self.trace.is_some() {
            let (kind, flow, frame_seq, subframes) = match &frame {
                Frame::Data(d) => (FrameKind::Data, d.flow, d.frame_seq, d.subframes.len()),
                Frame::Ack(a) => (FrameKind::Ack, a.flow, a.frame_seq, 0),
            };
            let wire_bytes = frame.wire_bytes();
            self.record(node, TraceKind::TxStart { kind, flow, frame_seq, subframes, wire_bytes });
        }
        let params = self.phy.params();
        let rate = match rate {
            RateClass::Data => params.data_rate,
            RateClass::Basic => params.basic_rate,
        };
        let airtime = params.airtime(rate, frame.wire_bytes());
        let now = self.now();
        if let Some(BusyTransition::BecameBusy) = self.phy.receiver(node).on_tx_start(now) {
            let mut sink = self.macs.take_sink();
            self.macs.node(node).on_busy(now, &mut sink);
            self.apply_mac_actions(node, &mut sink);
            self.macs.park_sink(sink);
        }
        self.queue.schedule_in(airtime, Event::TxEnd { node });
        self.phy.broadcast(node, frame, airtime, &mut self.queue);
    }

    fn handle_delivery(&mut self, node: NodeId, packet: Packet) {
        let _phase = wmn_alloc::phase_scope(wmn_alloc::Phase::Queue);
        let flow_id = packet.header.flow;
        let spec_src = self.flows.flow(flow_id).spec.src();
        let spec_dst = self.flows.flow(flow_id).spec.dst();
        let forward = packet.header.src == spec_src;

        if packet.header.dst == node {
            // Reached a transport endpoint.
            if node == spec_dst && forward {
                self.record(node, TraceKind::Delivered { flow: flow_id });
                self.deliver_at_destination(flow_id, packet);
            } else if node == spec_src && !forward {
                self.deliver_at_source(flow_id, packet);
            }
            return;
        }
        // Intermediate hop (predetermined routing only): forward along.
        if let Some(route) = self.net.route(flow_id, node, forward) {
            if self.trace.is_some() {
                if let RouteInfo::NextHop(next_hop) = &route {
                    let next_hop = *next_hop;
                    self.record(node, TraceKind::Forward { flow: flow_id, next_hop });
                }
            }
            let now = self.now();
            let mut sink = self.macs.take_sink();
            self.macs.node(node).on_enqueue(packet, route, now, &mut sink);
            self.apply_mac_actions(node, &mut sink);
            self.macs.park_sink(sink);
        }
    }

    fn deliver_at_destination(&mut self, flow_id: FlowId, packet: Packet) {
        let now = self.now();
        match packet.header.proto {
            Proto::Tcp => {
                let actions = {
                    let flow = self.flows.flow_mut(flow_id);
                    let Some(rx) = flow.tcp_rx.as_mut() else { return };
                    match TcpSegment::decode(&packet.body) {
                        Some(TcpSegment::Data { seq, ts, retx }) => rx.on_data(seq, ts, retx),
                        _ => return,
                    }
                };
                self.apply_tcp_receiver_actions(flow_id, actions);
            }
            Proto::Udp => {
                let flow = self.flows.flow_mut(flow_id);
                if let Some(dg) = UdpDatagram::decode(&packet.body) {
                    flow.udp_sink.on_datagram(dg, packet.header.wire_bytes, now);
                }
            }
        }
    }

    fn deliver_at_source(&mut self, flow_id: FlowId, packet: Packet) {
        let now = self.now();
        let actions = {
            let flow = self.flows.flow_mut(flow_id);
            let Some(tx) = flow.tcp_tx.as_mut() else { return };
            match TcpSegment::decode(&packet.body) {
                Some(TcpSegment::Ack { cum_ack, ts_echo }) => tx.on_ack(cum_ack, ts_echo, now),
                _ => return,
            }
        };
        self.apply_tcp_sender_actions(flow_id, actions);
    }

    fn apply_tcp_sender_actions(&mut self, flow_id: FlowId, actions: Vec<TcpAction>) {
        for action in actions {
            match action {
                TcpAction::Send { segment, wire_bytes } => {
                    self.enqueue_transport_packet(flow_id, segment, wire_bytes, true);
                }
                TcpAction::SetRtoTimer { delay, generation } => {
                    self.queue.schedule_in(delay, Event::TcpRto { flow: flow_id, generation });
                }
                TcpAction::SendComplete => {
                    // Web workload: think, then start the next transfer.
                    let off = {
                        let flow = self.flows.flow_mut(flow_id);
                        match (&flow.spec.workload, flow.web_rng.as_mut()) {
                            (Workload::Web(model), Some(rng)) => Some(model.draw_off_period(rng)),
                            _ => None,
                        }
                    };
                    if let Some(off) = off {
                        self.queue.schedule_in(off, Event::WebStart { flow: flow_id });
                    }
                }
            }
        }
    }

    fn apply_tcp_receiver_actions(&mut self, flow_id: FlowId, actions: Vec<TcpAction>) {
        for action in actions {
            if let TcpAction::Send { segment, wire_bytes } = action {
                self.enqueue_transport_packet(flow_id, segment, wire_bytes, false);
            }
        }
    }

    fn enqueue_transport_packet(
        &mut self,
        flow_id: FlowId,
        segment: TcpSegment,
        wire_bytes: u32,
        forward: bool,
    ) {
        let _phase = wmn_alloc::phase_scope(wmn_alloc::Phase::Queue);
        let spec = &self.flows.flow(flow_id).spec;
        let (src, dst) = if forward { (spec.src(), spec.dst()) } else { (spec.dst(), spec.src()) };
        let Some(route) = self.net.route(flow_id, src, forward) else { return };
        let packet = Packet::new(
            NetHeader { flow: flow_id, src, dst, proto: Proto::Tcp, wire_bytes },
            self.pool.mint_body_with(|out| segment.encode_into(out)),
        );
        let now = self.now();
        let mut sink = self.macs.take_sink();
        self.macs.node(src).on_enqueue(packet, route, now, &mut sink);
        self.apply_mac_actions(src, &mut sink);
        self.macs.park_sink(sink);
    }

    fn start_flow(&mut self, flow_id: FlowId) {
        let now = self.now();
        match self.flows.flow(flow_id).spec.workload.clone() {
            Workload::Ftp => {
                let actions = self
                    .flows
                    .flow_mut(flow_id)
                    .tcp_tx
                    .as_mut()
                    .map(|tx| tx.start_unlimited(now))
                    .unwrap_or_default();
                self.apply_tcp_sender_actions(flow_id, actions);
            }
            Workload::Web(_) => self.web_next_transfer(flow_id),
            _ => {}
        }
    }

    fn web_next_transfer(&mut self, flow_id: FlowId) {
        let now = self.now();
        let actions = {
            let flow = self.flows.flow_mut(flow_id);
            let Workload::Web(model) = flow.spec.workload else { return };
            let Some(rng) = flow.web_rng.as_mut() else { return };
            let segments = model.draw_transfer_segments(rng);
            flow.tcp_tx.as_mut().map(|tx| tx.request_send(segments, now)).unwrap_or_default()
        };
        self.apply_tcp_sender_actions(flow_id, actions);
    }

    fn udp_send(&mut self, flow_id: FlowId) {
        let now = self.now();
        let (bytes, next) = match self.flows.flow(flow_id).spec.workload {
            Workload::Voip(wmn_traffic::VoipModel { packet_bytes, .. }) => (packet_bytes, None),
            Workload::Cbr(wmn_traffic::CbrModel { packet_bytes, interval }) => {
                (packet_bytes, Some(interval))
            }
            _ => return,
        };
        let src = self.flows.flow(flow_id).spec.src();
        let dst = self.flows.flow(flow_id).spec.dst();
        // Route lookup precedes the counter bumps: a (hypothetical)
        // source without a forward route sends nothing and counts nothing.
        let Some(route) = self.net.route(flow_id, src, true) else { return };
        let packet = {
            let flow = self.flows.flow_mut(flow_id);
            let dg = UdpDatagram { seq: flow.udp_seq, sent_at_ns: now.as_nanos() };
            flow.udp_seq += 1;
            flow.udp_sent += 1;
            Packet::new(
                NetHeader { flow: flow_id, src, dst, proto: Proto::Udp, wire_bytes: bytes },
                self.pool.mint_body_with(|out| dg.encode_into(out)),
            )
        };
        let mut sink = self.macs.take_sink();
        self.macs.node(src).on_enqueue(packet, route, now, &mut sink);
        self.apply_mac_actions(src, &mut sink);
        self.macs.park_sink(sink);
        if let Some(interval) = next {
            if now + interval <= self.end {
                self.queue.schedule_in(interval, Event::UdpSend { flow: flow_id });
            }
        }
    }

    fn results(&self, scenario: &Scenario) -> RunResult {
        let flows = self.flows.results(scenario);
        let total = flows.iter().map(|f| f.throughput_mbps).sum();
        RunResult { flows, total_throughput_mbps: total, mac_stats: self.macs.stats() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FlowSpec, Scheme};
    use wmn_phy::{PhyParams, Position};
    use wmn_topology::{MotionPlan, NodePath, Waypoint};

    fn line_positions(n: usize) -> Vec<Position> {
        (0..n).map(|i| Position::new(i as f64 * 5.0, 0.0)).collect()
    }

    fn ftp_scenario(scheme: Scheme, path: Vec<u32>, positions: Vec<Position>) -> Scenario {
        Scenario {
            name: "test".into(),
            params: PhyParams::paper_216(),
            positions,
            scheme,
            flows: vec![FlowSpec {
                path: path.into_iter().map(NodeId::new).collect(),
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(200),
            seed: 42,
            max_forwarders: 5,
            motion: MotionPlan::default(),
            route_refresh: None,
            shards: None,
        }
    }

    #[test]
    fn dcf_single_hop_delivers() {
        let s = ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1], line_positions(2));
        let r = run(&s);
        assert!(r.flows[0].delivered_bytes > 100_000, "got {}", r.flows[0].delivered_bytes);
        assert!(r.flows[0].throughput_mbps > 4.0, "got {}", r.flows[0].throughput_mbps);
        let tcp = r.flows[0].tcp.unwrap();
        assert_eq!(tcp.reordered_arrivals, 0, "DCF stop-and-wait never reorders");
    }

    #[test]
    fn dcf_multihop_beats_lossy_direct() {
        // The paper's premise: direct 0->3 (15 m) collapses, the 3-hop
        // route thrives (0.76 vs 7.04 Mbps in the paper).
        let direct =
            run(&ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 3], line_positions(4)));
        let routed =
            run(&ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1, 2, 3], line_positions(4)));
        let (d, r) = (direct.flows[0].throughput_mbps, routed.flows[0].throughput_mbps);
        assert!(r > 2.0 * d, "multihop {r} must dominate direct {d}");
        assert!(r > 3.0, "3-hop DCF should sustain a few Mbps, got {r}");
    }

    #[test]
    fn afr_aggregation_beats_plain_dcf() {
        let dcf =
            run(&ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1, 2, 3], line_positions(4)));
        let afr = run(&ftp_scenario(
            Scheme::Dcf { aggregation: 16 },
            vec![0, 1, 2, 3],
            line_positions(4),
        ));
        assert!(
            afr.flows[0].throughput_mbps > 1.3 * dcf.flows[0].throughput_mbps,
            "AFR {} must clearly beat DCF {}",
            afr.flows[0].throughput_mbps,
            dcf.flows[0].throughput_mbps
        );
    }

    #[test]
    fn ripple_delivers_in_order_and_beats_dcf() {
        let dcf =
            run(&ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1, 2, 3], line_positions(4)));
        let r16 = run(&ftp_scenario(
            Scheme::Ripple { aggregation: 16 },
            vec![0, 1, 2, 3],
            line_positions(4),
        ));
        let tcp = r16.flows[0].tcp.unwrap();
        assert_eq!(tcp.reordered_arrivals, 0, "RIPPLE must not reorder");
        assert!(
            r16.flows[0].throughput_mbps > dcf.flows[0].throughput_mbps,
            "RIPPLE-16 {} must beat DCF {}",
            r16.flows[0].throughput_mbps,
            dcf.flows[0].throughput_mbps
        );
    }

    #[test]
    fn ripple_without_aggregation_still_delivers() {
        let r1 = run(&ftp_scenario(
            Scheme::Ripple { aggregation: 1 },
            vec![0, 1, 2, 3],
            line_positions(4),
        ));
        assert!(r1.flows[0].throughput_mbps > 2.0, "got {}", r1.flows[0].throughput_mbps);
        assert_eq!(r1.flows[0].tcp.unwrap().reordered_arrivals, 0);
    }

    #[test]
    fn preexor_delivers_but_reorders() {
        let pre = run(&ftp_scenario(Scheme::PreExor, vec![0, 1, 2, 3], line_positions(4)));
        assert!(pre.flows[0].delivered_bytes > 50_000, "got {}", pre.flows[0].delivered_bytes);
        let tcp = pre.flows[0].tcp.unwrap();
        assert!(
            tcp.reordered_arrivals > 0,
            "opportunistic relaying with per-hop caching must reorder some packets"
        );
    }

    #[test]
    fn mcexor_delivers() {
        let mce = run(&ftp_scenario(Scheme::McExor, vec![0, 1, 2, 3], line_positions(4)));
        assert!(mce.flows[0].delivered_bytes > 50_000, "got {}", mce.flows[0].delivered_bytes);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let s =
            ftp_scenario(Scheme::Ripple { aggregation: 16 }, vec![0, 1, 2, 3], line_positions(4));
        let a = run(&s);
        let b = run(&s);
        assert_eq!(a.flows[0].delivered_bytes, b.flows[0].delivered_bytes);
        let mut s2 = s;
        s2.seed = 43;
        let c = run(&s2);
        assert_ne!(
            a.flows[0].delivered_bytes, c.flows[0].delivered_bytes,
            "different seeds should explore different sample paths"
        );
    }

    #[test]
    fn voip_flow_reports_mos() {
        let mut s =
            ftp_scenario(Scheme::Ripple { aggregation: 16 }, vec![0, 1, 2, 3], line_positions(4));
        s.flows[0].workload = Workload::Voip(wmn_traffic::VoipModel::paper());
        s.duration = SimDuration::from_millis(500);
        let r = run(&s);
        let v = r.flows[0].voip.expect("voip result");
        assert!(v.sent > 0);
        assert!(v.received > 0, "voice packets must get through");
        assert!(v.mos > 3.0, "a lone VoIP call on a clean mesh should be good: {}", v.mos);
    }

    #[test]
    fn cbr_saturates_and_delivers() {
        let mut s = ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1], line_positions(2));
        s.flows[0].workload = Workload::Cbr(wmn_traffic::CbrModel::saturating());
        let r = run(&s);
        assert!(r.flows[0].throughput_mbps > 10.0, "got {}", r.flows[0].throughput_mbps);
    }

    #[test]
    fn web_flow_transfers_data() {
        let mut s = ftp_scenario(Scheme::Dcf { aggregation: 16 }, vec![0, 1, 2], line_positions(3));
        s.flows[0].workload = Workload::Web(wmn_traffic::WebModel::paper());
        s.duration = SimDuration::from_millis(800);
        let r = run(&s);
        assert!(r.flows[0].delivered_bytes > 0, "web transfers must complete");
    }

    #[test]
    fn explicitly_static_motion_is_bit_identical_to_default() {
        // The runner must not consume RNG, schedule ticks, or perturb
        // anything for a plan that is structurally present but never moves.
        let base =
            ftp_scenario(Scheme::Ripple { aggregation: 16 }, vec![0, 1, 2, 3], line_positions(4));
        let mut explicit = base.clone();
        explicit.motion = MotionPlan { paths: vec![NodePath::Static; 4], ..MotionPlan::default() };
        let mut zero_drift = base.clone();
        zero_drift.motion = MotionPlan {
            paths: vec![NodePath::Drift { vx_mps: 0.0, vy_mps: 0.0 }; 4],
            ..MotionPlan::default()
        };
        let a = run(&base);
        assert_eq!(a, run(&explicit), "explicit static paths must change nothing");
        assert_eq!(a, run(&zero_drift), "zero-velocity drift is static");
    }

    #[test]
    fn departing_node_starves_the_flow() {
        // A 2-node FTP flow whose receiver drifts away at 60 m/s: the link
        // dies mid-run, so a mobile run must deliver strictly less than the
        // static one — and still complete without panicking.
        let base = ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1], line_positions(2));
        let mut mobile = base.clone();
        mobile.duration = SimDuration::from_millis(400);
        let mut static_long = base;
        static_long.duration = SimDuration::from_millis(400);
        mobile.motion = MotionPlan {
            paths: vec![NodePath::Static, NodePath::Drift { vx_mps: 60.0, vy_mps: 0.0 }],
            tick: SimDuration::from_millis(10),
        };
        let moving = run(&mobile);
        let parked = run(&static_long);
        assert!(
            moving.flows[0].delivered_bytes < parked.flows[0].delivered_bytes / 2,
            "a departing receiver must starve the flow: mobile {} vs static {}",
            moving.flows[0].delivered_bytes,
            parked.flows[0].delivered_bytes
        );
        assert!(moving.flows[0].delivered_bytes > 0, "the early, close-range phase delivers");
    }

    #[test]
    fn waypoint_node_returns_and_recovers() {
        // A saturating CBR sender towards a receiver that walks out to
        // 100 m and (in one variant) back: datagrams flow again as soon as
        // the link returns, so the round trip must deliver strictly more
        // than staying away.
        let positions = line_positions(2);
        let away = MotionPlan {
            paths: vec![
                NodePath::Static,
                NodePath::Waypoints(vec![Waypoint {
                    at: SimTime::from_millis(100),
                    pos: Position::new(100.0, 0.0),
                }]),
            ],
            tick: SimDuration::from_millis(10),
        };
        let round_trip = MotionPlan {
            paths: vec![
                NodePath::Static,
                NodePath::Waypoints(vec![
                    Waypoint { at: SimTime::from_millis(100), pos: Position::new(100.0, 0.0) },
                    Waypoint { at: SimTime::from_millis(200), pos: Position::new(5.0, 0.0) },
                ]),
            ],
            tick: SimDuration::from_millis(10),
        };
        let mut gone = ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1], positions);
        gone.flows[0].workload = Workload::Cbr(wmn_traffic::CbrModel::saturating());
        gone.duration = SimDuration::from_millis(400);
        let mut back = gone.clone();
        gone.motion = away;
        back.motion = round_trip;
        let gone_r = run(&gone);
        let back_r = run(&back);
        assert!(
            back_r.flows[0].delivered_bytes > gone_r.flows[0].delivered_bytes,
            "returning to range must recover throughput: back {} vs gone {}",
            back_r.flows[0].delivered_bytes,
            gone_r.flows[0].delivered_bytes
        );
        assert!(gone_r.flows[0].delivered_bytes > 0, "the in-range phase delivers");
    }

    #[test]
    fn mobility_ticks_track_positions() {
        let mut s = ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1], line_positions(2));
        s.motion = MotionPlan {
            paths: vec![NodePath::Static, NodePath::Drift { vx_mps: 10.0, vy_mps: 0.0 }],
            tick: SimDuration::from_millis(50),
        };
        s.duration = SimDuration::from_millis(200);
        let mut runner = Runner::build(&s);
        runner.run_loop();
        let p = runner.phy.position(NodeId::new(1));
        // 200 ms at 10 m/s from x = 5: the last tick at or before the end
        // leaves the node at x = 7 (t = 200 ms).
        assert!((p.x - 7.0).abs() < 1e-9, "got {p}");
        assert_eq!(runner.phy.position(NodeId::new(0)), Position::new(0.0, 0.0));
    }

    #[test]
    fn route_refresh_on_static_topology_is_bit_identical() {
        // Over an unmoved placement the live link graph equals the
        // build-time one, so every refresh pass is a no-op: same results,
        // no RouteChange events, for any interval.
        let base =
            ftp_scenario(Scheme::Ripple { aggregation: 16 }, vec![0, 1, 2, 3], line_positions(4));
        for interval_ms in [1, 10, 37, 150] {
            let mut refreshed = base.clone();
            refreshed.route_refresh = Some(SimDuration::from_millis(interval_ms));
            let (r, trace) = run_traced(&refreshed);
            assert_eq!(run(&base), r, "refresh every {interval_ms} ms must change nothing");
            assert!(trace.route_changes(FlowId::new(0)).is_empty());
        }
    }

    #[test]
    fn route_refresh_rescues_a_drifting_relay() {
        // A line 0-(5,0)-(10,0)-(15,0) with a spare relay at (5,3). The
        // flow's relay (node 1) drifts away; the frozen table keeps talking
        // to the departed node forever, while a live refresh re-routes
        // through the spare and keeps the flow alive.
        let mut positions = line_positions(4);
        positions.push(Position::new(5.0, 3.0));
        let mut stale = ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1, 2, 3], positions);
        // CBR rather than FTP: each datagram looks the route up at send
        // time, so the rescue shows up as raw delivered bytes instead of
        // being masked by TCP's in-order wedge on a segment that died in a
        // stale-routed MAC queue.
        stale.flows[0].workload = Workload::Cbr(wmn_traffic::CbrModel {
            packet_bytes: 1000,
            interval: SimDuration::from_millis(2),
        });
        stale.duration = SimDuration::from_millis(400);
        stale.motion = MotionPlan {
            paths: vec![
                NodePath::Static,
                NodePath::Drift { vx_mps: 0.0, vy_mps: 60.0 },
                NodePath::Static,
                NodePath::Static,
                NodePath::Static,
            ],
            tick: SimDuration::from_millis(10),
        };
        let mut live = stale.clone();
        live.route_refresh = Some(SimDuration::from_millis(50));
        let (live_r, trace) = run_traced(&live);
        let stale_r = run(&stale);
        let changes = trace.route_changes(FlowId::new(0));
        assert!(!changes.is_empty(), "the drift must trigger a re-route");
        let (_, last_path) = changes.last().expect("non-empty");
        assert!(
            last_path.contains(&NodeId::new(4)),
            "the final route must use the spare relay, got {last_path:?}"
        );
        assert!(
            live_r.flows[0].delivered_bytes > stale_r.flows[0].delivered_bytes,
            "live refresh {} must beat the frozen route {}",
            live_r.flows[0].delivered_bytes,
            stale_r.flows[0].delivered_bytes
        );
    }

    #[test]
    #[should_panic(expected = "malformed scenario")]
    fn malformed_motion_plans_are_rejected() {
        let mut s = ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1], line_positions(2));
        s.motion = MotionPlan {
            paths: vec![NodePath::Static; 3], // 3 paths, 2 stations
            ..MotionPlan::default()
        };
        let _ = run(&s);
    }
}
