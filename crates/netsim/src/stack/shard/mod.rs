//! The sharded conservative engine: intra-scenario parallelism with
//! bit-identical results at any shard count.
//!
//! # The window protocol
//!
//! Stations are partitioned into spatial strips (`partition`); each
//! shard's `worker` owns its stations' MAC/PHY state, the flows sourced
//! at those stations, and a keyed event queue. The coordinator repeatedly
//! grants a *window*: with `T_min` the earliest pending event anywhere and
//! `L` the propagation delay of the closest sensed cross-shard pair
//! ([`Medium::min_cross_group_delay`]), every event strictly before
//! `H = min(T_min + L, segment_end)` is safe to process in parallel — a
//! frame transmitted at `t ≥ T_min` reaches another shard no earlier than
//! `t + L ≥ H`, so nothing processed inside the window can be invalidated
//! by a peer. Boundary-crossing receptions ride `worker::CrossShardArrival`
//! records to the owner's mailbox at the window barrier, carrying the
//! transmitter-minted [`EventKey`]s that keep the receiver's pop order
//! identical to a single-queue run.
//!
//! Two degenerate regimes keep the protocol exact instead of approximate:
//! no sensed cross-shard pair (`L = None`) means shards cannot interact
//! until the topology changes, so the window opens to the whole segment;
//! a zero-delay pair (`L = 0`) leaves no safe parallel window at all, so
//! the coordinator falls back to serial steps — one globally-minimal event
//! per round — and the run degrades to the single-loop schedule rather
//! than to a wrong one.
//!
//! # Barriers
//!
//! Mobility ticks and route refreshes mutate global state (the medium's
//! link matrix, the routing tables), so they run on the coordinator at
//! segment boundaries, behind the only `.write()` locks in the engine:
//! every worker is parked between windows whenever the coordinator holds
//! one. Each barrier also invalidates the lookahead, which is recomputed
//! from the moved topology before the next window. Events scheduled at
//! exactly a barrier's instant process *after* the barrier's effect —
//! a fixed rule, applied identically at every shard count.
//!
//! # The determinism contract
//!
//! For a fixed scenario, `shards: Some(k)` yields bit-identical
//! [`RunResult`]s for every `k ≥ 1` — pinned by the engine tests and the
//! CI shard-determinism job. `Some(k)` is *not* byte-identical to the
//! legacy single-loop engine (`shards: None`): sharded runs consume
//! per-entity RNG streams (`shard/medium/<tx>`, `shard/ber/<rx>`) where
//! the legacy engine consumes two global ones, a relabelling that keeps
//! per-entity draw order shard-invariant. The committed CI baseline runs
//! the legacy engine and stays byte-for-byte unchanged.

pub(crate) mod partition;
pub(crate) mod worker;

use std::sync::{Arc, Barrier, Mutex, RwLock};

use wmn_phy::Medium;
use wmn_routing::LinkGraph;
use wmn_sim::{EventKey, FlowId, SimDuration, SimTime};

use crate::scenario::Scenario;
use crate::stack::flow_layer::{flow_result, FlowEndpoints};
use crate::stack::net_layer::NetLayer;
use crate::stack::phy_io::advance_medium_positions;
use crate::stack::RunResult;
use partition::partition_stations;
use worker::{Command, CrossShardArrival, ShardWorker, WindowReport};

/// Executes a scenario on `shards` conservative shards and returns the
/// same [`RunResult`] any other shard count would produce.
///
/// # Panics
///
/// Panics on malformed scenarios, like the single-loop engine.
pub(crate) fn run_sharded(scenario: &Scenario, shards: u32) -> RunResult {
    if let Err(msg) = scenario.validate() {
        panic!("malformed scenario: {msg}");
    }
    let part = partition_stations(&scenario.positions, shards);
    let k = part.shard_count();
    let owner = Arc::new(part.owner);
    let flow_owner: Arc<Vec<u32>> =
        Arc::new(scenario.flows.iter().map(|f| owner[f.src().index()]).collect());
    let medium =
        Arc::new(RwLock::new(Medium::new(scenario.params.clone(), scenario.positions.clone())));
    let net = Arc::new(RwLock::new(NetLayer::build(scenario)));

    let workers: Vec<ShardWorker> = (0..k as u32)
        .map(|shard| {
            ShardWorker::build(
                scenario,
                shard,
                Arc::clone(&owner),
                Arc::clone(&flow_owner),
                Arc::clone(&medium),
                Arc::clone(&net),
            )
        })
        .collect();
    // The first horizon needs every shard's earliest pending event; read it
    // off the freshly-seeded queues before the threads take ownership.
    let mut next: Vec<Option<(SimTime, EventKey)>> =
        workers.iter().map(ShardWorker::next_pending).collect();

    let end = SimTime::ZERO + scenario.duration;
    // Legacy semantics: events at exactly `end` still process, so the open
    // horizon bound ("strictly before") sits one representable instant past
    // the end of time.
    let eot = end + SimDuration::from_nanos(1);
    let mut next_mobility =
        (!scenario.motion.is_static()).then(|| SimTime::ZERO + scenario.motion.tick);
    let mut next_refresh = scenario.route_refresh.map(|interval| SimTime::ZERO + interval);

    let start = Barrier::new(k + 1);
    let done = Barrier::new(k + 1);
    let command = Mutex::new(Command::Stop);
    let mailboxes: Vec<Mutex<Vec<CrossShardArrival>>> =
        (0..k).map(|_| Mutex::new(Vec::new())).collect();
    let reports: Vec<Mutex<WindowReport>> =
        (0..k).map(|_| Mutex::new(WindowReport::default())).collect();

    let workers: Vec<ShardWorker> = std::thread::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let (start, done, command) = (&start, &done, &command);
                let (mailbox, report) = (&mailboxes[i], &reports[i]);
                scope.spawn(move || worker_loop(w, start, done, command, mailbox, report))
            })
            .collect();

        loop {
            // One inter-barrier segment: windows may not cross the next
            // global mutation (mobility tick / route refresh).
            let seg_end =
                [next_mobility, next_refresh].into_iter().flatten().min().unwrap_or(eot).min(eot);
            let lookahead =
                medium.read().expect("medium lock poisoned").min_cross_group_delay(&owner);
            while let Some((t_min, _, min_shard)) = earliest(&next) {
                if t_min >= seg_end {
                    break;
                }
                let cmd = match lookahead {
                    // No sensed cross-shard pair: shards cannot interact
                    // before the next topology change.
                    None => Command::Window { horizon: seg_end },
                    // A zero-delay pair leaves no safe window: degrade to
                    // the exact serial schedule, one global minimum per
                    // round.
                    Some(SimDuration::ZERO) => Command::Step { shard: min_shard },
                    Some(l) => Command::Window { horizon: (t_min + l).min(seg_end) },
                };
                *command.lock().expect("command lock poisoned") = cmd;
                start.wait();
                done.wait();
                merge_round(&reports, &mailboxes, &owner, &mut next);
            }
            if seg_end >= eot {
                break;
            }
            // Global-state barriers, in a fixed order (mobility first, then
            // routing over the moved topology). Workers are parked at
            // `start.wait()`, so these are the engine's only write locks.
            if next_mobility == Some(seg_end) {
                {
                    let mut medium = medium.write().expect("medium lock poisoned");
                    advance_medium_positions(
                        &mut medium,
                        &scenario.motion,
                        &scenario.positions,
                        seg_end,
                    );
                }
                let tick = scenario.motion.tick;
                next_mobility = (seg_end + tick <= end).then(|| seg_end + tick);
            }
            if next_refresh == Some(seg_end) {
                let graph = {
                    let medium = medium.read().expect("medium lock poisoned");
                    LinkGraph::try_from_medium(&medium).ok()
                };
                // A corrupted medium keeps the last-known-good routes in
                // force, same as the single-loop engine.
                if let Some(graph) = graph {
                    net.write().expect("net lock poisoned").refresh(&graph);
                }
                let interval = scenario.route_refresh.expect("scheduled only when set");
                next_refresh = (seg_end + interval <= end).then(|| seg_end + interval);
            }
        }

        *command.lock().expect("command lock poisoned") = Command::Stop;
        start.wait();
        handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
    });

    merge_results(scenario, &workers, &owner, &flow_owner)
}

/// One worker thread: park at the start barrier, obey the coordinator's
/// command, report, park at the done barrier. On `Stop` the worker returns
/// its state for the results merge *without* touching the done barrier —
/// the coordinator stops waiting there too.
fn worker_loop(
    mut w: ShardWorker,
    start: &Barrier,
    done: &Barrier,
    command: &Mutex<Command>,
    mailbox: &Mutex<Vec<CrossShardArrival>>,
    report: &Mutex<WindowReport>,
) -> ShardWorker {
    loop {
        start.wait();
        let cmd = *command.lock().expect("command lock poisoned");
        if let Command::Stop = cmd {
            return w;
        }
        // Frames routed here at the previous boundary enter the queue
        // before any processing, whatever the command.
        for entry in mailbox.lock().expect("mailbox lock poisoned").drain(..) {
            w.inject(entry);
        }
        match cmd {
            Command::Window { horizon } => w.run_window(horizon),
            Command::Step { shard } => {
                if shard == w.shard {
                    w.step();
                }
            }
            Command::Stop => unreachable!("handled above"),
        }
        *report.lock().expect("report lock poisoned") = w.take_report();
        done.wait();
    }
}

/// The earliest pending `(time, key)` across shards and the shard holding
/// it. Keys are globally unique, so the minimum is never ambiguous — which
/// is exactly what makes the serial-step fallback deterministic.
fn earliest(next: &[Option<(SimTime, EventKey)>]) -> Option<(SimTime, EventKey, u32)> {
    let mut best: Option<(SimTime, EventKey, u32)> = None;
    for (shard, pending) in next.iter().enumerate() {
        let Some((t, key)) = *pending else { continue };
        if best.map_or(true, |(bt, bk, _)| (t, key) < (bt, bk)) {
            best = Some((t, key, shard as u32));
        }
    }
    best
}

/// The window-boundary merge: collect every worker's report, route the
/// boundary-crossing receptions to their owners' mailboxes, and fold them
/// into the pending-event view. The cross-shard sort order is cosmetic —
/// receivers order by `(time, key)` regardless — but it makes mailbox
/// contents (and any future boundary audit) independent of thread timing.
fn merge_round(
    reports: &[Mutex<WindowReport>],
    mailboxes: &[Mutex<Vec<CrossShardArrival>>],
    owner: &[u32],
    next: &mut [Option<(SimTime, EventKey)>],
) {
    let mut crossing: Vec<CrossShardArrival> = Vec::new();
    for (shard, slot) in reports.iter().enumerate() {
        let report = std::mem::take(&mut *slot.lock().expect("report lock poisoned"));
        next[shard] = report.next;
        crossing.extend(report.outbox);
    }
    crossing.sort_by_key(|e| (e.rx_start, e.src_shard, e.emit_seq));
    for entry in crossing {
        let dst = owner[entry.node.index()] as usize;
        // An injected arrival's RxStart may precede everything the owner
        // still has queued; the pending view must see it so the next
        // horizon (and the serial-step argmin) stays conservative. RxEnd
        // needs no fold: it strictly follows its RxStart.
        let candidate = Some((entry.rx_start, entry.start_key));
        if next[dst].is_none() || candidate < next[dst] {
            next[dst] = candidate;
        }
        mailboxes[dst].lock().expect("mailbox lock poisoned").push(entry);
    }
}

/// Stitches the per-shard worker states into one [`RunResult`]: each
/// station's MAC statistics come from its owner, each flow's sender-side
/// endpoints from the shard owning its source and receiver-side endpoints
/// from the shard owning its destination — through the same
/// [`flow_result`] math as the single-loop engine.
fn merge_results(
    scenario: &Scenario,
    workers: &[ShardWorker],
    owner: &[u32],
    flow_owner: &[u32],
) -> RunResult {
    let per_shard: Vec<Vec<wmn_mac::MacStats>> =
        workers.iter().map(ShardWorker::mac_stats).collect();
    let mac_stats: Vec<wmn_mac::MacStats> =
        (0..owner.len()).map(|i| per_shard[owner[i] as usize][i]).collect();
    let flows: Vec<_> = scenario
        .flows
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let id = FlowId::new(i as u32);
            let src_rt = workers[flow_owner[i] as usize].flow_rt(id);
            let dst_rt = workers[owner[spec.dst().index()] as usize].flow_rt(id);
            flow_result(
                FlowEndpoints {
                    spec: &src_rt.spec,
                    id,
                    tcp_tx: src_rt.tcp_tx.as_ref(),
                    tcp_rx: dst_rt.tcp_rx.as_ref(),
                    udp_sink: &dst_rt.udp_sink,
                    udp_sent: src_rt.udp_sent,
                },
                scenario.duration,
            )
        })
        .collect();
    let total = flows.iter().map(|f| f.throughput_mbps).sum();
    RunResult { flows, total_throughput_mbps: total, mac_stats }
}

#[cfg(test)]
mod tests {
    use crate::scenario::{FlowSpec, Scenario, Scheme, Workload};
    use crate::stack::run;
    use wmn_phy::{PhyParams, Position};
    use wmn_sim::{NodeId, SimDuration};
    use wmn_topology::{MotionPlan, NodePath};

    fn line_positions(n: usize) -> Vec<Position> {
        (0..n).map(|i| Position::new(i as f64 * 5.0, 0.0)).collect()
    }

    fn base_scenario() -> Scenario {
        Scenario {
            name: "shard-test".into(),
            params: PhyParams::paper_216(),
            positions: line_positions(4),
            scheme: Scheme::Dcf { aggregation: 1 },
            flows: vec![FlowSpec {
                path: vec![0, 1, 2, 3].into_iter().map(NodeId::new).collect(),
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(200),
            seed: 42,
            max_forwarders: 5,
            motion: MotionPlan::default(),
            route_refresh: None,
            shards: None,
        }
    }

    /// Runs the scenario at every shard count in `counts` and asserts the
    /// results are bit-identical to the 1-shard run ([`RunResult`] derives
    /// `PartialEq` with exact `f64` comparison — that is the contract).
    fn assert_shard_invariant(mut scenario: Scenario, counts: &[u32]) {
        scenario.shards = Some(1);
        let reference = run(&scenario);
        assert!(
            reference.flows.iter().any(|f| f.delivered_bytes > 0),
            "a degenerate run that delivers nothing proves nothing"
        );
        for &k in counts {
            scenario.shards = Some(k);
            assert_eq!(reference, run(&scenario), "{k} shards must be bit-identical to 1");
        }
    }

    #[test]
    fn static_runs_are_shard_count_invariant() {
        assert_shard_invariant(base_scenario(), &[2, 3, 8]);
    }

    #[test]
    fn aggregating_and_opportunistic_macs_are_shard_count_invariant() {
        let mut ripple = base_scenario();
        ripple.scheme = Scheme::Ripple { aggregation: 16 };
        assert_shard_invariant(ripple, &[2, 4]);
        let mut exor = base_scenario();
        exor.scheme = Scheme::McExor;
        assert_shard_invariant(exor, &[2, 4]);
    }

    #[test]
    fn mixed_workloads_and_opposed_flows_are_shard_count_invariant() {
        // Flows in both directions: sender-side and receiver-side endpoint
        // halves land on different shards and must stitch back exactly.
        let mut s = base_scenario();
        s.flows = vec![
            FlowSpec {
                path: vec![0, 1, 2, 3].into_iter().map(NodeId::new).collect(),
                workload: Workload::Voip(wmn_traffic::VoipModel::paper()),
            },
            FlowSpec {
                path: vec![3, 2, 1, 0].into_iter().map(NodeId::new).collect(),
                workload: Workload::Ftp,
            },
            FlowSpec {
                path: vec![1, 2].into_iter().map(NodeId::new).collect(),
                workload: Workload::Cbr(wmn_traffic::CbrModel {
                    packet_bytes: 1000,
                    interval: SimDuration::from_millis(2),
                }),
            },
        ];
        s.duration = SimDuration::from_millis(300);
        assert_shard_invariant(s, &[2, 8]);
    }

    #[test]
    fn mobile_runs_are_shard_count_invariant() {
        // A drifting receiver exercises the mobility barrier and the
        // lookahead recomputation it forces.
        let mut s = base_scenario();
        s.duration = SimDuration::from_millis(300);
        s.motion = MotionPlan {
            paths: vec![
                NodePath::Static,
                NodePath::Static,
                NodePath::Static,
                NodePath::Drift { vx_mps: 20.0, vy_mps: 0.0 },
            ],
            tick: SimDuration::from_millis(10),
        };
        assert_shard_invariant(s, &[2, 4]);
    }

    #[test]
    fn route_refreshing_mobile_runs_are_shard_count_invariant() {
        // Mobility plus live routing: both barrier kinds fire, including at
        // coinciding instants (tick 10 ms, refresh 50 ms).
        let mut positions = line_positions(4);
        positions.push(Position::new(5.0, 3.0));
        let mut s = base_scenario();
        s.positions = positions;
        s.flows[0].workload = Workload::Cbr(wmn_traffic::CbrModel {
            packet_bytes: 1000,
            interval: SimDuration::from_millis(2),
        });
        s.duration = SimDuration::from_millis(400);
        s.motion = MotionPlan {
            paths: vec![
                NodePath::Static,
                NodePath::Drift { vx_mps: 0.0, vy_mps: 60.0 },
                NodePath::Static,
                NodePath::Static,
                NodePath::Static,
            ],
            tick: SimDuration::from_millis(10),
        };
        s.route_refresh = Some(SimDuration::from_millis(50));
        assert_shard_invariant(s, &[2, 5]);
    }

    #[test]
    fn colocated_stations_degrade_to_the_exact_serial_schedule() {
        // Two co-located stations in different shards: zero cross-shard
        // propagation delay, so every round is a serial step — the protocol
        // must still terminate and stay shard-count invariant.
        let mut s = base_scenario();
        s.positions = vec![Position::new(0.0, 0.0); 2];
        s.flows = vec![FlowSpec {
            path: vec![0, 1].into_iter().map(NodeId::new).collect(),
            workload: Workload::Ftp,
        }];
        s.duration = SimDuration::from_millis(50);
        assert_shard_invariant(s, &[2]);
    }

    #[test]
    fn requesting_more_shards_than_stations_is_safe() {
        assert_shard_invariant(base_scenario(), &[64]);
    }
}
