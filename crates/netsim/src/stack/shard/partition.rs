//! Deterministic spatial partition of stations into shards.
//!
//! Shards are strips along the placement's longest axis: stations are sorted
//! by that coordinate (ties broken by node id) and cut into nearly-equal
//! contiguous chunks. Strips keep spatially-close stations together, which
//! maximises the minimum cross-shard distance — and therefore the
//! conservative lookahead bound the window scheduler runs on. The partition
//! is a pure function of the `t = 0` placement and the shard count, so every
//! engine instance (and every rerun) derives the identical ownership map.

use wmn_phy::Position;
use wmn_sim::NodeId;

/// The ownership map of one sharded run.
pub(crate) struct Partition {
    /// Shard owning each station, indexed densely by node id.
    pub(crate) owner: Vec<u32>,
    /// Each shard's stations, ascending node order.
    pub(crate) members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Number of shards actually in use (the requested count clamped to the
    /// station count).
    pub(crate) fn shard_count(&self) -> usize {
        self.members.len()
    }
}

/// Cuts the placement into `shards` spatial strips (clamped to the station
/// count — more shards than stations would only mint empty workers).
pub(crate) fn partition_stations(positions: &[Position], shards: u32) -> Partition {
    let n = positions.len();
    let k = (shards.max(1) as usize).min(n.max(1));
    // Strip along whichever axis spans more: fewer cross-shard neighbours,
    // larger minimum cross-shard distance, better lookahead.
    let span = |coord: fn(&Position) -> f64| {
        positions
            .iter()
            .map(coord)
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), c| (lo.min(c), hi.max(c)))
    };
    let (min_x, max_x) = span(|p| p.x);
    let (min_y, max_y) = span(|p| p.y);
    let along_x = (max_x - min_x) >= (max_y - min_y);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let (ca, cb) = if along_x {
            (positions[a].x, positions[b].x)
        } else {
            (positions[a].y, positions[b].y)
        };
        // total_cmp: a placement with NaN coordinates is rejected upstream,
        // but the sort must stay a total order regardless.
        ca.total_cmp(&cb).then(a.cmp(&b))
    });
    let mut owner = vec![0u32; n];
    let (base, extra) = (n / k, n % k);
    let mut cursor = 0;
    for shard in 0..k {
        let take = base + usize::from(shard < extra);
        for _ in 0..take {
            owner[order[cursor]] = shard as u32;
            cursor += 1;
        }
    }
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (node, &shard) in owner.iter().enumerate() {
        members[shard as usize].push(NodeId::new(node as u32));
    }
    Partition { owner, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> Vec<Position> {
        (0..n).map(|i| Position::new(i as f64 * 5.0, 0.0)).collect()
    }

    #[test]
    fn strips_are_contiguous_along_the_long_axis() {
        let part = partition_stations(&line(8), 2);
        assert_eq!(part.owner, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(part.members[0], (0..4).map(NodeId::new).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_counts_spread_the_remainder_over_the_first_shards() {
        let part = partition_stations(&line(7), 3);
        let sizes: Vec<usize> = part.members.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
    }

    #[test]
    fn shard_count_is_clamped_to_the_station_count() {
        let part = partition_stations(&line(3), 16);
        assert_eq!(part.shard_count(), 3);
        assert!(part.members.iter().all(|m| m.len() == 1));
    }

    #[test]
    fn vertical_placements_strip_along_y() {
        let positions: Vec<Position> = (0..6).map(|i| Position::new(0.0, i as f64 * 3.0)).collect();
        let part = partition_stations(&positions, 2);
        assert_eq!(part.owner, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn one_shard_owns_everything() {
        let part = partition_stations(&line(5), 1);
        assert!(part.owner.iter().all(|&s| s == 0));
        assert_eq!(part.members.len(), 1);
    }

    #[test]
    fn coordinate_ties_break_by_node_id() {
        let positions = vec![Position::new(0.0, 0.0); 4];
        let part = partition_stations(&positions, 2);
        assert_eq!(part.owner, vec![0, 0, 1, 1]);
    }
}
