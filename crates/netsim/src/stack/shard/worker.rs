//! One shard's worker: the per-shard slice of the simulation world and the
//! event-dispatch mirror it runs inside conservative windows.
//!
//! # Replicate everything, own a subset
//!
//! Every worker builds the *full* per-entity state vectors — one MAC per
//! station, one transport endpoint set per flow, one receiver per station —
//! from the same [`RngDirectory`] derivations, then only ever touches the
//! entries it owns: the stations its shard was assigned and the flows whose
//! source station it owns (sender-side halves) or whose destination it owns
//! (receiver-side halves). Building is derivation-only (no stream is
//! advanced by construction), so replication costs memory but never
//! perturbs a single random draw. The payoff is that no per-entity state is
//! ever shared: the only cross-shard channels are the read-locked
//! [`Medium`]/[`NetLayer`] snapshots (written exclusively by the
//! coordinator, between windows) and the [`CrossShardArrival`] frames
//! exchanged at window boundaries.
//!
//! # Determinism
//!
//! Every event a worker schedules carries a content-derived [`EventKey`]
//! minted from the origin entity's own counter, so the per-shard
//! [`KeyedEventQueue`]s pop in the `(time, key)` order a single global
//! keyed loop would use — the bit-identity contract between shard counts.
//! Randomness is consumed from per-entity streams only: `shard/medium/<tx>`
//! for a transmitter's shadowing draws, `shard/ber/<rx>` for a receiver's
//! bit errors, and the per-entity `mac/<i>`, `web/<i>`, `voip/<i>` streams
//! the layers already own. A stream's consumption order then depends only
//! on its entity's own event order, which the keyed schedule fixes
//! independently of the shard count.

use std::sync::{Arc, RwLock};

use wmn_mac::frame::{Frame, NetHeader, Packet, Proto, RouteInfo, RxFrame};
use wmn_mac::{ActionSink, FramePool, MacAction, MacStats, RateClass};
use wmn_phy::medium::BusyTransition;
use wmn_phy::{ArrivalOutcome, BerModel, Medium, PhyParams, Receiver, RxPlan};
use wmn_sim::{EventKey, FlowId, KeyedEventQueue, NodeId, RngDirectory, SimTime, StreamRng};
use wmn_transport::{TcpAction, TcpSegment, UdpDatagram};

use crate::scenario::{Scenario, Workload};
use crate::stack::flow_layer::{FlowLayer, FlowRt};
use crate::stack::mac_engine::MacEngine;
use crate::stack::net_layer::NetLayer;
use crate::stack::phy_io::{ArrivalSlab, ArrivalState};
use crate::stack::Event;

/// Key lane for events originated by a station (TxEnd, Rx*, MacTimer).
const KIND_NODE: u32 = 0;
/// Key lane for events originated by a flow (FlowStart, UdpSend, WebStart,
/// TcpRto).
const KIND_FLOW: u32 = 1;

/// A frame crossing the shard boundary: one planned reception whose
/// receiver lives on another shard. The transmitting worker computes the
/// full reception plan (times, power, decodability) and mints both event
/// keys from the transmitter's lane, so the receiving worker schedules the
/// exact `(time, key)` pair a single-shard run would have used; only the
/// slab id is local.
pub(crate) struct CrossShardArrival {
    /// The receiving station (owned by the target shard).
    pub(crate) node: NodeId,
    /// Shared handle to the transmitted frame.
    pub(crate) frame: Arc<Frame>,
    /// Whether the arrival is strong enough to decode.
    pub(crate) decodable: bool,
    /// Received power in dBm.
    pub(crate) power_dbm: f64,
    /// Absolute instant the reception starts.
    pub(crate) rx_start: SimTime,
    /// Absolute instant the reception ends.
    pub(crate) rx_end: SimTime,
    /// Key of the RxStart event (transmitter's lane).
    pub(crate) start_key: EventKey,
    /// Key of the RxEnd event (transmitter's lane).
    pub(crate) end_key: EventKey,
    /// The emitting shard, for the boundary merge's audit order.
    pub(crate) src_shard: u32,
    /// The emitting worker's running emission counter, ditto.
    pub(crate) emit_seq: u64,
}

/// What a worker hands back after each round: the frames it emitted across
/// the boundary and its next pending `(time, key)`.
#[derive(Default)]
pub(crate) struct WindowReport {
    /// Cross-shard receptions emitted this round.
    pub(crate) outbox: Vec<CrossShardArrival>,
    /// Earliest pending event after the round, `None` when drained.
    pub(crate) next: Option<(SimTime, EventKey)>,
}

/// A coordinator instruction for one round.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Command {
    /// Process every owned event strictly before `horizon`.
    Window {
        /// The conservative horizon of this window.
        horizon: SimTime,
    },
    /// Zero-lookahead serial round: the named shard processes exactly one
    /// event (the global `(time, key)` minimum); everyone else only drains
    /// their mailbox.
    Step {
        /// The shard holding the globally minimal event.
        shard: u32,
    },
    /// Shut down and return the worker state for the results merge.
    Stop,
}

/// One shard's worker state (see the module docs for the ownership model).
pub(crate) struct ShardWorker {
    pub(super) shard: u32,
    end: SimTime,
    owner: Arc<Vec<u32>>,
    flow_owner: Arc<Vec<u32>>,
    medium: Arc<RwLock<Medium>>,
    net: Arc<RwLock<NetLayer>>,
    queue: KeyedEventQueue<Event>,
    pub(super) macs: MacEngine,
    pub(super) flows: FlowLayer,
    receivers: Vec<Receiver>,
    arrivals: ArrivalSlab,
    plan_scratch: Vec<RxPlan>,
    ber: BerModel,
    params: PhyParams,
    /// Per-transmitter shadowing streams (`shard/medium/<tx>`); only the
    /// owned stations' streams are ever advanced.
    medium_rngs: Vec<StreamRng>,
    /// Per-receiver bit-error streams (`shard/ber/<rx>`), ditto.
    ber_rngs: Vec<StreamRng>,
    /// Per-station key counters (lane `KIND_NODE`).
    node_seq: Vec<u64>,
    /// Per-flow key counters (lane `KIND_FLOW`), advanced by the source
    /// shard only.
    flow_seq: Vec<u64>,
    outbox: Vec<CrossShardArrival>,
    emit_seq: u64,
    /// Recycler for the transport packet bodies this shard's flows mint
    /// (shard-local, so recycling order stays shard-count-invariant for
    /// the buffers themselves and invisible to results either way).
    pool: FramePool,
}

impl ShardWorker {
    /// Builds one shard's worker from a validated scenario. Seeds the
    /// per-shard queue with the arrival processes of the flows this shard
    /// owns, pre-sized to exactly that share of the seeded events
    /// (a shard owning none of them still gets one slot — see
    /// [`KeyedEventQueue::with_capacity`]).
    pub(crate) fn build(
        scenario: &Scenario,
        shard: u32,
        owner: Arc<Vec<u32>>,
        flow_owner: Arc<Vec<u32>>,
        medium: Arc<RwLock<Medium>>,
        net: Arc<RwLock<NetLayer>>,
    ) -> ShardWorker {
        let dir = RngDirectory::new(scenario.seed);
        let n = scenario.positions.len();
        let macs = MacEngine::build(&scenario.scheme, &scenario.params, n, &dir);
        let flows = FlowLayer::build(scenario, &dir);
        let mut flow_seq = vec![0u64; scenario.flows.len()];
        let seeds = flows.seed_events(scenario, &dir);
        let owned_seed = |event: &Event| {
            let flow = match event {
                Event::FlowStart { flow } | Event::UdpSend { flow } => *flow,
                _ => unreachable!("seed events are flow arrivals"),
            };
            (flow_owner[flow.index()] == shard).then_some(flow)
        };
        let owned_count = seeds.iter().filter(|(_, e)| owned_seed(e).is_some()).count();
        let mut queue = KeyedEventQueue::with_capacity(owned_count);
        for (delay, event) in seeds {
            let Some(flow) = owned_seed(&event) else { continue };
            let key = EventKey::new(KIND_FLOW, flow.index() as u32, flow_seq[flow.index()]);
            flow_seq[flow.index()] += 1;
            queue.schedule_keyed_in(delay, key, event);
        }
        // Pre-size the shard's share of the per-station schedule burst
        // (backoff timer + TxEnd + in-flight deliveries per owned station).
        queue.reserve(owner.iter().filter(|&&s| s == shard).count() * 4);
        ShardWorker {
            shard,
            end: SimTime::ZERO + scenario.duration,
            owner,
            flow_owner,
            medium,
            net,
            queue,
            macs,
            flows,
            receivers: (0..n).map(|_| Receiver::new()).collect(),
            arrivals: ArrivalSlab::default(),
            plan_scratch: Vec::new(),
            ber: BerModel::new(scenario.params.ber),
            params: scenario.params.clone(),
            medium_rngs: (0..n).map(|i| dir.indexed_stream("shard/medium", i as u32)).collect(),
            ber_rngs: (0..n).map(|i| dir.indexed_stream("shard/ber", i as u32)).collect(),
            node_seq: vec![0; n],
            flow_seq,
            outbox: Vec::new(),
            emit_seq: 0,
            pool: FramePool::default(),
        }
    }

    /// Earliest pending `(time, key)`, for the coordinator's first horizon.
    pub(crate) fn next_pending(&self) -> Option<(SimTime, EventKey)> {
        self.queue.peek()
    }

    /// Parks a boundary-crossing reception in the local slab and schedules
    /// its RxStart/RxEnd pair under the transmitter-minted keys.
    pub(crate) fn inject(&mut self, entry: CrossShardArrival) {
        debug_assert_eq!(self.owner[entry.node.index()], self.shard, "routed to the wrong shard");
        let id = self.arrivals.alloc(ArrivalState {
            node: entry.node,
            frame: entry.frame,
            decodable: entry.decodable,
            power_dbm: entry.power_dbm,
        });
        self.queue.schedule_keyed(entry.rx_start, entry.start_key, Event::RxStart { arrival: id });
        self.queue.schedule_keyed(entry.rx_end, entry.end_key, Event::RxEnd { arrival: id });
    }

    /// Processes every owned event strictly before `horizon`.
    pub(crate) fn run_window(&mut self, horizon: SimTime) {
        while let Some((_, event)) = self.queue.pop_before(horizon) {
            self.dispatch(event);
        }
    }

    /// Zero-lookahead serial step: processes exactly one event (the
    /// coordinator guarantees it is the global `(time, key)` minimum).
    pub(crate) fn step(&mut self) {
        if let Some((_, event)) = self.queue.pop() {
            self.dispatch(event);
        }
    }

    /// Drains the outbox and reports the next pending event.
    pub(crate) fn take_report(&mut self) -> WindowReport {
        WindowReport { outbox: std::mem::take(&mut self.outbox), next: self.queue.peek() }
    }

    /// Per-station MAC statistics of this worker's full engine (only the
    /// owned stations' entries ever advanced past their initial state).
    pub(crate) fn mac_stats(&self) -> Vec<MacStats> {
        self.macs.stats()
    }

    /// One flow's runtime state, for the results merge.
    pub(crate) fn flow_rt(&self, id: FlowId) -> &FlowRt {
        self.flows.flow(id)
    }

    fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Mints the next key on a station's lane.
    fn node_key(&mut self, node: NodeId) -> EventKey {
        let seq = &mut self.node_seq[node.index()];
        let key = EventKey::new(KIND_NODE, node.index() as u32, *seq);
        *seq += 1;
        key
    }

    /// Mints the next key on a flow's lane (source shard only).
    fn flow_key(&mut self, flow: FlowId) -> EventKey {
        debug_assert_eq!(self.flow_owner[flow.index()], self.shard, "flow lane owned elsewhere");
        let seq = &mut self.flow_seq[flow.index()];
        let key = EventKey::new(KIND_FLOW, flow.index() as u32, *seq);
        *seq += 1;
        key
    }

    /// The event-dispatch mirror of the single-loop `Runner::dispatch`,
    /// restricted to owned entities. Tracing is a legacy-engine feature;
    /// sharded runs never record.
    fn dispatch(&mut self, event: Event) {
        let now = self.now();
        match event {
            Event::TxEnd { node } => {
                let mut sink = self.macs.take_sink();
                self.macs.node(node).on_tx_end(now, &mut sink);
                self.apply_mac_actions(node, &mut sink);
                self.macs.park_sink(sink);
                if let Some(BusyTransition::BecameIdle) =
                    self.receivers[node.index()].on_tx_end(now)
                {
                    let mut sink = self.macs.take_sink();
                    self.macs.node(node).on_idle(now, &mut sink);
                    self.apply_mac_actions(node, &mut sink);
                    self.macs.park_sink(sink);
                }
            }
            Event::RxStart { arrival } => {
                let Some(a) = self.arrivals.peek(arrival) else {
                    return;
                };
                let (node, decodable, power) = (a.node, a.decodable, a.power_dbm);
                if let Some(BusyTransition::BecameBusy) =
                    self.receivers[node.index()].on_arrival_start(arrival, decodable, power, now)
                {
                    let mut sink = self.macs.take_sink();
                    self.macs.node(node).on_busy(now, &mut sink);
                    self.apply_mac_actions(node, &mut sink);
                    self.macs.park_sink(sink);
                }
            }
            Event::RxEnd { arrival } => {
                let Some(state) = self.arrivals.take(arrival) else {
                    return;
                };
                let node = state.node;
                let (outcome, transition) =
                    self.receivers[node.index()].on_arrival_end(arrival, now);
                // Idle first so relay waits measure from the channel edge.
                if let Some(BusyTransition::BecameIdle) = transition {
                    let mut sink = self.macs.take_sink();
                    self.macs.node(node).on_idle(now, &mut sink);
                    self.apply_mac_actions(node, &mut sink);
                    self.macs.park_sink(sink);
                }
                if outcome == ArrivalOutcome::Clean && state.decodable {
                    if let Some(frame) = self.apply_bit_errors(node, &state.frame) {
                        let mut sink = self.macs.take_sink();
                        self.macs.node(node).on_frame_rx(frame, now, &mut sink);
                        self.apply_mac_actions(node, &mut sink);
                        self.macs.park_sink(sink);
                    }
                }
            }
            Event::MacTimer { node, token } => {
                let mut sink = self.macs.take_sink();
                self.macs.node(node).on_timer(token, now, &mut sink);
                self.apply_mac_actions(node, &mut sink);
                self.macs.park_sink(sink);
            }
            Event::TcpRto { flow, generation } => {
                let actions = self
                    .flows
                    .flow_mut(flow)
                    .tcp_tx
                    .as_mut()
                    .map(|tx| tx.on_rto(generation, now))
                    .unwrap_or_default();
                self.apply_tcp_sender_actions(flow, actions);
            }
            Event::FlowStart { flow } => self.start_flow(flow),
            Event::UdpSend { flow } => self.udp_send(flow),
            Event::WebStart { flow } => self.web_next_transfer(flow),
            Event::MobilityTick | Event::RouteRefresh => {
                unreachable!("global passes are coordinator barriers in a sharded run")
            }
        }
    }

    /// The per-receiver twin of `PhyIo::apply_bit_errors`: the same shared
    /// [`decode_frame`](crate::stack::decode::decode_frame) seam (so the two
    /// engines cannot drift apart on decode semantics), but consuming the
    /// receiving station's own `shard/ber/<rx>` stream so the draw order is
    /// independent of how other stations' receptions interleave.
    fn apply_bit_errors(&mut self, rx: NodeId, frame: &Arc<Frame>) -> Option<RxFrame> {
        crate::stack::decode::decode_frame(&self.ber, &mut self.ber_rngs[rx.index()], frame)
    }

    fn apply_mac_actions(&mut self, node: NodeId, sink: &mut ActionSink) {
        while let Some(action) = sink.pop() {
            match action {
                MacAction::StartTx { frame, rate } => self.start_transmission(node, frame, rate),
                MacAction::SetTimer { delay, token } => {
                    let key = self.node_key(node);
                    self.queue.schedule_keyed_in(delay, key, Event::MacTimer { node, token });
                }
                MacAction::Deliver { packet } => self.handle_delivery(node, packet),
                MacAction::Drop { .. } => {
                    // End-to-end recovery (TCP retransmission / VoIP loss
                    // accounting) covers MAC drops; only the legacy traced
                    // runner records them.
                }
            }
        }
    }

    fn start_transmission(&mut self, node: NodeId, frame: Frame, rate: RateClass) {
        let rate = match rate {
            RateClass::Data => self.params.data_rate,
            RateClass::Basic => self.params.basic_rate,
        };
        let airtime = self.params.airtime(rate, frame.wire_bytes());
        let now = self.now();
        if let Some(BusyTransition::BecameBusy) = self.receivers[node.index()].on_tx_start(now) {
            let mut sink = self.macs.take_sink();
            self.macs.node(node).on_busy(now, &mut sink);
            self.apply_mac_actions(node, &mut sink);
            self.macs.park_sink(sink);
        }
        let key = self.node_key(node);
        self.queue.schedule_keyed_in(airtime, key, Event::TxEnd { node });
        self.broadcast(node, frame, airtime);
    }

    /// Fans one transmission out: plans receptions under a read-locked
    /// medium snapshot (consuming the transmitter's own shadowing stream,
    /// station-index order), schedules same-shard arrivals locally, and
    /// emits boundary-crossing ones to the outbox — keys minted here either
    /// way, in plan order, so the schedule is identical at any shard count.
    fn broadcast(&mut self, from: NodeId, frame: Frame, airtime: wmn_sim::SimDuration) {
        let mut plans = std::mem::take(&mut self.plan_scratch);
        {
            let medium = self.medium.read().expect("medium lock poisoned");
            medium.plan_transmission_into(from, &mut self.medium_rngs[from.index()], &mut plans);
        }
        let now = self.now();
        let frame = Arc::new(frame);
        for plan in &plans {
            let start_key = self.node_key(from);
            let end_key = self.node_key(from);
            let (rx_start, rx_end) = (now + plan.delay, now + plan.delay + airtime);
            if self.owner[plan.to.index()] == self.shard {
                let id = self.arrivals.alloc(ArrivalState {
                    node: plan.to,
                    frame: Arc::clone(&frame),
                    decodable: plan.decodable,
                    power_dbm: plan.power_dbm,
                });
                self.queue.schedule_keyed(rx_start, start_key, Event::RxStart { arrival: id });
                self.queue.schedule_keyed(rx_end, end_key, Event::RxEnd { arrival: id });
            } else {
                self.outbox.push(CrossShardArrival {
                    node: plan.to,
                    frame: Arc::clone(&frame),
                    decodable: plan.decodable,
                    power_dbm: plan.power_dbm,
                    rx_start,
                    rx_end,
                    start_key,
                    end_key,
                    src_shard: self.shard,
                    emit_seq: self.emit_seq,
                });
                self.emit_seq += 1;
            }
        }
        self.plan_scratch = plans;
    }

    fn route(&self, flow: FlowId, node: NodeId, forward: bool) -> Option<RouteInfo> {
        self.net.read().expect("net lock poisoned").route(flow, node, forward)
    }

    fn handle_delivery(&mut self, node: NodeId, packet: Packet) {
        let flow_id = packet.header.flow;
        let spec_src = self.flows.flow(flow_id).spec.src();
        let spec_dst = self.flows.flow(flow_id).spec.dst();
        let forward = packet.header.src == spec_src;

        if packet.header.dst == node {
            // Reached a transport endpoint.
            if node == spec_dst && forward {
                self.deliver_at_destination(flow_id, packet);
            } else if node == spec_src && !forward {
                self.deliver_at_source(flow_id, packet);
            }
            return;
        }
        // Intermediate hop (predetermined routing only): forward along.
        if let Some(route) = self.route(flow_id, node, forward) {
            let now = self.now();
            let mut sink = self.macs.take_sink();
            self.macs.node(node).on_enqueue(packet, route, now, &mut sink);
            self.apply_mac_actions(node, &mut sink);
            self.macs.park_sink(sink);
        }
    }

    fn deliver_at_destination(&mut self, flow_id: FlowId, packet: Packet) {
        let now = self.now();
        match packet.header.proto {
            Proto::Tcp => {
                let actions = {
                    let flow = self.flows.flow_mut(flow_id);
                    let Some(rx) = flow.tcp_rx.as_mut() else { return };
                    match TcpSegment::decode(&packet.body) {
                        Some(TcpSegment::Data { seq, ts, retx }) => rx.on_data(seq, ts, retx),
                        _ => return,
                    }
                };
                self.apply_tcp_receiver_actions(flow_id, actions);
            }
            Proto::Udp => {
                let flow = self.flows.flow_mut(flow_id);
                if let Some(dg) = UdpDatagram::decode(&packet.body) {
                    flow.udp_sink.on_datagram(dg, packet.header.wire_bytes, now);
                }
            }
        }
    }

    fn deliver_at_source(&mut self, flow_id: FlowId, packet: Packet) {
        let now = self.now();
        let actions = {
            let flow = self.flows.flow_mut(flow_id);
            let Some(tx) = flow.tcp_tx.as_mut() else { return };
            match TcpSegment::decode(&packet.body) {
                Some(TcpSegment::Ack { cum_ack, ts_echo }) => tx.on_ack(cum_ack, ts_echo, now),
                _ => return,
            }
        };
        self.apply_tcp_sender_actions(flow_id, actions);
    }

    fn apply_tcp_sender_actions(&mut self, flow_id: FlowId, actions: Vec<TcpAction>) {
        for action in actions {
            match action {
                TcpAction::Send { segment, wire_bytes } => {
                    self.enqueue_transport_packet(flow_id, segment, wire_bytes, true);
                }
                TcpAction::SetRtoTimer { delay, generation } => {
                    let key = self.flow_key(flow_id);
                    self.queue.schedule_keyed_in(
                        delay,
                        key,
                        Event::TcpRto { flow: flow_id, generation },
                    );
                }
                TcpAction::SendComplete => {
                    // Web workload: think, then start the next transfer.
                    let off = {
                        let flow = self.flows.flow_mut(flow_id);
                        match (&flow.spec.workload, flow.web_rng.as_mut()) {
                            (Workload::Web(model), Some(rng)) => Some(model.draw_off_period(rng)),
                            _ => None,
                        }
                    };
                    if let Some(off) = off {
                        let key = self.flow_key(flow_id);
                        self.queue.schedule_keyed_in(off, key, Event::WebStart { flow: flow_id });
                    }
                }
            }
        }
    }

    fn apply_tcp_receiver_actions(&mut self, flow_id: FlowId, actions: Vec<TcpAction>) {
        for action in actions {
            if let TcpAction::Send { segment, wire_bytes } = action {
                self.enqueue_transport_packet(flow_id, segment, wire_bytes, false);
            }
        }
    }

    fn enqueue_transport_packet(
        &mut self,
        flow_id: FlowId,
        segment: TcpSegment,
        wire_bytes: u32,
        forward: bool,
    ) {
        let spec = &self.flows.flow(flow_id).spec;
        let (src, dst) = if forward { (spec.src(), spec.dst()) } else { (spec.dst(), spec.src()) };
        let Some(route) = self.route(flow_id, src, forward) else { return };
        let packet = Packet::new(
            NetHeader { flow: flow_id, src, dst, proto: Proto::Tcp, wire_bytes },
            self.pool.mint_body_with(|out| segment.encode_into(out)),
        );
        let now = self.now();
        let mut sink = self.macs.take_sink();
        self.macs.node(src).on_enqueue(packet, route, now, &mut sink);
        self.apply_mac_actions(src, &mut sink);
        self.macs.park_sink(sink);
    }

    fn start_flow(&mut self, flow_id: FlowId) {
        let now = self.now();
        match self.flows.flow(flow_id).spec.workload.clone() {
            Workload::Ftp => {
                let actions = self
                    .flows
                    .flow_mut(flow_id)
                    .tcp_tx
                    .as_mut()
                    .map(|tx| tx.start_unlimited(now))
                    .unwrap_or_default();
                self.apply_tcp_sender_actions(flow_id, actions);
            }
            Workload::Web(_) => self.web_next_transfer(flow_id),
            _ => {}
        }
    }

    fn web_next_transfer(&mut self, flow_id: FlowId) {
        let now = self.now();
        let actions = {
            let flow = self.flows.flow_mut(flow_id);
            let Workload::Web(model) = flow.spec.workload else { return };
            let Some(rng) = flow.web_rng.as_mut() else { return };
            let segments = model.draw_transfer_segments(rng);
            flow.tcp_tx.as_mut().map(|tx| tx.request_send(segments, now)).unwrap_or_default()
        };
        self.apply_tcp_sender_actions(flow_id, actions);
    }

    fn udp_send(&mut self, flow_id: FlowId) {
        let now = self.now();
        let (bytes, next) = match self.flows.flow(flow_id).spec.workload {
            Workload::Voip(wmn_traffic::VoipModel { packet_bytes, .. }) => (packet_bytes, None),
            Workload::Cbr(wmn_traffic::CbrModel { packet_bytes, interval }) => {
                (packet_bytes, Some(interval))
            }
            _ => return,
        };
        let src = self.flows.flow(flow_id).spec.src();
        let dst = self.flows.flow(flow_id).spec.dst();
        // Route lookup precedes the counter bumps: a (hypothetical)
        // source without a forward route sends nothing and counts nothing.
        let Some(route) = self.route(flow_id, src, true) else { return };
        let packet = {
            let flow = self.flows.flow_mut(flow_id);
            let dg = UdpDatagram { seq: flow.udp_seq, sent_at_ns: now.as_nanos() };
            flow.udp_seq += 1;
            flow.udp_sent += 1;
            Packet::new(
                NetHeader { flow: flow_id, src, dst, proto: Proto::Udp, wire_bytes: bytes },
                self.pool.mint_body_with(|out| dg.encode_into(out)),
            )
        };
        let mut sink = self.macs.take_sink();
        self.macs.node(src).on_enqueue(packet, route, now, &mut sink);
        self.apply_mac_actions(src, &mut sink);
        self.macs.park_sink(sink);
        if let Some(interval) = next {
            if now + interval <= self.end {
                let key = self.flow_key(flow_id);
                self.queue.schedule_keyed_in(interval, key, Event::UdpSend { flow: flow_id });
            }
        }
    }
}
