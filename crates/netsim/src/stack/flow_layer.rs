//! The flow/transport layer of the node stack: per-flow workload state.
//!
//! One `FlowRt` per scenario flow owns the transport endpoints (TCP
//! sender/receiver or the UDP sink), the datagram counters, and the web
//! workload's think-time stream. The layer also seeds the event queue with
//! every flow's arrival process (FTP/web starts, the precomputed VoIP
//! departure schedule, the first CBR send) and condenses the endpoints into
//! [`FlowResult`]s when the run ends.

use wmn_metrics::mos::{voip_mos, VoipQualityInputs, WIRELESS_BUDGET};
use wmn_metrics::throughput_mbps;
use wmn_sim::{EventQueue, FlowId, RngDirectory, SimDuration, StreamRng};
use wmn_transport::{TcpConfig, TcpReceiver, TcpSender, UdpSink};

use crate::scenario::{FlowSpec, Scenario, Workload};
use crate::stack::{Event, FlowResult, TcpFlowResult, VoipFlowResult};

/// Runtime state of one flow: its spec plus the transport endpoints.
pub(crate) struct FlowRt {
    pub(crate) spec: FlowSpec,
    pub(crate) id: FlowId,
    pub(crate) tcp_tx: Option<TcpSender>,
    pub(crate) tcp_rx: Option<TcpReceiver>,
    pub(crate) udp_sink: UdpSink,
    pub(crate) udp_seq: u64,
    pub(crate) udp_sent: u64,
    pub(crate) web_rng: Option<StreamRng>,
}

/// The flow layer: every flow's transport and workload state.
pub(crate) struct FlowLayer {
    flows: Vec<FlowRt>,
}

impl FlowLayer {
    /// Builds the per-flow endpoints from a validated scenario (web flows
    /// get their think/transfer stream as `web/<index>`).
    pub(crate) fn build(scenario: &Scenario, dir: &RngDirectory) -> Self {
        let mut flows = Vec::with_capacity(scenario.flows.len());
        for (i, spec) in scenario.flows.iter().enumerate() {
            let id = FlowId::new(i as u32);
            let (tcp_tx, tcp_rx) = match spec.workload {
                Workload::Ftp | Workload::Web(_) => (
                    Some(TcpSender::new(TcpConfig::default())),
                    Some(TcpReceiver::new(TcpConfig::default())),
                ),
                _ => (None, None),
            };
            let web_rng = match spec.workload {
                Workload::Web(_) => Some(dir.stream(&format!("web/{i}"))),
                _ => None,
            };
            flows.push(FlowRt {
                spec: spec.clone(),
                id,
                tcp_tx,
                tcp_rx,
                udp_sink: UdpSink::new(),
                udp_seq: 0,
                udp_sent: 0,
                web_rng,
            });
        }
        FlowLayer { flows }
    }

    /// Creates the event queue and seeds it with every flow's arrival
    /// process. The VoIP departure schedules are precomputed (streams
    /// `voip/<index>`) so the queue can be sized to the full initial event
    /// load in one allocation.
    pub(crate) fn initial_queue(
        &self,
        scenario: &Scenario,
        dir: &RngDirectory,
    ) -> EventQueue<Event> {
        let voip_departures: Vec<Option<Vec<SimDuration>>> = self
            .flows
            .iter()
            .enumerate()
            .map(|(i, flow)| match &flow.spec.workload {
                Workload::Voip(model) => {
                    let mut rng = dir.stream(&format!("voip/{i}"));
                    Some(model.departure_schedule(scenario.duration, &mut rng))
                }
                _ => None,
            })
            .collect();
        let initial_events: usize =
            voip_departures.iter().map(|deps| deps.as_ref().map_or(1, Vec::len)).sum();
        let mut queue = EventQueue::with_capacity(initial_events);
        for ((i, flow), departures) in self.flows.iter().enumerate().zip(voip_departures) {
            // Small deterministic stagger breaks pathological phase locks.
            let stagger = SimDuration::from_micros(17 * i as u64);
            match &flow.spec.workload {
                Workload::Ftp | Workload::Web(_) => {
                    queue.schedule_in(stagger, Event::FlowStart { flow: flow.id });
                }
                Workload::Voip(_) => {
                    for dep in departures.expect("departure schedule precomputed above") {
                        queue.schedule_in(dep, Event::UdpSend { flow: flow.id });
                    }
                }
                Workload::Cbr(_) => {
                    queue.schedule_in(stagger, Event::UdpSend { flow: flow.id });
                }
            }
        }
        queue
    }

    /// One flow's runtime state.
    pub(crate) fn flow_mut(&mut self, id: FlowId) -> &mut FlowRt {
        &mut self.flows[id.index()]
    }

    /// Immutable access to one flow's runtime state.
    pub(crate) fn flow(&self, id: FlowId) -> &FlowRt {
        &self.flows[id.index()]
    }

    /// Condenses every flow's endpoints into its [`FlowResult`], in
    /// scenario order.
    pub(crate) fn results(&self, scenario: &Scenario) -> Vec<FlowResult> {
        let mss = u64::from(TcpConfig::default().mss_wire_bytes);
        let mut flows = Vec::with_capacity(self.flows.len());
        for flow in &self.flows {
            let (delivered_bytes, tcp, voip) = match &flow.spec.workload {
                Workload::Ftp | Workload::Web(_) => {
                    let rx = flow.tcp_rx.as_ref().expect("tcp flow has receiver");
                    let tx = flow.tcp_tx.as_ref().expect("tcp flow has sender");
                    let bytes = rx.delivered_segments() * mss;
                    let tcp = TcpFlowResult {
                        segments_arrived: rx.stats().segments_arrived,
                        reordered_arrivals: rx.stats().reordered_arrivals,
                        retransmits: tx.stats().retransmits,
                        timeouts: tx.stats().timeouts,
                    };
                    (bytes, Some(tcp), None)
                }
                Workload::Voip(_) => {
                    let sink = &flow.udp_sink;
                    let sent = flow.udp_sent.max(1);
                    let late = sink.late_fraction(WIRELESS_BUDGET);
                    let ontime = sink.received() as f64 * (1.0 - late);
                    let loss = (1.0 - ontime / sent as f64).clamp(0.0, 1.0);
                    let mean_delay =
                        sink.mean_ontime_delay(WIRELESS_BUDGET).unwrap_or(WIRELESS_BUDGET);
                    let mos = voip_mos(VoipQualityInputs {
                        mean_wireless_delay: mean_delay,
                        loss_fraction: loss,
                    });
                    let v = VoipFlowResult {
                        sent: flow.udp_sent,
                        received: sink.received(),
                        loss_fraction: loss,
                        mean_delay,
                        p95_delay: wmn_metrics::p95(sink.delays())
                            .unwrap_or(wmn_sim::SimDuration::ZERO),
                        jitter: wmn_metrics::jitter(sink.delays())
                            .unwrap_or(wmn_sim::SimDuration::ZERO),
                        mos,
                    };
                    (sink.bytes_received(), None, Some(v))
                }
                Workload::Cbr(_) => (flow.udp_sink.bytes_received(), None, None),
            };
            flows.push(FlowResult {
                flow: flow.id,
                delivered_bytes,
                throughput_mbps: throughput_mbps(delivered_bytes, scenario.duration),
                tcp,
                voip,
            });
        }
        flows
    }
}
