//! The flow/transport layer of the node stack: per-flow workload state.
//!
//! One `FlowRt` per scenario flow owns the transport endpoints (TCP
//! sender/receiver or the UDP sink), the datagram counters, and the web
//! workload's think-time stream. The layer also seeds the event queue with
//! every flow's arrival process (FTP/web starts, the precomputed VoIP
//! departure schedule, the first CBR send) and condenses the endpoints into
//! [`FlowResult`]s when the run ends.

use wmn_metrics::mos::{voip_mos, VoipQualityInputs, WIRELESS_BUDGET};
use wmn_metrics::throughput_mbps;
use wmn_sim::{EventQueue, FlowId, RngDirectory, SimDuration, StreamRng};
use wmn_transport::{TcpConfig, TcpReceiver, TcpSender, UdpSink};

use crate::scenario::{FlowSpec, Scenario, Workload};
use crate::stack::{Event, FlowResult, TcpFlowResult, VoipFlowResult};

/// Runtime state of one flow: its spec plus the transport endpoints.
pub(crate) struct FlowRt {
    pub(crate) spec: FlowSpec,
    pub(crate) id: FlowId,
    pub(crate) tcp_tx: Option<TcpSender>,
    pub(crate) tcp_rx: Option<TcpReceiver>,
    pub(crate) udp_sink: UdpSink,
    pub(crate) udp_seq: u64,
    pub(crate) udp_sent: u64,
    pub(crate) web_rng: Option<StreamRng>,
}

/// The flow layer: every flow's transport and workload state.
pub(crate) struct FlowLayer {
    flows: Vec<FlowRt>,
}

impl FlowLayer {
    /// Builds the per-flow endpoints from a validated scenario (web flows
    /// get their think/transfer stream as `web/<index>`).
    pub(crate) fn build(scenario: &Scenario, dir: &RngDirectory) -> Self {
        let mut flows = Vec::with_capacity(scenario.flows.len());
        for (i, spec) in scenario.flows.iter().enumerate() {
            let id = FlowId::new(i as u32);
            let (tcp_tx, tcp_rx) = match spec.workload {
                Workload::Ftp | Workload::Web(_) => (
                    Some(TcpSender::new(TcpConfig::default())),
                    Some(TcpReceiver::new(TcpConfig::default())),
                ),
                _ => (None, None),
            };
            let web_rng = match spec.workload {
                Workload::Web(_) => Some(dir.stream(&format!("web/{i}"))),
                _ => None,
            };
            flows.push(FlowRt {
                spec: spec.clone(),
                id,
                tcp_tx,
                tcp_rx,
                udp_sink: UdpSink::new(),
                udp_seq: 0,
                udp_sent: 0,
                web_rng,
            });
        }
        FlowLayer { flows }
    }

    /// Every flow's arrival process as plain data: the offset from `t = 0`
    /// and the event to fire, flow-major in seeding order. The VoIP
    /// departure schedules are precomputed here (streams `voip/<index>`),
    /// so both engines share one source of truth for what gets seeded: the
    /// single-loop engine schedules the whole list
    /// ([`FlowLayer::initial_queue`]); each shard worker schedules the
    /// entries of the flows it owns, minting its own flow-lane keys.
    pub(crate) fn seed_events(
        &self,
        scenario: &Scenario,
        dir: &RngDirectory,
    ) -> Vec<(SimDuration, Event)> {
        let mut seeds = Vec::new();
        for (i, flow) in self.flows.iter().enumerate() {
            // Small deterministic stagger breaks pathological phase locks.
            let stagger = SimDuration::from_micros(17 * i as u64);
            match &flow.spec.workload {
                Workload::Ftp | Workload::Web(_) => {
                    seeds.push((stagger, Event::FlowStart { flow: flow.id }));
                }
                Workload::Voip(model) => {
                    let mut rng = dir.stream(&format!("voip/{i}"));
                    for dep in model.departure_schedule(scenario.duration, &mut rng) {
                        seeds.push((dep, Event::UdpSend { flow: flow.id }));
                    }
                }
                Workload::Cbr(_) => {
                    seeds.push((stagger, Event::UdpSend { flow: flow.id }));
                }
            }
        }
        seeds
    }

    /// Creates the event queue and seeds it with every flow's arrival
    /// process ([`FlowLayer::seed_events`]), sized to the full initial
    /// event load in one allocation.
    pub(crate) fn initial_queue(
        &self,
        scenario: &Scenario,
        dir: &RngDirectory,
    ) -> EventQueue<Event> {
        let seeds = self.seed_events(scenario, dir);
        let mut queue = EventQueue::with_capacity(seeds.len());
        for (delay, event) in seeds {
            queue.schedule_in(delay, event);
        }
        queue
    }

    /// One flow's runtime state.
    pub(crate) fn flow_mut(&mut self, id: FlowId) -> &mut FlowRt {
        &mut self.flows[id.index()]
    }

    /// Immutable access to one flow's runtime state.
    pub(crate) fn flow(&self, id: FlowId) -> &FlowRt {
        &self.flows[id.index()]
    }

    /// Condenses every flow's endpoints into its [`FlowResult`], in
    /// scenario order.
    pub(crate) fn results(&self, scenario: &Scenario) -> Vec<FlowResult> {
        self.flows
            .iter()
            .map(|flow| {
                flow_result(
                    FlowEndpoints {
                        spec: &flow.spec,
                        id: flow.id,
                        tcp_tx: flow.tcp_tx.as_ref(),
                        tcp_rx: flow.tcp_rx.as_ref(),
                        udp_sink: &flow.udp_sink,
                        udp_sent: flow.udp_sent,
                    },
                    scenario.duration,
                )
            })
            .collect()
    }
}

/// Borrowed views of the endpoint state one [`FlowResult`] is computed
/// from. In a single-loop run every view borrows the same [`FlowRt`]; in a
/// sharded run the sender-side halves (`tcp_tx`, `udp_sent`) come from the
/// shard owning the flow's source and the receiver-side halves (`tcp_rx`,
/// `udp_sink`) from the shard owning its destination — the result math is
/// identical either way because [`flow_result`] is the single code path.
pub(crate) struct FlowEndpoints<'a> {
    pub(crate) spec: &'a FlowSpec,
    pub(crate) id: FlowId,
    pub(crate) tcp_tx: Option<&'a TcpSender>,
    pub(crate) tcp_rx: Option<&'a TcpReceiver>,
    pub(crate) udp_sink: &'a UdpSink,
    pub(crate) udp_sent: u64,
}

/// Condenses one flow's endpoint state into its [`FlowResult`].
pub(crate) fn flow_result(ep: FlowEndpoints<'_>, duration: SimDuration) -> FlowResult {
    let mss = u64::from(TcpConfig::default().mss_wire_bytes);
    let (delivered_bytes, tcp, voip) = match &ep.spec.workload {
        Workload::Ftp | Workload::Web(_) => {
            let rx = ep.tcp_rx.expect("tcp flow has receiver");
            let tx = ep.tcp_tx.expect("tcp flow has sender");
            let bytes = rx.delivered_segments() * mss;
            let tcp = TcpFlowResult {
                segments_arrived: rx.stats().segments_arrived,
                reordered_arrivals: rx.stats().reordered_arrivals,
                retransmits: tx.stats().retransmits,
                timeouts: tx.stats().timeouts,
            };
            (bytes, Some(tcp), None)
        }
        Workload::Voip(_) => {
            let sink = ep.udp_sink;
            let sent = ep.udp_sent.max(1);
            let late = sink.late_fraction(WIRELESS_BUDGET);
            let ontime = sink.received() as f64 * (1.0 - late);
            let loss = (1.0 - ontime / sent as f64).clamp(0.0, 1.0);
            let mean_delay = sink.mean_ontime_delay(WIRELESS_BUDGET).unwrap_or(WIRELESS_BUDGET);
            let mos = voip_mos(VoipQualityInputs {
                mean_wireless_delay: mean_delay,
                loss_fraction: loss,
            });
            let v = VoipFlowResult {
                sent: ep.udp_sent,
                received: sink.received(),
                loss_fraction: loss,
                mean_delay,
                p95_delay: wmn_metrics::p95(sink.delays()).unwrap_or(wmn_sim::SimDuration::ZERO),
                jitter: wmn_metrics::jitter(sink.delays()).unwrap_or(wmn_sim::SimDuration::ZERO),
                mos,
            };
            (sink.bytes_received(), None, Some(v))
        }
        Workload::Cbr(_) => (ep.udp_sink.bytes_received(), None, None),
    };
    FlowResult {
        flow: ep.id,
        delivered_bytes,
        throughput_mbps: throughput_mbps(delivered_bytes, duration),
        tcp,
        voip,
    }
}
