//! The channel-facing layer of the node stack: the shared [`Medium`], one
//! [`Receiver`] per station, the in-flight arrival slab, the bit-error
//! model, and — since mobility — the station trajectories.
//!
//! Everything stochastic about the channel lives here, behind exactly two
//! streams (`medium` for shadowing, `ber` for bit errors), consumed in the
//! same order the monolithic runner consumed them — which is what keeps the
//! layered stack bit-identical to its predecessor. Mobility draws **no**
//! randomness at run time: trajectories are pure functions of time
//! ([`wmn_topology::motion`]), sampled on a fixed tick and pushed into the
//! medium's incremental row/column link-state refresh.

use std::sync::Arc;

use wmn_mac::frame::{Frame, RxFrame};
use wmn_phy::{BerModel, Medium, Position, Receiver, RxPlan};
use wmn_sim::{EventQueue, NodeId, RngDirectory, SimDuration, SimTime, StreamRng};
use wmn_topology::MotionPlan;

use crate::scenario::Scenario;
use crate::stack::Event;

/// One in-flight arrival: a transmission en route to one receiver.
pub(crate) struct ArrivalState {
    /// The receiving station.
    pub(crate) node: NodeId,
    /// Shared handle to the transmitted frame: a broadcast to k receivers
    /// costs one allocation, not k deep clones. Clean decodes ride the same
    /// shared handle all the way into the MAC; a private copy is made only
    /// when bit errors corrupt a subframe (see
    /// [`decode_frame`](super::decode::decode_frame)).
    pub(crate) frame: Arc<Frame>,
    /// Whether the arrival is strong enough to decode.
    pub(crate) decodable: bool,
    /// Received power in dBm.
    pub(crate) power_dbm: f64,
}

/// One slab slot: its current occupant (if any) plus a generation counter
/// bumped every time the slot is freed, so recycled slots mint fresh ids.
#[derive(Default)]
struct Slot {
    generation: u32,
    state: Option<ArrivalState>,
}

/// Packs a slot index and its generation into one arrival event id.
fn arrival_id(slot: u32, generation: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(slot)
}

/// Splits an arrival event id back into `(slot, generation)`.
fn split_arrival_id(id: u64) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

/// The in-flight arrival slab, factored out of [`PhyIo`] so shard workers
/// can own one each: freed slots are recycled LIFO, so memory stays bounded
/// by the peak number of concurrent arrivals instead of growing with the run
/// length. Event ids pack the slot index with the slot's generation tag (see
/// [`arrival_id`]): a stale id whose slot was recycled for a *different*
/// arrival then fails the generation check instead of silently aliasing the
/// new occupant. Slab ids are pure lookup handles — they never participate
/// in event ordering, which is what lets each shard mint its own ids without
/// perturbing the deterministic `(time, key)` schedule.
#[derive(Default)]
pub(crate) struct ArrivalSlab {
    arrivals: Vec<Slot>,
    free: Vec<u32>,
}

impl ArrivalSlab {
    /// Places an in-flight arrival into the slab, recycling a freed slot if
    /// one is available, and returns its generation-tagged event id.
    pub(crate) fn alloc(&mut self, state: ArrivalState) -> u64 {
        match self.free.pop() {
            Some(slot) => {
                let entry = &mut self.arrivals[slot as usize];
                entry.state = Some(state);
                arrival_id(slot, entry.generation)
            }
            None => {
                self.arrivals.push(Slot { generation: 0, state: Some(state) });
                arrival_id((self.arrivals.len() - 1) as u32, 0)
            }
        }
    }

    /// Peeks at a parked arrival (for RxStart), if it is still in flight.
    /// An id whose slot has since been freed — even if recycled for another
    /// arrival — fails the generation check and returns `None`.
    pub(crate) fn peek(&self, id: u64) -> Option<&ArrivalState> {
        let (slot, generation) = split_arrival_id(id);
        let entry = self.arrivals.get(slot as usize)?;
        if entry.generation != generation {
            return None;
        }
        entry.state.as_ref()
    }

    /// Removes a parked arrival (at RxEnd), freeing its slot. Stale ids are
    /// rejected by the generation check like in [`ArrivalSlab::peek`].
    pub(crate) fn take(&mut self, id: u64) -> Option<ArrivalState> {
        let (slot, generation) = split_arrival_id(id);
        let entry = self.arrivals.get_mut(slot as usize)?;
        if entry.generation != generation {
            return None;
        }
        let state = entry.state.take()?;
        // Freeing bumps the generation, invalidating every id minted for
        // the old occupant the moment the slot is recyclable. Wrapping is
        // fine: an id only collides after exactly 2^32 reuses of one slot
        // while it is somehow still in flight.
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(slot);
        Some(state)
    }
}

/// One mobility step over any medium handle: re-sample every moving node's
/// trajectory at `now` and push changed positions into the medium's
/// incremental link-state refresh. Shared by [`PhyIo::advance_positions`]
/// (single-loop engine) and the shard coordinator's mobility barrier, so the
/// two engines cannot drift apart on what a tick means.
///
/// A node whose sampled position equals its current one — typically a
/// waypoint walker parked at its final target — skips the refresh entirely:
/// recomputing link state from an identical position yields identical values
/// (the computation is deterministic and draws no RNG), so the short-circuit
/// cannot change results, only save the `2n − 1` entry updates per tick.
pub(crate) fn advance_medium_positions(
    medium: &mut Medium,
    motion: &MotionPlan,
    origin: &[Position],
    now: SimTime,
) {
    for (i, path) in motion.paths.iter().enumerate() {
        if path.is_static() {
            continue;
        }
        let node = NodeId::new(i as u32);
        let pos = path.position_at(origin[i], now);
        if pos == medium.position(node) {
            continue;
        }
        medium.update_node_position(node, pos);
    }
}

/// The PHY I/O layer: medium, per-station receivers, arrival slab, BER, and
/// mobility state.
pub(crate) struct PhyIo {
    medium: Medium,
    ber: BerModel,
    receivers: Vec<Receiver>,
    /// Slab of in-flight arrivals (see [`ArrivalSlab`]).
    arrivals: ArrivalSlab,
    /// Reusable buffer for `Medium::plan_transmission_into` — zero planner
    /// allocations per transmission at steady state.
    plan_scratch: Vec<RxPlan>,
    medium_rng: StreamRng,
    ber_rng: StreamRng,
    /// The `t = 0` placement mobility trajectories are anchored to.
    origin: Vec<Position>,
    motion: MotionPlan,
}

impl PhyIo {
    /// Builds the layer from a validated scenario, deriving its two RNG
    /// streams (`medium`, `ber`) from the run's directory.
    pub(crate) fn build(scenario: &Scenario, dir: &RngDirectory) -> Self {
        let n = scenario.positions.len();
        PhyIo {
            medium: Medium::new(scenario.params.clone(), scenario.positions.clone()),
            ber: BerModel::new(scenario.params.ber),
            receivers: (0..n).map(|_| Receiver::new()).collect(),
            arrivals: ArrivalSlab::default(),
            plan_scratch: Vec::new(),
            medium_rng: dir.stream("medium"),
            ber_rng: dir.stream("ber"),
            origin: scenario.positions.clone(),
            motion: scenario.motion.clone(),
        }
    }

    /// The PHY parameter set of the run.
    pub(crate) fn params(&self) -> &wmn_phy::PhyParams {
        self.medium.params()
    }

    /// The shared medium, exposing the *current* link state — the input of
    /// the live route-refresh pass.
    pub(crate) fn medium(&self) -> &Medium {
        &self.medium
    }

    /// The reception state machine of one station.
    pub(crate) fn receiver(&mut self, node: NodeId) -> &mut Receiver {
        &mut self.receivers[node.index()]
    }

    /// Fans one transmission out to every station that will perceive it:
    /// plans receptions (one shadowing draw per pair, station-index order),
    /// parks each arrival in the slab, and schedules its RxStart/RxEnd pair.
    pub(crate) fn broadcast(
        &mut self,
        from: NodeId,
        frame: Frame,
        airtime: SimDuration,
        queue: &mut EventQueue<Event>,
    ) {
        // Plan into the reusable scratch buffer (taken out to satisfy the
        // borrow checker while scheduling), then share one frame allocation
        // across every receiver.
        let mut plans = std::mem::take(&mut self.plan_scratch);
        self.medium.plan_transmission_into(from, &mut self.medium_rng, &mut plans);
        let frame = Arc::new(frame);
        for plan in &plans {
            let slot = self.alloc_arrival(ArrivalState {
                node: plan.to,
                frame: Arc::clone(&frame),
                decodable: plan.decodable,
                power_dbm: plan.power_dbm,
            });
            queue.schedule_in(plan.delay, Event::RxStart { arrival: slot });
            queue.schedule_in(plan.delay + airtime, Event::RxEnd { arrival: slot });
        }
        self.plan_scratch = plans;
    }

    /// Places an in-flight arrival into the slab, recycling a freed slot if
    /// one is available, and returns its generation-tagged event id.
    fn alloc_arrival(&mut self, state: ArrivalState) -> u64 {
        self.arrivals.alloc(state)
    }

    /// Peeks at a parked arrival (for RxStart), if it is still in flight.
    /// See [`ArrivalSlab::peek`].
    pub(crate) fn arrival(&self, id: u64) -> Option<&ArrivalState> {
        self.arrivals.peek(id)
    }

    /// Removes a parked arrival (at RxEnd), freeing its slot. See
    /// [`ArrivalSlab::take`].
    pub(crate) fn take_arrival(&mut self, id: u64) -> Option<ArrivalState> {
        self.arrivals.take(id)
    }

    /// Applies the i.i.d. BER model to one received frame — a thin wrapper
    /// over the engines' shared [`decode_frame`](super::decode::decode_frame)
    /// seam, consuming this engine's global `ber` stream.
    ///
    /// A frame that decodes with no subframe losses is handed to the MAC as
    /// a shared handle to the broadcast allocation (zero copies); only a
    /// corrupted frame pays for a copy-on-write detach.
    pub(crate) fn apply_bit_errors(&mut self, frame: &Arc<Frame>) -> Option<RxFrame> {
        super::decode::decode_frame(&self.ber, &mut self.ber_rng, frame)
    }

    /// Whether any station actually moves (drives whether the runner
    /// schedules mobility ticks at all — a static plan schedules nothing
    /// and the stack is byte-identical to the static simulator).
    pub(crate) fn is_mobile(&self) -> bool {
        !self.motion.is_static()
    }

    /// The position re-sampling interval of a mobile run.
    pub(crate) fn motion_tick(&self) -> SimDuration {
        self.motion.tick
    }

    /// One mobility step: re-sample every moving node's trajectory at `now`
    /// and push the new position into the medium's incremental link-state
    /// refresh (O(n) per moved node, instead of an n² matrix rebuild). See
    /// [`advance_medium_positions`], which the shard coordinator shares.
    pub(crate) fn advance_positions(&mut self, now: SimTime) {
        advance_medium_positions(&mut self.medium, &self.motion, &self.origin, now);
    }

    /// The medium's current idea of a station's position (moves over time
    /// in mobile runs).
    #[cfg(test)]
    pub(crate) fn position(&self, node: NodeId) -> Position {
        self.medium.position(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(node: u32) -> ArrivalState {
        ArrivalState {
            node: NodeId::new(node),
            frame: Arc::new(Frame::Ack(wmn_mac::frame::AckFrame {
                transmitter: NodeId::new(0),
                to: NodeId::new(node),
                flow: wmn_sim::FlowId::new(0),
                frame_seq: 0,
                acked_seqs: Default::default(),
                relay_list: Default::default(),
            })),
            decodable: true,
            power_dbm: -50.0,
        }
    }

    fn phy() -> PhyIo {
        let scenario = crate::scenario::Scenario {
            name: "slab".into(),
            params: wmn_phy::PhyParams::paper_216(),
            positions: vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
            scheme: crate::scenario::Scheme::Dcf { aggregation: 1 },
            flows: vec![crate::scenario::FlowSpec {
                path: vec![NodeId::new(0), NodeId::new(1)],
                workload: crate::scenario::Workload::Ftp,
            }],
            duration: SimDuration::from_millis(1),
            seed: 1,
            max_forwarders: 5,
            motion: MotionPlan::default(),
            route_refresh: None,
            shards: None,
        };
        PhyIo::build(&scenario, &RngDirectory::new(1))
    }

    #[test]
    fn recycled_slot_rejects_stale_ids() {
        let mut phy = phy();
        // First occupant of slot 0.
        let first = phy.alloc_arrival(arrival(1));
        assert!(phy.arrival(first).is_some());
        assert!(phy.take_arrival(first).is_some());
        // The slot is recycled LIFO for a different arrival…
        let second = phy.alloc_arrival(arrival(0));
        assert_ne!(first, second, "recycling must mint a fresh id");
        assert_eq!(split_arrival_id(first).0, split_arrival_id(second).0, "same slot reused");
        // …and the stale id must not alias the new occupant.
        assert!(phy.arrival(first).is_none(), "stale peek rejected");
        assert!(phy.take_arrival(first).is_none(), "stale take rejected");
        let current = phy.arrival(second).expect("live id still resolves");
        assert_eq!(current.node, NodeId::new(0));
        assert!(phy.take_arrival(second).is_some());
        // Double-take of a live id is also rejected.
        assert!(phy.take_arrival(second).is_none());
    }

    #[test]
    fn generation_wraps_without_panicking() {
        let mut phy = phy();
        let id = phy.alloc_arrival(arrival(1));
        let (slot, _) = split_arrival_id(id);
        phy.arrivals.arrivals[slot as usize].generation = u32::MAX;
        let id = arrival_id(slot, u32::MAX);
        assert!(phy.take_arrival(id).is_some());
        assert_eq!(phy.arrivals.arrivals[slot as usize].generation, 0, "wrapping add");
    }
}
