//! Scenario composition and the layered simulation stack.
//!
//! This crate is the only place where the passive state machines of the
//! lower crates meet the event queue. The simulation is organised as a
//! [`stack`] of four layers with typed seams — [`stack::phy_io`] (medium,
//! receivers, arrivals, mobility), [`stack::mac_engine`] (one MAC per
//! station behind the [`wmn_mac::MacScheme`] factory trait),
//! [`stack::net_layer`] (per-flow route tables) and [`stack::flow_layer`]
//! (transport endpoints and workloads) — orchestrated by a thin runner
//! that interprets every [`wmn_mac::MacAction`] /
//! [`wmn_transport::TcpAction`] against simulated time. Both engines (the
//! single loop and the sharded windowed loop) decode received frames
//! through one shared BER seam, [`stack::decode`], whose clean-channel
//! fast path hands every receiver the transmitter's own `Arc`-backed
//! allocation — zero copies, zero allocations per clean decode.
//!
//! A [`Scenario`] fully describes one run (placement, forwarding scheme,
//! flows, duration, seed, and optionally a [`MotionPlan`] of per-node
//! trajectories); [`run`] executes it and returns per-flow
//! [`FlowResult`]s. Runs are deterministic per seed, mobile or not.
//!
//! # Example
//!
//! ```
//! use wmn_netsim::{run, FlowSpec, Scenario, Scheme, Workload};
//! use wmn_phy::{PhyParams, Position};
//! use wmn_sim::{NodeId, SimDuration};
//!
//! let scenario = Scenario {
//!     name: "quick".into(),
//!     params: PhyParams::paper_216(),
//!     positions: vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
//!     scheme: Scheme::Dcf { aggregation: 1 },
//!     flows: vec![FlowSpec {
//!         path: vec![NodeId::new(0), NodeId::new(1)],
//!         workload: Workload::Ftp,
//!     }],
//!     duration: SimDuration::from_millis(50),
//!     seed: 1,
//!     max_forwarders: 5,
//!     motion: wmn_netsim::MotionPlan::default(),
//!     route_refresh: None,
//!     shards: None,
//! };
//! let result = run(&scenario);
//! assert!(result.flows[0].delivered_bytes > 0);
//! ```

pub mod scenario;
pub mod stack;
pub mod trace;

pub use scenario::{FlowSpec, Scenario, Scheme, Workload};
pub use stack::{run, run_traced, FlowResult, RunResult, TcpFlowResult, VoipFlowResult};
pub use trace::{FrameKind, Trace, TraceEvent, TraceKind};
pub use wmn_mac::DropReason;
// Re-exported so scenario authors can describe mobility without naming the
// topology crate.
pub use wmn_topology::{MotionPlan, NodePath, Waypoint};
