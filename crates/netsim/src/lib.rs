//! Scenario composition and the simulation runner.
//!
//! This crate is the only place where the passive state machines of the
//! lower crates meet the event queue: it owns the [`wmn_phy::Medium`], one
//! [`wmn_phy::Receiver`] and one MAC per station, the transport endpoints
//! and workload generators per flow, and interprets every
//! [`wmn_mac::MacAction`] / [`wmn_transport::TcpAction`] against simulated
//! time.
//!
//! A [`Scenario`] fully describes one run (placement, forwarding scheme,
//! flows, duration, seed); [`run`] executes it and returns per-flow
//! [`FlowResult`]s. Runs are deterministic per seed.
//!
//! # Example
//!
//! ```
//! use wmn_netsim::{run, FlowSpec, Scenario, Scheme, Workload};
//! use wmn_phy::{PhyParams, Position};
//! use wmn_sim::{NodeId, SimDuration};
//!
//! let scenario = Scenario {
//!     name: "quick".into(),
//!     params: PhyParams::paper_216(),
//!     positions: vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0)],
//!     scheme: Scheme::Dcf { aggregation: 1 },
//!     flows: vec![FlowSpec {
//!         path: vec![NodeId::new(0), NodeId::new(1)],
//!         workload: Workload::Ftp,
//!     }],
//!     duration: SimDuration::from_millis(50),
//!     seed: 1,
//!     max_forwarders: 5,
//! };
//! let result = run(&scenario);
//! assert!(result.flows[0].delivered_bytes > 0);
//! ```

pub mod runner;
pub mod scenario;
pub mod trace;

pub use runner::{run, run_traced, FlowResult, RunResult};
pub use scenario::{FlowSpec, Scenario, Scheme, Workload};
pub use trace::{Trace, TraceEvent, TraceKind};
