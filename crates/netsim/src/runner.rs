//! The discrete-event simulation runner.
//!
//! Owns all per-node and per-flow state, interprets MAC/transport actions
//! against the event queue, applies the channel (shadowing + collisions +
//! BER) to every transmission, and accumulates per-flow results.

use std::sync::Arc;

use ripple::{RippleConfig, RippleMac};
use wmn_mac::frame::{Frame, NetHeader, Packet, Proto, RouteInfo};
use wmn_mac::{DcfConfig, DcfMac, MacAction, MacEntity, RateClass, TimerToken};
use wmn_metrics::mos::{voip_mos, VoipQualityInputs, WIRELESS_BUDGET};
use wmn_metrics::throughput_mbps;
use wmn_phy::medium::BusyTransition;
use wmn_phy::{ArrivalOutcome, BerModel, Medium, Receiver, RxPlan};
use wmn_routing::exor::ExorConfig;
use wmn_routing::{forwarder_list, ExorMac, ExorMode};
use wmn_sim::{EventQueue, FlowId, NodeId, RngDirectory, SimDuration, SimTime, StreamRng};
use wmn_traffic::{CbrModel, VoipModel};
use wmn_transport::{
    TcpAction, TcpConfig, TcpReceiver, TcpSegment, TcpSender, UdpDatagram, UdpSink,
};

use crate::scenario::{FlowSpec, Scenario, Scheme, Workload};
use crate::trace::{FrameKind, Trace, TraceEvent, TraceKind};

/// TCP-specific per-flow results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpFlowResult {
    /// Data segments that arrived at the receiver (incl. duplicates).
    pub segments_arrived: u64,
    /// Arrivals out of order (the paper's re-ordering count).
    pub reordered_arrivals: u64,
    /// Sender retransmissions.
    pub retransmits: u64,
    /// Sender RTO expirations.
    pub timeouts: u64,
}

impl TcpFlowResult {
    /// Fraction of arrivals that were out of order.
    pub fn reorder_fraction(&self) -> f64 {
        if self.segments_arrived == 0 {
            return 0.0;
        }
        self.reordered_arrivals as f64 / self.segments_arrived as f64
    }
}

/// VoIP-specific per-flow results. `PartialEq` compares the `f64` fields
/// exactly — that is the point: the executor's determinism tests assert
/// bit-identical results across worker counts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VoipFlowResult {
    /// Datagrams handed to the MAC at the source.
    pub sent: u64,
    /// Distinct datagrams that arrived.
    pub received: u64,
    /// Combined loss: network losses plus late (> 52 ms) arrivals.
    pub loss_fraction: f64,
    /// Mean one-way delay of on-time datagrams.
    pub mean_delay: SimDuration,
    /// 95th-percentile one-way delay (all received datagrams). A p95 near
    /// the 52 ms budget signals imminent late-loss.
    pub p95_delay: SimDuration,
    /// Mean inter-arrival jitter of the delay series.
    pub jitter: SimDuration,
    /// Mean opinion score per the paper's R-factor model.
    pub mos: f64,
}

/// Results for one flow of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowResult {
    /// The flow id (index into the scenario's flow list).
    pub flow: FlowId,
    /// Application-level bytes delivered in order.
    pub delivered_bytes: u64,
    /// Delivered bytes over the scenario duration, Mbps.
    pub throughput_mbps: f64,
    /// TCP details, if the workload was TCP.
    pub tcp: Option<TcpFlowResult>,
    /// VoIP details, if the workload was VoIP.
    pub voip: Option<VoipFlowResult>,
}

/// Results of one complete run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Per-flow results, in scenario order.
    pub flows: Vec<FlowResult>,
    /// Sum of per-flow throughput, Mbps.
    pub total_throughput_mbps: f64,
    /// Per-station MAC statistics (frames sent/received, timeouts, drops).
    pub mac_stats: Vec<wmn_mac::MacStats>,
}

#[derive(Debug)]
enum Event {
    TxEnd { node: NodeId },
    RxStart { arrival: u64 },
    RxEnd { arrival: u64 },
    MacTimer { node: NodeId, token: TimerToken },
    TcpRto { flow: FlowId, generation: u64 },
    FlowStart { flow: FlowId },
    UdpSend { flow: FlowId },
    WebStart { flow: FlowId },
}

struct ArrivalState {
    node: NodeId,
    /// Shared handle to the transmitted frame: a broadcast to k receivers
    /// costs one allocation, not k deep clones. A mutable copy is made only
    /// when an arrival actually decodes cleanly (see `apply_bit_errors`).
    frame: Arc<Frame>,
    decodable: bool,
    power_dbm: f64,
}

/// Per-node routing decisions of one flow direction, indexed by `NodeId`
/// (ids are dense indices per [`Scenario::validate`]): `table[node]` is the
/// decision at `node`, `None` where the flow never routes through.
type RouteTable = Vec<Option<RouteInfo>>;

struct FlowRt {
    spec: FlowSpec,
    id: FlowId,
    tcp_tx: Option<TcpSender>,
    tcp_rx: Option<TcpReceiver>,
    udp_sink: UdpSink,
    udp_seq: u64,
    udp_sent: u64,
    fwd_routes: RouteTable,
    rev_routes: RouteTable,
    web_rng: Option<StreamRng>,
}

struct World {
    end: SimTime,
    medium: Medium,
    ber: BerModel,
    receivers: Vec<Receiver>,
    macs: Vec<Box<dyn MacEntity>>,
    flows: Vec<FlowRt>,
    queue: EventQueue<Event>,
    /// Slab of in-flight arrivals: event ids are slot indices, freed slots
    /// are recycled LIFO, so memory stays bounded by the peak number of
    /// concurrent arrivals instead of growing with the run length.
    arrivals: Vec<Option<ArrivalState>>,
    free_arrivals: Vec<u64>,
    /// Reusable buffer for `Medium::plan_transmission_into` — zero planner
    /// allocations per transmission at steady state.
    plan_scratch: Vec<RxPlan>,
    medium_rng: StreamRng,
    ber_rng: StreamRng,
    trace: Option<Trace>,
}

/// Executes a scenario to completion and returns per-flow results.
///
/// # Thread safety
///
/// `run` is a pure function of `scenario`: the entire simulation world — MAC state
/// machines, receivers, medium, event queue, and every RNG stream — is built
/// from the scenario's master seed via [`RngDirectory`] and dropped before
/// returning. There are no globals, no interior mutability shared between
/// runs, and no ambient randomness, so concurrent `run` calls on different
/// scenarios (or different seeds of the same scenario) are independent.
/// [`Scenario`] and [`RunResult`] are `Send` (enforced below at compile
/// time), which is what lets `wmn_exec` move runs onto worker threads.
///
/// # Panics
///
/// Panics on malformed scenarios (empty paths, node ids out of range,
/// opportunistic schemes with single-node paths, …) — these are programming
/// errors in experiment definitions, not runtime conditions.
pub fn run(scenario: &Scenario) -> RunResult {
    let mut world = World::build(scenario);
    world.run_loop();
    world.results(scenario)
}

// Compile-time audit for the parallel executor: a scenario must be movable
// to a worker thread and its result movable back. If a future change smuggles
// an `Rc`/raw pointer into either type, this fails to compile instead of
// failing at the `wmn_exec` call site.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Scenario>();
    assert_send::<RunResult>();
};

/// Like [`run`], but also returns the full event [`Trace`] of the run.
/// Tracing costs memory proportional to the number of transmissions; use
/// short durations.
pub fn run_traced(scenario: &Scenario) -> (RunResult, Trace) {
    let mut world = World::build(scenario);
    world.trace = Some(Trace::default());
    world.run_loop();
    let trace = world.trace.take().expect("installed above");
    (world.results(scenario), trace)
}

impl World {
    fn build(scenario: &Scenario) -> World {
        if let Err(msg) = scenario.validate() {
            panic!("malformed scenario: {msg}");
        }
        let dir = RngDirectory::new(scenario.seed);
        let n = scenario.positions.len();
        let params = scenario.params.clone();
        let medium = Medium::new(params.clone(), scenario.positions.clone());
        let ber = BerModel::new(params.ber);

        let macs: Vec<Box<dyn MacEntity>> = (0..n)
            .map(|i| -> Box<dyn MacEntity> {
                let node = NodeId::new(i as u32);
                let rng = dir.stream(&format!("mac/{i}"));
                match scenario.scheme {
                    Scheme::Dcf { aggregation } => {
                        Box::new(DcfMac::new(DcfConfig::from_phy(&params, aggregation), node, rng))
                    }
                    Scheme::PreExor => Box::new(ExorMac::new(
                        ExorMode::PreExor,
                        ExorConfig::from_phy(&params),
                        node,
                        rng,
                    )),
                    Scheme::McExor => Box::new(ExorMac::new(
                        ExorMode::McExor,
                        ExorConfig::from_phy(&params),
                        node,
                        rng,
                    )),
                    Scheme::Ripple { aggregation } => Box::new(RippleMac::new(
                        RippleConfig::from_phy(&params, aggregation),
                        node,
                        rng,
                    )),
                }
            })
            .collect();

        let mut flows = Vec::with_capacity(scenario.flows.len());
        for (i, spec) in scenario.flows.iter().enumerate() {
            let id = FlowId::new(i as u32);
            // Path shape and id range were checked by `scenario.validate()`.
            let (fwd_routes, rev_routes) = build_routes(spec, scenario);
            let (tcp_tx, tcp_rx) = match spec.workload {
                Workload::Ftp | Workload::Web(_) => (
                    Some(TcpSender::new(TcpConfig::default())),
                    Some(TcpReceiver::new(TcpConfig::default())),
                ),
                _ => (None, None),
            };
            let web_rng = match spec.workload {
                Workload::Web(_) => Some(dir.stream(&format!("web/{i}"))),
                _ => None,
            };
            flows.push(FlowRt {
                spec: spec.clone(),
                id,
                tcp_tx,
                tcp_rx,
                udp_sink: UdpSink::new(),
                udp_seq: 0,
                udp_sent: 0,
                fwd_routes,
                rev_routes,
                web_rng,
            });
        }

        // Pre-compute the VoIP departure schedules so the queue can be sized
        // to the full initial event load in one allocation.
        let voip_departures: Vec<Option<Vec<SimDuration>>> = flows
            .iter()
            .enumerate()
            .map(|(i, flow)| match &flow.spec.workload {
                Workload::Voip(model) => {
                    let mut rng = dir.stream(&format!("voip/{i}"));
                    Some(model.departure_schedule(scenario.duration, &mut rng))
                }
                _ => None,
            })
            .collect();
        let initial_events: usize =
            voip_departures.iter().map(|deps| deps.as_ref().map_or(1, Vec::len)).sum();
        let mut queue = EventQueue::with_capacity(initial_events);
        let end = SimTime::ZERO + scenario.duration;
        for ((i, flow), departures) in flows.iter().enumerate().zip(voip_departures) {
            // Small deterministic stagger breaks pathological phase locks.
            let stagger = SimDuration::from_micros(17 * i as u64);
            match &flow.spec.workload {
                Workload::Ftp | Workload::Web(_) => {
                    queue.schedule_in(stagger, Event::FlowStart { flow: flow.id });
                }
                Workload::Voip(_) => {
                    for dep in departures.expect("departure schedule precomputed above") {
                        queue.schedule_in(dep, Event::UdpSend { flow: flow.id });
                    }
                }
                Workload::Cbr(_) => {
                    queue.schedule_in(stagger, Event::UdpSend { flow: flow.id });
                }
            }
        }

        World {
            end,
            medium,
            ber,
            receivers: (0..n).map(|_| Receiver::new()).collect(),
            macs,
            flows,
            queue,
            arrivals: Vec::new(),
            free_arrivals: Vec::new(),
            plan_scratch: Vec::new(),
            medium_rng: dir.stream("medium"),
            ber_rng: dir.stream("ber"),
            trace: None,
        }
    }

    /// The simulation clock. There is exactly one: the event queue's notion
    /// of "now" (the instant of the most recently popped event), so handlers
    /// and `schedule_in` can never drift apart.
    fn now(&self) -> SimTime {
        self.queue.now()
    }

    fn record(&mut self, node: NodeId, kind: TraceKind) {
        let at = self.now();
        if let Some(trace) = self.trace.as_mut() {
            trace.events.push(TraceEvent { at, node, kind });
        }
    }

    fn run_loop(&mut self) {
        while let Some((t, event)) = self.queue.pop() {
            if t > self.end {
                break;
            }
            self.dispatch(event);
        }
    }

    fn dispatch(&mut self, event: Event) {
        let now = self.now();
        match event {
            Event::TxEnd { node } => {
                self.record(node, TraceKind::TxEnd);
                let actions = self.macs[node.index()].on_tx_end(now);
                self.apply_mac_actions(node, actions);
                if let Some(BusyTransition::BecameIdle) =
                    self.receivers[node.index()].on_tx_end(now)
                {
                    let actions = self.macs[node.index()].on_idle(now);
                    self.apply_mac_actions(node, actions);
                }
            }
            Event::RxStart { arrival } => {
                let Some(a) = self.arrivals.get(arrival as usize).and_then(Option::as_ref) else {
                    return;
                };
                let (node, decodable, power) = (a.node, a.decodable, a.power_dbm);
                if let Some(BusyTransition::BecameBusy) =
                    self.receivers[node.index()].on_arrival_start(arrival, decodable, power, now)
                {
                    let actions = self.macs[node.index()].on_busy(now);
                    self.apply_mac_actions(node, actions);
                }
            }
            Event::RxEnd { arrival } => {
                let Some(state) = self.arrivals.get_mut(arrival as usize).and_then(Option::take)
                else {
                    return;
                };
                self.free_arrivals.push(arrival);
                let node = state.node;
                let (outcome, transition) =
                    self.receivers[node.index()].on_arrival_end(arrival, now);
                // Idle first so relay waits measure from the channel edge.
                if let Some(BusyTransition::BecameIdle) = transition {
                    let actions = self.macs[node.index()].on_idle(now);
                    self.apply_mac_actions(node, actions);
                }
                if outcome == ArrivalOutcome::Clean && state.decodable {
                    if let Some(frame) = self.apply_bit_errors(&state.frame) {
                        if self.trace.is_some() {
                            let (kind, flow, frame_seq) = match &frame {
                                Frame::Data(d) => (FrameKind::Data, d.flow, d.frame_seq),
                                Frame::Ack(a) => (FrameKind::Ack, a.flow, a.frame_seq),
                            };
                            self.record(
                                node,
                                TraceKind::Decoded {
                                    kind,
                                    from: frame.transmitter(),
                                    flow,
                                    frame_seq,
                                },
                            );
                        }
                        let actions = self.macs[node.index()].on_frame_rx(frame, now);
                        self.apply_mac_actions(node, actions);
                    }
                }
            }
            Event::MacTimer { node, token } => {
                let actions = self.macs[node.index()].on_timer(token, now);
                self.apply_mac_actions(node, actions);
            }
            Event::TcpRto { flow, generation } => {
                let actions = self.flows[flow.index()]
                    .tcp_tx
                    .as_mut()
                    .map(|tx| tx.on_rto(generation, now))
                    .unwrap_or_default();
                self.apply_tcp_sender_actions(flow, actions);
            }
            Event::FlowStart { flow } => self.start_flow(flow),
            Event::UdpSend { flow } => self.udp_send(flow),
            Event::WebStart { flow } => self.web_next_transfer(flow),
        }
    }

    /// Applies the i.i.d. BER model to one received frame copy: the header
    /// must survive for anything to be decoded; each subframe's CRC fails
    /// independently.
    ///
    /// Takes the shared broadcast frame by reference and clones only when
    /// something actually reaches the MAC — the per-receiver deep copy the
    /// fan-out used to pay is gone.
    fn apply_bit_errors(&mut self, frame: &Frame) -> Option<Frame> {
        if !self.ber.unit_survives(frame.header_bytes(), &mut self.ber_rng) {
            return None;
        }
        match frame {
            Frame::Ack(a) => Some(Frame::Ack(a.clone())),
            Frame::Data(d) => {
                let mut d = d.clone();
                for sf in &mut d.subframes {
                    let bytes =
                        wmn_mac::frame::SUBFRAME_OVERHEAD_BYTES + sf.packet.header.wire_bytes;
                    if !self.ber.unit_survives(bytes, &mut self.ber_rng) {
                        sf.corrupted = true;
                    }
                }
                Some(Frame::Data(d))
            }
        }
    }

    fn apply_mac_actions(&mut self, node: NodeId, actions: Vec<MacAction>) {
        for action in actions {
            match action {
                MacAction::StartTx { frame, rate } => self.start_transmission(node, frame, rate),
                MacAction::SetTimer { delay, token } => {
                    self.queue.schedule_in(delay, Event::MacTimer { node, token });
                }
                MacAction::Deliver { packet } => self.handle_delivery(node, packet),
                MacAction::Drop { .. } => {
                    // End-to-end recovery (TCP retransmission / VoIP loss
                    // accounting) covers MAC drops; nothing to do here.
                }
            }
        }
    }

    fn start_transmission(&mut self, node: NodeId, frame: Frame, rate: RateClass) {
        if self.trace.is_some() {
            let (kind, flow, frame_seq, subframes) = match &frame {
                Frame::Data(d) => (FrameKind::Data, d.flow, d.frame_seq, d.subframes.len()),
                Frame::Ack(a) => (FrameKind::Ack, a.flow, a.frame_seq, 0),
            };
            let wire_bytes = frame.wire_bytes();
            self.record(node, TraceKind::TxStart { kind, flow, frame_seq, subframes, wire_bytes });
        }
        let params = self.medium.params();
        let rate = match rate {
            RateClass::Data => params.data_rate,
            RateClass::Basic => params.basic_rate,
        };
        let airtime = params.airtime(rate, frame.wire_bytes());
        let now = self.now();
        if let Some(BusyTransition::BecameBusy) = self.receivers[node.index()].on_tx_start(now) {
            let actions = self.macs[node.index()].on_busy(now);
            self.apply_mac_actions(node, actions);
        }
        self.queue.schedule_in(airtime, Event::TxEnd { node });
        // Plan into the reusable scratch buffer (taken out to satisfy the
        // borrow checker while scheduling), then share one frame allocation
        // across every receiver.
        let mut plans = std::mem::take(&mut self.plan_scratch);
        self.medium.plan_transmission_into(node, &mut self.medium_rng, &mut plans);
        let frame = Arc::new(frame);
        for plan in &plans {
            let slot = self.alloc_arrival(ArrivalState {
                node: plan.to,
                frame: Arc::clone(&frame),
                decodable: plan.decodable,
                power_dbm: plan.power_dbm,
            });
            self.queue.schedule_in(plan.delay, Event::RxStart { arrival: slot });
            self.queue.schedule_in(plan.delay + airtime, Event::RxEnd { arrival: slot });
        }
        self.plan_scratch = plans;
    }

    /// Places an in-flight arrival into the slab, recycling a freed slot if
    /// one is available, and returns its slot index (the event id).
    fn alloc_arrival(&mut self, state: ArrivalState) -> u64 {
        match self.free_arrivals.pop() {
            Some(slot) => {
                self.arrivals[slot as usize] = Some(state);
                slot
            }
            None => {
                self.arrivals.push(Some(state));
                (self.arrivals.len() - 1) as u64
            }
        }
    }

    fn handle_delivery(&mut self, node: NodeId, packet: Packet) {
        let flow_id = packet.header.flow;
        let spec_src = self.flows[flow_id.index()].spec.src();
        let spec_dst = self.flows[flow_id.index()].spec.dst();
        let forward = packet.header.src == spec_src;

        if packet.header.dst == node {
            // Reached a transport endpoint.
            if node == spec_dst && forward {
                self.record(node, TraceKind::Delivered { flow: flow_id });
                self.deliver_at_destination(flow_id, packet);
            } else if node == spec_src && !forward {
                self.deliver_at_source(flow_id, packet);
            }
            return;
        }
        // Intermediate hop (predetermined routing only): forward along.
        let route = {
            let flow = &self.flows[flow_id.index()];
            let table = if forward { &flow.fwd_routes } else { &flow.rev_routes };
            table[node.index()].clone()
        };
        if let Some(route) = route {
            let now = self.now();
            let actions = self.macs[node.index()].on_enqueue(packet, route, now);
            self.apply_mac_actions(node, actions);
        }
    }

    fn deliver_at_destination(&mut self, flow_id: FlowId, packet: Packet) {
        let now = self.now();
        match packet.header.proto {
            Proto::Tcp => {
                let actions = {
                    let flow = &mut self.flows[flow_id.index()];
                    let Some(rx) = flow.tcp_rx.as_mut() else { return };
                    match TcpSegment::decode(&packet.body) {
                        Some(TcpSegment::Data { seq, ts, retx }) => rx.on_data(seq, ts, retx),
                        _ => return,
                    }
                };
                self.apply_tcp_receiver_actions(flow_id, actions);
            }
            Proto::Udp => {
                let flow = &mut self.flows[flow_id.index()];
                if let Some(dg) = UdpDatagram::decode(&packet.body) {
                    flow.udp_sink.on_datagram(dg, packet.header.wire_bytes, now);
                }
            }
        }
    }

    fn deliver_at_source(&mut self, flow_id: FlowId, packet: Packet) {
        let now = self.now();
        let actions = {
            let flow = &mut self.flows[flow_id.index()];
            let Some(tx) = flow.tcp_tx.as_mut() else { return };
            match TcpSegment::decode(&packet.body) {
                Some(TcpSegment::Ack { cum_ack, ts_echo }) => tx.on_ack(cum_ack, ts_echo, now),
                _ => return,
            }
        };
        self.apply_tcp_sender_actions(flow_id, actions);
    }

    fn apply_tcp_sender_actions(&mut self, flow_id: FlowId, actions: Vec<TcpAction>) {
        for action in actions {
            match action {
                TcpAction::Send { segment, wire_bytes } => {
                    self.enqueue_transport_packet(flow_id, segment, wire_bytes, true);
                }
                TcpAction::SetRtoTimer { delay, generation } => {
                    self.queue.schedule_in(delay, Event::TcpRto { flow: flow_id, generation });
                }
                TcpAction::SendComplete => {
                    // Web workload: think, then start the next transfer.
                    let off = {
                        let flow = &mut self.flows[flow_id.index()];
                        match (&flow.spec.workload, flow.web_rng.as_mut()) {
                            (Workload::Web(model), Some(rng)) => Some(model.draw_off_period(rng)),
                            _ => None,
                        }
                    };
                    if let Some(off) = off {
                        self.queue.schedule_in(off, Event::WebStart { flow: flow_id });
                    }
                }
            }
        }
    }

    fn apply_tcp_receiver_actions(&mut self, flow_id: FlowId, actions: Vec<TcpAction>) {
        for action in actions {
            if let TcpAction::Send { segment, wire_bytes } = action {
                self.enqueue_transport_packet(flow_id, segment, wire_bytes, false);
            }
        }
    }

    fn enqueue_transport_packet(
        &mut self,
        flow_id: FlowId,
        segment: TcpSegment,
        wire_bytes: u32,
        forward: bool,
    ) {
        let (src, dst, at_node, route) = {
            let flow = &self.flows[flow_id.index()];
            let (src, dst) = if forward {
                (flow.spec.src(), flow.spec.dst())
            } else {
                (flow.spec.dst(), flow.spec.src())
            };
            let table = if forward { &flow.fwd_routes } else { &flow.rev_routes };
            let Some(route) = table[src.index()].clone() else { return };
            (src, dst, src, route)
        };
        let packet = Packet::new(
            NetHeader { flow: flow_id, src, dst, proto: Proto::Tcp, wire_bytes },
            segment.encode(),
        );
        let now = self.now();
        let actions = self.macs[at_node.index()].on_enqueue(packet, route, now);
        self.apply_mac_actions(at_node, actions);
    }

    fn start_flow(&mut self, flow_id: FlowId) {
        let now = self.now();
        match self.flows[flow_id.index()].spec.workload.clone() {
            Workload::Ftp => {
                let actions = self.flows[flow_id.index()]
                    .tcp_tx
                    .as_mut()
                    .map(|tx| tx.start_unlimited(now))
                    .unwrap_or_default();
                self.apply_tcp_sender_actions(flow_id, actions);
            }
            Workload::Web(_) => self.web_next_transfer(flow_id),
            _ => {}
        }
    }

    fn web_next_transfer(&mut self, flow_id: FlowId) {
        let now = self.now();
        let actions = {
            let flow = &mut self.flows[flow_id.index()];
            let Workload::Web(model) = flow.spec.workload else { return };
            let Some(rng) = flow.web_rng.as_mut() else { return };
            let segments = model.draw_transfer_segments(rng);
            flow.tcp_tx.as_mut().map(|tx| tx.request_send(segments, now)).unwrap_or_default()
        };
        self.apply_tcp_sender_actions(flow_id, actions);
    }

    fn udp_send(&mut self, flow_id: FlowId) {
        let now = self.now();
        let (packet, route, src, next) = {
            let flow = &mut self.flows[flow_id.index()];
            let (bytes, next) = match flow.spec.workload {
                Workload::Voip(VoipModel { packet_bytes, .. }) => (packet_bytes, None),
                Workload::Cbr(CbrModel { packet_bytes, interval }) => {
                    (packet_bytes, Some(interval))
                }
                _ => return,
            };
            let src = flow.spec.src();
            let dst = flow.spec.dst();
            let Some(route) = flow.fwd_routes[src.index()].clone() else { return };
            let dg = UdpDatagram { seq: flow.udp_seq, sent_at_ns: now.as_nanos() };
            flow.udp_seq += 1;
            flow.udp_sent += 1;
            let packet = Packet::new(
                NetHeader { flow: flow_id, src, dst, proto: Proto::Udp, wire_bytes: bytes },
                dg.encode(),
            );
            (packet, route, src, next)
        };
        let actions = self.macs[src.index()].on_enqueue(packet, route, now);
        self.apply_mac_actions(src, actions);
        if let Some(interval) = next {
            if now + interval <= self.end {
                self.queue.schedule_in(interval, Event::UdpSend { flow: flow_id });
            }
        }
    }

    fn results(&self, scenario: &Scenario) -> RunResult {
        let mss = u64::from(TcpConfig::default().mss_wire_bytes);
        let mut flows = Vec::with_capacity(self.flows.len());
        for flow in &self.flows {
            let (delivered_bytes, tcp, voip) = match &flow.spec.workload {
                Workload::Ftp | Workload::Web(_) => {
                    let rx = flow.tcp_rx.as_ref().expect("tcp flow has receiver");
                    let tx = flow.tcp_tx.as_ref().expect("tcp flow has sender");
                    let bytes = rx.delivered_segments() * mss;
                    let tcp = TcpFlowResult {
                        segments_arrived: rx.stats().segments_arrived,
                        reordered_arrivals: rx.stats().reordered_arrivals,
                        retransmits: tx.stats().retransmits,
                        timeouts: tx.stats().timeouts,
                    };
                    (bytes, Some(tcp), None)
                }
                Workload::Voip(_) => {
                    let sink = &flow.udp_sink;
                    let sent = flow.udp_sent.max(1);
                    let late = sink.late_fraction(WIRELESS_BUDGET);
                    let ontime = sink.received() as f64 * (1.0 - late);
                    let loss = (1.0 - ontime / sent as f64).clamp(0.0, 1.0);
                    let mean_delay =
                        sink.mean_ontime_delay(WIRELESS_BUDGET).unwrap_or(WIRELESS_BUDGET);
                    let mos = voip_mos(VoipQualityInputs {
                        mean_wireless_delay: mean_delay,
                        loss_fraction: loss,
                    });
                    let v = VoipFlowResult {
                        sent: flow.udp_sent,
                        received: sink.received(),
                        loss_fraction: loss,
                        mean_delay,
                        p95_delay: wmn_metrics::p95(sink.delays()).unwrap_or(SimDuration::ZERO),
                        jitter: wmn_metrics::jitter(sink.delays()).unwrap_or(SimDuration::ZERO),
                        mos,
                    };
                    (sink.bytes_received(), None, Some(v))
                }
                Workload::Cbr(_) => (flow.udp_sink.bytes_received(), None, None),
            };
            flows.push(FlowResult {
                flow: flow.id,
                delivered_bytes,
                throughput_mbps: throughput_mbps(delivered_bytes, scenario.duration),
                tcp,
                voip,
            });
        }
        let total = flows.iter().map(|f| f.throughput_mbps).sum();
        let mac_stats = self.macs.iter().map(|m| m.stats()).collect();
        RunResult { flows, total_throughput_mbps: total, mac_stats }
    }
}

/// Builds per-node routing decisions for both directions of a flow, as
/// dense `NodeId`-indexed tables pre-sized to the placement. The path is
/// borrowed throughout; the only reversal is materialised for the
/// opportunistic forwarder list, which genuinely needs a reversed slice.
fn build_routes(spec: &FlowSpec, scenario: &Scenario) -> (RouteTable, RouteTable) {
    let n = scenario.positions.len();
    let mut fwd: RouteTable = vec![None; n];
    let mut rev: RouteTable = vec![None; n];
    let path = &spec.path;
    if scenario.scheme.is_opportunistic() {
        let reversed: Vec<NodeId> = path.iter().rev().copied().collect();
        fwd[path[0].index()] =
            Some(RouteInfo::Opportunistic { list: forwarder_list(path, scenario.max_forwarders) });
        rev[reversed[0].index()] = Some(RouteInfo::Opportunistic {
            list: forwarder_list(&reversed, scenario.max_forwarders),
        });
    } else {
        for w in path.windows(2) {
            fwd[w[0].index()] = Some(RouteInfo::NextHop(w[1]));
        }
        // Walk the forward windows back to front — the same overwrite order
        // the reversed-path construction had, should a path revisit a node.
        for w in path.windows(2).rev() {
            rev[w[1].index()] = Some(RouteInfo::NextHop(w[0]));
        }
    }
    (fwd, rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wmn_phy::{PhyParams, Position};

    fn line_positions(n: usize) -> Vec<Position> {
        (0..n).map(|i| Position::new(i as f64 * 5.0, 0.0)).collect()
    }

    fn ftp_scenario(scheme: Scheme, path: Vec<u32>, positions: Vec<Position>) -> Scenario {
        Scenario {
            name: "test".into(),
            params: PhyParams::paper_216(),
            positions,
            scheme,
            flows: vec![FlowSpec {
                path: path.into_iter().map(NodeId::new).collect(),
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(200),
            seed: 42,
            max_forwarders: 5,
        }
    }

    #[test]
    fn dcf_single_hop_delivers() {
        let s = ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1], line_positions(2));
        let r = run(&s);
        assert!(r.flows[0].delivered_bytes > 100_000, "got {}", r.flows[0].delivered_bytes);
        assert!(r.flows[0].throughput_mbps > 4.0, "got {}", r.flows[0].throughput_mbps);
        let tcp = r.flows[0].tcp.unwrap();
        assert_eq!(tcp.reordered_arrivals, 0, "DCF stop-and-wait never reorders");
    }

    #[test]
    fn dcf_multihop_beats_lossy_direct() {
        // The paper's premise: direct 0->3 (15 m) collapses, the 3-hop
        // route thrives (0.76 vs 7.04 Mbps in the paper).
        let direct =
            run(&ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 3], line_positions(4)));
        let routed =
            run(&ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1, 2, 3], line_positions(4)));
        let (d, r) = (direct.flows[0].throughput_mbps, routed.flows[0].throughput_mbps);
        assert!(r > 2.0 * d, "multihop {r} must dominate direct {d}");
        assert!(r > 3.0, "3-hop DCF should sustain a few Mbps, got {r}");
    }

    #[test]
    fn afr_aggregation_beats_plain_dcf() {
        let dcf =
            run(&ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1, 2, 3], line_positions(4)));
        let afr = run(&ftp_scenario(
            Scheme::Dcf { aggregation: 16 },
            vec![0, 1, 2, 3],
            line_positions(4),
        ));
        assert!(
            afr.flows[0].throughput_mbps > 1.3 * dcf.flows[0].throughput_mbps,
            "AFR {} must clearly beat DCF {}",
            afr.flows[0].throughput_mbps,
            dcf.flows[0].throughput_mbps
        );
    }

    #[test]
    fn ripple_delivers_in_order_and_beats_dcf() {
        let dcf =
            run(&ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1, 2, 3], line_positions(4)));
        let r16 = run(&ftp_scenario(
            Scheme::Ripple { aggregation: 16 },
            vec![0, 1, 2, 3],
            line_positions(4),
        ));
        let tcp = r16.flows[0].tcp.unwrap();
        assert_eq!(tcp.reordered_arrivals, 0, "RIPPLE must not reorder");
        assert!(
            r16.flows[0].throughput_mbps > dcf.flows[0].throughput_mbps,
            "RIPPLE-16 {} must beat DCF {}",
            r16.flows[0].throughput_mbps,
            dcf.flows[0].throughput_mbps
        );
    }

    #[test]
    fn ripple_without_aggregation_still_delivers() {
        let r1 = run(&ftp_scenario(
            Scheme::Ripple { aggregation: 1 },
            vec![0, 1, 2, 3],
            line_positions(4),
        ));
        assert!(r1.flows[0].throughput_mbps > 2.0, "got {}", r1.flows[0].throughput_mbps);
        assert_eq!(r1.flows[0].tcp.unwrap().reordered_arrivals, 0);
    }

    #[test]
    fn preexor_delivers_but_reorders() {
        let pre = run(&ftp_scenario(Scheme::PreExor, vec![0, 1, 2, 3], line_positions(4)));
        assert!(pre.flows[0].delivered_bytes > 50_000, "got {}", pre.flows[0].delivered_bytes);
        let tcp = pre.flows[0].tcp.unwrap();
        assert!(
            tcp.reordered_arrivals > 0,
            "opportunistic relaying with per-hop caching must reorder some packets"
        );
    }

    #[test]
    fn mcexor_delivers() {
        let mce = run(&ftp_scenario(Scheme::McExor, vec![0, 1, 2, 3], line_positions(4)));
        assert!(mce.flows[0].delivered_bytes > 50_000, "got {}", mce.flows[0].delivered_bytes);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let s =
            ftp_scenario(Scheme::Ripple { aggregation: 16 }, vec![0, 1, 2, 3], line_positions(4));
        let a = run(&s);
        let b = run(&s);
        assert_eq!(a.flows[0].delivered_bytes, b.flows[0].delivered_bytes);
        let mut s2 = s;
        s2.seed = 43;
        let c = run(&s2);
        assert_ne!(
            a.flows[0].delivered_bytes, c.flows[0].delivered_bytes,
            "different seeds should explore different sample paths"
        );
    }

    #[test]
    fn voip_flow_reports_mos() {
        let mut s =
            ftp_scenario(Scheme::Ripple { aggregation: 16 }, vec![0, 1, 2, 3], line_positions(4));
        s.flows[0].workload = Workload::Voip(wmn_traffic::VoipModel::paper());
        s.duration = SimDuration::from_millis(500);
        let r = run(&s);
        let v = r.flows[0].voip.expect("voip result");
        assert!(v.sent > 0);
        assert!(v.received > 0, "voice packets must get through");
        assert!(v.mos > 3.0, "a lone VoIP call on a clean mesh should be good: {}", v.mos);
    }

    #[test]
    fn cbr_saturates_and_delivers() {
        let mut s = ftp_scenario(Scheme::Dcf { aggregation: 1 }, vec![0, 1], line_positions(2));
        s.flows[0].workload = Workload::Cbr(wmn_traffic::CbrModel::saturating());
        let r = run(&s);
        assert!(r.flows[0].throughput_mbps > 10.0, "got {}", r.flows[0].throughput_mbps);
    }

    #[test]
    fn web_flow_transfers_data() {
        let mut s = ftp_scenario(Scheme::Dcf { aggregation: 16 }, vec![0, 1, 2], line_positions(3));
        s.flows[0].workload = Workload::Web(wmn_traffic::WebModel::paper());
        s.duration = SimDuration::from_millis(800);
        let r = run(&s);
        assert!(r.flows[0].delivered_bytes > 0, "web transfers must complete");
    }
}
