//! Event tracing: an optional per-run timeline of transmissions,
//! receptions and deliveries.
//!
//! Traces serve two purposes: debugging protocol behaviour, and *in-situ
//! verification* — the integration tests use them to assert, for example,
//! that a RIPPLE forwarder's relay really starts `rank·T_slot + T_SIFS`
//! after the previous transmission ended (the Fig. 2 timeline, measured
//! inside a full simulation rather than on an isolated state machine).

use wmn_mac::DropReason;
use wmn_sim::{FlowId, NodeId, SimTime};

/// Which kind of frame an event refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameKind {
    /// A (possibly aggregated) data frame.
    Data,
    /// A MAC acknowledgement.
    Ack,
}

/// One timeline entry.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// The station it happened at.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

/// The event payload.
#[derive(Clone, Debug)]
pub enum TraceKind {
    /// The station's radio began transmitting.
    TxStart {
        /// Data or ACK.
        kind: FrameKind,
        /// Flow the frame belongs to.
        flow: FlowId,
        /// The frame's attempt identity.
        frame_seq: u64,
        /// Number of aggregated subframes (0 for ACKs).
        subframes: usize,
        /// Simulated wire size.
        wire_bytes: u32,
    },
    /// The station's radio finished transmitting.
    TxEnd,
    /// A frame was received cleanly (post-collision, post-BER-header).
    Decoded {
        /// Data or ACK.
        kind: FrameKind,
        /// Transmitting station of this copy.
        from: NodeId,
        /// Flow the frame belongs to.
        flow: FlowId,
        /// The frame's attempt identity.
        frame_seq: u64,
    },
    /// A packet reached its end-to-end transport endpoint here.
    Delivered {
        /// The flow it belonged to.
        flow: FlowId,
    },
    /// The MAC gave up on a packet (queue overflow or retry exhaustion).
    Drop {
        /// The flow it belonged to.
        flow: FlowId,
        /// Why the MAC dropped it.
        reason: DropReason,
    },
    /// A per-hop relay re-enqueued a packet towards its next hop.
    Forward {
        /// The flow being relayed.
        flow: FlowId,
        /// The hop the packet was re-enqueued towards.
        next_hop: NodeId,
    },
    /// A live route-refresh pass changed this flow's path. Recorded at the
    /// flow's source; `path` is the new source → destination route.
    RouteChange {
        /// The re-routed flow.
        flow: FlowId,
        /// The new path, inclusive of both endpoints.
        path: Vec<NodeId>,
    },
}

/// A completed run's timeline with query helpers.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// All events in time order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// All transmission starts, optionally filtered by station.
    pub fn tx_starts(&self, node: Option<NodeId>) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::TxStart { .. }))
            .filter(|e| node.map_or(true, |n| e.node == n))
            .collect()
    }

    /// Transmission starts of *data* frames at `node`.
    pub fn data_tx_starts(&self, node: NodeId) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| {
                e.node == node && matches!(e.kind, TraceKind::TxStart { kind: FrameKind::Data, .. })
            })
            .collect()
    }

    /// The first TxEnd at `node` after `t`.
    pub fn tx_end_after(&self, node: NodeId, t: SimTime) -> Option<SimTime> {
        self.events
            .iter()
            .find(|e| e.node == node && e.at >= t && matches!(e.kind, TraceKind::TxEnd))
            .map(|e| e.at)
    }

    /// How many packets of `flow` were delivered end-to-end.
    pub fn delivered_count(&self, flow: FlowId) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Delivered { flow: f } if f == flow))
            .count()
    }

    /// How many packets of `flow` the MACs dropped.
    pub fn drop_count(&self, flow: FlowId) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Drop { flow: f, .. } if f == flow))
            .count()
    }

    /// Every route change of `flow`, in time order: `(when, new path)`.
    pub fn route_changes(&self, flow: FlowId) -> Vec<(SimTime, &[NodeId])> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::RouteChange { flow: f, path } if *f == flow => {
                    Some((e.at, path.as_slice()))
                }
                _ => None,
            })
            .collect()
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, node: u32, kind: TraceKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_micros(at_us), node: NodeId::new(node), kind }
    }

    fn tx(kind: FrameKind) -> TraceKind {
        TraceKind::TxStart {
            kind,
            flow: FlowId::new(0),
            frame_seq: 1,
            subframes: 1,
            wire_bytes: 1040,
        }
    }

    #[test]
    fn query_helpers() {
        let trace = Trace {
            events: vec![
                ev(10, 0, tx(FrameKind::Data)),
                ev(70, 0, TraceKind::TxEnd),
                ev(100, 1, tx(FrameKind::Ack)),
                ev(105, 1, TraceKind::TxEnd),
                ev(110, 2, TraceKind::Delivered { flow: FlowId::new(0) }),
                ev(115, 1, TraceKind::Forward { flow: FlowId::new(0), next_hop: NodeId::new(2) }),
                ev(120, 0, TraceKind::Drop { flow: FlowId::new(0), reason: DropReason::QueueFull }),
                ev(
                    130,
                    0,
                    TraceKind::RouteChange {
                        flow: FlowId::new(0),
                        path: vec![NodeId::new(0), NodeId::new(3), NodeId::new(2)],
                    },
                ),
            ],
        };
        assert_eq!(trace.tx_starts(None).len(), 2);
        assert_eq!(trace.tx_starts(Some(NodeId::new(0))).len(), 1);
        assert_eq!(trace.data_tx_starts(NodeId::new(0)).len(), 1);
        assert!(trace.data_tx_starts(NodeId::new(1)).is_empty(), "node 1 sent an ACK");
        assert_eq!(
            trace.tx_end_after(NodeId::new(0), SimTime::from_micros(10)),
            Some(SimTime::from_micros(70))
        );
        assert_eq!(trace.delivered_count(FlowId::new(0)), 1);
        assert_eq!(trace.drop_count(FlowId::new(0)), 1);
        assert_eq!(trace.drop_count(FlowId::new(1)), 0);
        let changes = trace.route_changes(FlowId::new(0));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].0, SimTime::from_micros(130));
        assert_eq!(changes[0].1[1], NodeId::new(3));
        assert_eq!(trace.len(), 8);
        assert!(!trace.is_empty());
    }
}
