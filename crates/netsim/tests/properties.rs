//! Property-based tests of whole-simulation invariants: random placements,
//! random schemes, random seeds — conservation and sanity must always hold.

use proptest::prelude::*;
use wmn_netsim::{run, FlowSpec, Scenario, Scheme, Workload};
use wmn_phy::{PhyParams, Position};
use wmn_sim::{NodeId, SimDuration};

fn scheme_from(index: u8) -> Scheme {
    match index % 6 {
        0 => Scheme::Dcf { aggregation: 1 },
        1 => Scheme::Dcf { aggregation: 16 },
        2 => Scheme::PreExor,
        3 => Scheme::McExor,
        4 => Scheme::Ripple { aggregation: 1 },
        _ => Scheme::Ripple { aggregation: 16 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the geometry, scheme and seed: the run terminates, flow
    /// accounting is conserved, and totals add up.
    #[test]
    fn prop_run_invariants(
        scheme_idx in 0u8..6,
        seed in 1u64..500,
        n_nodes in 3usize..6,
        spacing in 3.0f64..9.0,
        bend in 0.0f64..3.0,
    ) {
        let positions: Vec<Position> = (0..n_nodes)
            .map(|i| Position::new(i as f64 * spacing, if i % 2 == 0 { 0.0 } else { bend }))
            .collect();
        let scenario = Scenario {
            name: "prop".into(),
            params: PhyParams::paper_216(),
            positions,
            scheme: scheme_from(scheme_idx),
            flows: vec![FlowSpec {
                path: (0..n_nodes as u32).map(NodeId::new).collect(),
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(60),
            seed,
            max_forwarders: 5,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        };
        let result = run(&scenario);
        let flow = &result.flows[0];
        let tcp = flow.tcp.expect("ftp flow");
        // Conservation: can't deliver more distinct segments than arrived.
        prop_assert!(flow.delivered_bytes / 1000 <= tcp.segments_arrived);
        // Re-ordered arrivals are a subset of arrivals.
        prop_assert!(tcp.reordered_arrivals <= tcp.segments_arrived);
        // Totals add up.
        let sum: f64 = result.flows.iter().map(|f| f.throughput_mbps).sum();
        prop_assert!((sum - result.total_throughput_mbps).abs() < 1e-9);
        // MAC stats exist for every station.
        prop_assert_eq!(result.mac_stats.len(), n_nodes);
    }

    /// RIPPLE's in-order guarantee holds under arbitrary chain geometry.
    #[test]
    fn prop_ripple_never_reorders(
        seed in 1u64..300,
        spacing in 3.0f64..8.0,
    ) {
        let positions: Vec<Position> =
            (0..4).map(|i| Position::new(f64::from(i) * spacing, 0.0)).collect();
        let scenario = Scenario {
            name: "prop-ripple".into(),
            params: PhyParams::paper_216().with_ber(1e-5),
            positions,
            scheme: Scheme::Ripple { aggregation: 16 },
            flows: vec![FlowSpec {
                path: (0..4).map(NodeId::new).collect(),
                workload: Workload::Ftp,
            }],
            duration: SimDuration::from_millis(80),
            seed,
            max_forwarders: 5,
            motion: wmn_netsim::MotionPlan::default(),
            route_refresh: None,
            shards: None,
        };
        let result = run(&scenario);
        prop_assert_eq!(result.flows[0].tcp.unwrap().reordered_arrivals, 0);
    }
}

/// Builds a pooled `n`-subframe data frame like a transmitter would.
fn pooled_frame(pool: &wmn_mac::FramePool, n: u32) -> std::sync::Arc<wmn_mac::Frame> {
    use wmn_mac::frame::{LinkDst, NetHeader, Packet, Proto, Subframe};
    let header = NetHeader {
        flow: wmn_sim::FlowId::new(0),
        src: NodeId::new(0),
        dst: NodeId::new(3),
        proto: Proto::Tcp,
        wire_bytes: 1000,
    };
    let mut subframes = pool.mint_subframes();
    for seq in 0..n {
        subframes.push(Subframe {
            seq,
            packet: Packet::new(header, pool.mint_body(&[0u8; 18])),
            corrupted: false,
        });
    }
    std::sync::Arc::new(wmn_mac::Frame::Data(wmn_mac::DataFrame {
        transmitter: NodeId::new(0),
        link_dst: LinkDst::Unicast(NodeId::new(1)),
        flow: wmn_sim::FlowId::new(0),
        src: NodeId::new(0),
        dst: NodeId::new(3),
        frame_seq: 0,
        subframes,
        retry: 0,
    }))
}

proptest! {
    /// The decode seam's zero-copy contract, end to end: a clean channel
    /// hands back the transmitter's own allocation (`Arc::ptr_eq`, no
    /// copy), and a corrupting channel detaches a private copy without
    /// ever writing a `corrupted` flag through to the shared frame.
    #[test]
    fn prop_decode_shares_clean_and_isolates_corrupt(
        seed in 1u64..500,
        n_subframes in 1u32..16,
    ) {
        use wmn_mac::frame::{Frame, RxFrame};
        use wmn_netsim::stack::decode::decode_frame;
        use wmn_phy::BerModel;
        use wmn_sim::StreamRng;

        let pool = wmn_mac::FramePool::default();
        let frame = pooled_frame(&pool, n_subframes);

        let clean = BerModel::new(0.0);
        let mut rng = StreamRng::derive(seed, "netsim-test/decode-clean");
        match decode_frame(&clean, &mut rng, &frame) {
            Some(RxFrame::Shared(shared)) => {
                prop_assert!(std::sync::Arc::ptr_eq(&shared, &frame),
                    "clean decode must share the broadcast allocation");
            }
            other => prop_assert!(false, "clean decode must be Shared, got {other:?}"),
        }

        // A punishing channel: most decodes corrupt something (or lose the
        // header). Whenever an Owned copy comes back, the original must be
        // untouched and the copy must actually diverge.
        let noisy = BerModel::new(1e-3);
        let mut rng = StreamRng::derive(seed, "netsim-test/decode-noisy");
        for _ in 0..32 {
            if let Some(RxFrame::Owned(owned)) = decode_frame(&noisy, &mut rng, &frame) {
                let Frame::Data(ref orig) = *frame else { unreachable!() };
                prop_assert!(orig.subframes.iter().all(|sf| !sf.corrupted),
                    "corruption must never write through to the shared frame");
                let Frame::Data(ref diverged) = *owned else { unreachable!() };
                prop_assert!(diverged.subframes.iter().any(|sf| sf.corrupted),
                    "an Owned decode exists only to carry corrupted flags");
            }
        }
    }
}
