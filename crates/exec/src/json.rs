//! A minimal JSON document builder.
//!
//! The build environment has no serde, and the repro reports only need
//! one-way emission, so this module provides just enough: an ordered
//! [`Value`] tree with escaping-correct pretty printing. Object keys keep
//! insertion order so emitted files are byte-stable run to run.

use std::fmt;

/// An ordered JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`, as JSON has
    /// no representation for them).
    Num(f64),
    /// An unsigned integer, serialised exactly (not via `f64`, which would
    /// silently round values above 2^53 — seeds can be any `u64`).
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An object builder starting empty.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Appends a key/value pair (objects only).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object — misuse is a programming error in
    /// report-building code, not a runtime condition.
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Value::with called on a non-object"),
        }
        self
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Uint(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Uint(n as u64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

fn write_num(n: f64, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !n.is_finite() {
        return out.write_str("null");
    }
    // Integers print without a trailing `.0` so counts look like counts.
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        write!(out, "{}", n as i64)
    } else {
        write!(out, "{n}")
    }
}

fn write_value(v: &Value, indent: usize, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(b) => write!(out, "{b}"),
        Value::Num(n) => write_num(*n, out),
        Value::Uint(n) => write!(out, "{n}"),
        Value::Str(s) => escape(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                return out.write_str("[]");
            }
            // Scalar-only arrays stay on one line; nested ones break.
            let scalar = items
                .iter()
                .all(|i| !matches!(i, Value::Arr(_) | Value::Obj(_)));
            if scalar {
                out.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_str(", ")?;
                    }
                    write_value(item, indent, out)?;
                }
                out.write_str("]")
            } else {
                out.write_str("[\n")?;
                for (i, item) in items.iter().enumerate() {
                    out.write_str(&inner)?;
                    write_value(item, indent + 1, out)?;
                    if i + 1 < items.len() {
                        out.write_str(",")?;
                    }
                    out.write_str("\n")?;
                }
                write!(out, "{pad}]")
            }
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                return out.write_str("{}");
            }
            out.write_str("{\n")?;
            for (i, (key, value)) in pairs.iter().enumerate() {
                out.write_str(&inner)?;
                escape(key, out)?;
                out.write_str(": ")?;
                write_value(value, indent + 1, out)?;
                if i + 1 < pairs.len() {
                    out.write_str(",")?;
                }
                out.write_str("\n")?;
            }
            write!(out, "{pad}}}")
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_document() {
        let doc = Value::obj()
            .with("name", "fig3")
            .with("runs", 90u64)
            .with("wall_ms", 12.5)
            .with("seeds", vec![1u64, 2])
            .with("ok", true)
            .with("missing", Value::Null);
        let s = doc.to_string();
        assert!(s.contains("\"name\": \"fig3\""));
        assert!(s.contains("\"runs\": 90"), "integers print bare: {s}");
        assert!(s.contains("\"wall_ms\": 12.5"));
        assert!(s.contains("\"seeds\": [1, 2]"));
        assert!(s.contains("\"missing\": null"));
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let s = Value::Str("a\"b\\c\nd\u{1}".into()).to_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn u64_values_serialise_exactly() {
        // 2^53 + 1 is not representable as f64; seeds are arbitrary u64s.
        let seed = (1u64 << 53) + 1;
        assert_eq!(Value::from(seed).to_string(), "9007199254740993");
        assert_eq!(Value::from(u64::MAX).to_string(), "18446744073709551615");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Value::Arr(vec![]).to_string(), "[]");
        assert_eq!(Value::obj().to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn with_on_scalar_panics() {
        let _ = Value::Null.with("k", 1u64);
    }
}
